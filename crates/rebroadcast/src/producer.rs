//! The Audio Stream Rebroadcaster (§2.2, §2.3).
//!
//! "The Rebroadcaster is just a single-threaded process that collects
//! audio from the master-side VAD and delivers it to the LAN." It
//! keeps *no state about the speakers*: control packets carrying the
//! audio configuration and the producer wall clock go out at a fixed
//! interval; data packets carry a play deadline on the producer
//! timeline. Everything a late joiner needs arrives within one control
//! interval.
//!
//! Responsibilities modelled here:
//! - drain the [`VadMaster`] (audio + in-band configuration updates),
//! - pace sends with the [`RateLimiter`] (§3.1),
//! - pick a codec per the [`CompressionPolicy`] (§2.2) and encode,
//! - optionally bill encode work to a [`SimCpu`] (the Figure 4 CPU
//!   model) — the send then happens when the CPU finishes, which is
//!   also the compression latency the paper mentions,
//! - multicast data + periodic control packets, optionally signing
//!   them (§5.1).

use std::rc::Rc;

use bytes::{Bytes, BytesMut};

use es_audio::convert::decode_samples;
use es_audio::AudioConfig;
use es_codec::{CodecId, Codecs, CostModel};
use es_net::{Lan, McastGroup, NodeId};
use es_proto::auth::StreamSigner;
use es_proto::{
    encode_control_into, encode_data_into, ControlPacket, DataPacket, SessionEntry, SessionTable,
    FLAG_AUTHENTICATED,
};
use es_sim::{shared, RepeatingTimer, Shared, Sim, SimCpu, SimDuration, SimTime};
use es_telemetry::{Journal, Registry, Severity, Stamp, Telemetry};
use es_vad::{MasterItem, VadMaster};

use crate::policy::CompressionPolicy;
use crate::rate::RateLimiter;

/// Data packets kept for NACK retransmission (the healing plane's
/// neighbor-assist window). At 50 ms blocks this is ~3 s of audio.
const RECENT_CACHE: usize = 64;

/// Tuning knobs for one rebroadcast stream.
#[derive(Clone)]
pub struct RebroadcasterConfig {
    /// Stream identifier carried in every packet.
    pub stream_id: u16,
    /// Multicast group for this channel.
    pub group: McastGroup,
    /// Control packet period (§2.3's "regular intervals").
    pub control_interval: SimDuration,
    /// Fixed playout delay granted to receivers: data packet `play_at`
    /// deadlines sit this far behind the producer stream clock.
    pub playout_delay: SimDuration,
    /// Rate limiter (disable to reproduce the §3.1 failure).
    pub rate_limiter: RateLimiter,
    /// Compression policy.
    pub policy: CompressionPolicy,
    /// Stream flags to advertise (e.g. [`es_proto::FLAG_PRIORITY`]).
    pub flags: u16,
    /// Optional CPU model billed for encode work.
    pub cpu: Option<Shared<SimCpu>>,
    /// Optional signer; when set, packets carry auth trailers and the
    /// control flags advertise [`FLAG_AUTHENTICATED`].
    pub signer: Option<Rc<StreamSigner>>,
    /// Auth interval length (virtual time per key-chain interval).
    pub auth_interval: SimDuration,
    /// Emit one XOR-parity packet per this many data packets (single-
    /// loss FEC, an extension for lossy links). `None` disables FEC.
    pub fec_group: Option<u8>,
    /// How transform work is billed to the CPU model: the default FFT
    /// accounting, or [`CostModel::Direct`] to reproduce the paper's
    /// O(N²)-codec load figures (Figure 4).
    pub cost_model: CostModel,
}

impl RebroadcasterConfig {
    /// Sensible defaults for a channel: 500 ms control interval,
    /// 200 ms playout delay, paper-default compression, rate limiting
    /// on.
    pub fn new(stream_id: u16, group: McastGroup) -> Self {
        RebroadcasterConfig {
            stream_id,
            group,
            control_interval: SimDuration::from_millis(500),
            playout_delay: SimDuration::from_millis(200),
            rate_limiter: RateLimiter::new(),
            policy: CompressionPolicy::paper_default(),
            flags: 0,
            cpu: None,
            signer: None,
            auth_interval: SimDuration::from_millis(500),
            fec_group: None,
            cost_model: CostModel::default(),
        }
    }
}

/// Counters for one stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProducerStats {
    /// Data packets sent.
    pub data_packets: u64,
    /// Control packets sent.
    pub control_packets: u64,
    /// Raw audio bytes consumed from the VAD.
    pub audio_bytes_in: u64,
    /// Encoded payload bytes sent.
    pub payload_bytes_out: u64,
    /// Total encode work units billed.
    pub encode_work_units: u64,
    /// Configuration changes observed.
    pub config_changes: u64,
    /// Injected crashes ([`Rebroadcaster::crash`]).
    pub crashes: u64,
    /// Audio blocks consumed but never sent because the process was
    /// down — each one is a sequence-number gap on the wire.
    pub crash_dropped_blocks: u64,
    /// Cached data packets re-multicast on NACK (healing plane).
    pub retransmits_sent: u64,
    /// Mid-stream FEC parity-group changes applied.
    pub fec_changes: u64,
    /// Times this instance was promoted from standby to primary.
    pub promotions: u64,
}

impl ProducerStats {
    /// Encoded-to-raw byte ratio (1.0 = no compression, lower is
    /// smaller). Zero until audio has flowed.
    pub fn compression_ratio(&self) -> f64 {
        if self.audio_bytes_in == 0 {
            0.0
        } else {
            self.payload_bytes_out as f64 / self.audio_bytes_in as f64
        }
    }
}

impl Telemetry for ProducerStats {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("rebroadcast");
        s.counter("data_packets", self.data_packets)
            .counter("control_packets", self.control_packets)
            .counter("audio_bytes_in", self.audio_bytes_in)
            .counter("payload_bytes_out", self.payload_bytes_out)
            .counter("encode_work_units", self.encode_work_units)
            .counter("config_changes", self.config_changes)
            .counter("crashes", self.crashes)
            .counter("crash_dropped_blocks", self.crash_dropped_blocks)
            .counter("retransmits_sent", self.retransmits_sent)
            .counter("fec_changes", self.fec_changes)
            .counter("promotions", self.promotions)
            .gauge("compression_ratio", self.compression_ratio());
    }
}

struct ProducerState {
    cfg: RebroadcasterConfig,
    stream_cfg: AudioConfig,
    have_cfg: bool,
    codec: CodecId,
    quality: u8,
    /// Cumulative stream duration in nanoseconds (survives config
    /// changes, unlike a byte counter).
    stream_pos_ns: u128,
    /// Producer-timeline origin of the stream (first byte plays at
    /// `origin + playout_delay`).
    origin: Option<SimTime>,
    data_seq: u32,
    control_seq: u32,
    /// While true the process is "down": audio drains into the void
    /// (sequence numbers still advance, so receivers see wire loss) and
    /// control packets stop.
    crashed: bool,
    /// A standby holds the VAD but neither reads it nor sends anything
    /// until [`Rebroadcaster::promote`] flips this off.
    standby: bool,
    /// A detached (superseded) primary stops reading the VAD and never
    /// re-arms its readable waiter, leaving queued items for the
    /// promoted standby.
    detached: bool,
    stats: ProducerStats,
    parity_acc: Option<es_proto::ParityAccumulator>,
    /// Recently sent data packets, oldest first — the retransmission
    /// window the healing plane can NACK into.
    recent: std::collections::VecDeque<DataPacket>,
    /// Negotiated receivers of this stream (empty in static mode). The
    /// broker in `es-core` drives open/touch/expire; the table lives
    /// here because its lifecycle counters are producer telemetry.
    sessions: SessionTable,
    journal: Option<Journal>,
    /// Reusable packet-serialization buffer: every outgoing packet is
    /// encoded and signed in place here, then split off as a shared
    /// [`Bytes`] — one allocation per packet, zero copies.
    scratch: BytesMut,
}

/// A running rebroadcaster for one stream.
#[derive(Clone)]
pub struct Rebroadcaster {
    state: Shared<ProducerState>,
    codecs: Rc<Codecs>,
    lan: Lan,
    node: NodeId,
    master: VadMaster,
}

impl Rebroadcaster {
    /// Starts the rebroadcaster: hooks the VAD master, arms the control
    /// packet timer, and begins forwarding.
    pub fn start(
        sim: &mut Sim,
        lan: Lan,
        node: NodeId,
        master: VadMaster,
        cfg: RebroadcasterConfig,
    ) -> Rebroadcaster {
        Rebroadcaster::start_inner(sim, lan, node, master, cfg, false)
    }

    /// Starts a *standby* rebroadcaster for the same VAD: it holds the
    /// master but neither reads it nor sends anything until
    /// [`Rebroadcaster::promote`] hands it the primary's stream state.
    /// The §2.2 rebroadcaster keeps no speaker state, so a warm spare
    /// only needs the stream clock and the session table to take over.
    pub fn start_standby(
        sim: &mut Sim,
        lan: Lan,
        node: NodeId,
        master: VadMaster,
        cfg: RebroadcasterConfig,
    ) -> Rebroadcaster {
        Rebroadcaster::start_inner(sim, lan, node, master, cfg, true)
    }

    fn start_inner(
        sim: &mut Sim,
        lan: Lan,
        node: NodeId,
        master: VadMaster,
        cfg: RebroadcasterConfig,
        standby: bool,
    ) -> Rebroadcaster {
        let control_interval = cfg.control_interval;
        let cost_model = cfg.cost_model;
        let parity_acc = cfg.fec_group.map(es_proto::ParityAccumulator::new);
        let state = shared(ProducerState {
            stream_cfg: AudioConfig::default(),
            have_cfg: false,
            codec: CodecId::Pcm,
            quality: 0,
            stream_pos_ns: 0,
            origin: None,
            data_seq: 0,
            control_seq: 0,
            crashed: false,
            standby,
            detached: false,
            stats: ProducerStats::default(),
            parity_acc,
            recent: std::collections::VecDeque::new(),
            sessions: SessionTable::new(),
            journal: None,
            scratch: BytesMut::new(),
            cfg,
        });
        let rb = Rebroadcaster {
            state,
            codecs: Rc::new(Codecs::with_cost_model(cost_model)),
            lan,
            node,
            master,
        };
        // Periodic control packets (§2.3). They start flowing once the
        // first configuration arrives from the VAD (and, for a standby,
        // once it has been promoted).
        let rb2 = rb.clone();
        let _timer = RepeatingTimer::start(sim, control_interval, move |sim| {
            rb2.send_control(sim);
        });
        // Intentionally leak the timer handle: the rebroadcaster runs
        // for the life of the simulation. (Stopping a stream is modelled
        // by dropping the whole Sim.)
        std::mem::forget(_timer);
        if !standby {
            rb.arm_reader(sim);
        }
        rb
    }

    fn arm_reader(&self, sim: &mut Sim) {
        if self.state.borrow().detached {
            return;
        }
        let rb = self.clone();
        self.master.on_readable(move |sim| {
            rb.drain(sim);
            rb.arm_reader(sim);
        });
        // Drain anything already queued.
        self.drain(sim);
    }

    fn drain(&self, sim: &mut Sim) {
        {
            let st = self.state.borrow();
            if st.detached || st.standby {
                return;
            }
        }
        let items = self.master.read(sim, usize::MAX);
        for item in items {
            match item {
                MasterItem::Config(c) => {
                    let mut st = self.state.borrow_mut();
                    st.stream_cfg = c;
                    if st.have_cfg {
                        st.stats.config_changes += 1;
                    }
                    st.have_cfg = true;
                    let (codec, quality) = st.cfg.policy.select(&c);
                    st.codec = codec;
                    st.quality = quality;
                    if let Some(j) = st.journal.clone() {
                        j.emit(
                            Stamp::virtual_ns(sim.now().as_nanos()),
                            Severity::Info,
                            "rebroadcast",
                            "stream configuration selected",
                            &[
                                ("stream_id", st.cfg.stream_id.to_string()),
                                ("sample_rate", c.sample_rate.to_string()),
                                ("channels", c.channels.to_string()),
                                ("codec", format!("{codec:?}")),
                                ("quality", quality.to_string()),
                            ],
                        );
                    }
                    drop(st);
                    // Announce the change immediately as well as on the
                    // periodic timer.
                    self.send_control(sim);
                }
                MasterItem::Audio(block) => {
                    self.queue_audio(sim, block);
                }
            }
        }
    }

    /// Paces, encodes and schedules one block of audio.
    fn queue_audio(&self, sim: &mut Sim, block: Vec<u8>) {
        let (send_at, play_at, cfg, codec, quality) = {
            let mut st = self.state.borrow_mut();
            if !st.have_cfg {
                // Data before any config: drop (cannot describe it).
                return;
            }
            st.stats.audio_bytes_in += block.len() as u64;
            let cfg = st.stream_cfg;
            let origin = *st.origin.get_or_insert(sim.now());
            let playout = st.cfg.playout_delay;
            let play_at = origin + SimDuration::from_nanos(st.stream_pos_ns as u64) + playout;
            st.stream_pos_ns += cfg.nanos_for_bytes(block.len() as u64) as u128;
            if st.crashed {
                // The stream clock and sequence space keep advancing so
                // that post-restart deadlines stay continuous; receivers
                // see the outage as wire loss.
                st.data_seq += 1;
                st.stats.crash_dropped_blocks += 1;
                return;
            }
            let send_at = st.cfg.rate_limiter.pace(sim.now(), &cfg, block.len());
            (send_at, play_at, cfg, st.codec, st.quality)
        };
        let rb = self.clone();
        sim.schedule_at(send_at, move |sim| {
            rb.encode_and_send(sim, block, cfg, codec, quality, play_at);
        });
    }

    fn encode_and_send(
        &self,
        sim: &mut Sim,
        block: Vec<u8>,
        cfg: AudioConfig,
        codec: CodecId,
        quality: u8,
        play_at: SimTime,
    ) {
        // The VAD hands us the raw byte stream in the app's encoding;
        // codecs work on linear samples.
        let samples = decode_samples(&block, cfg.encoding);
        let enc = self.codecs.encode(codec, &samples, cfg.channels, quality);
        let work = enc.work_units;
        {
            let mut st = self.state.borrow_mut();
            st.stats.encode_work_units += work;
        }
        // Bill the CPU; the packet leaves when the encode finishes.
        let done_at = {
            let st = self.state.borrow();
            match &st.cfg.cpu {
                Some(cpu) => cpu.borrow_mut().submit(sim.now(), work_to_cycles(work)),
                None => sim.now(),
            }
        };
        let rb = self.clone();
        sim.schedule_at(done_at, move |sim| {
            let (seq, stream_id, group) = {
                let mut st = rb.state.borrow_mut();
                let seq = st.data_seq;
                st.data_seq += 1;
                if st.crashed {
                    // Encoded before the crash, due to leave after it:
                    // the packet dies with the process.
                    st.stats.crash_dropped_blocks += 1;
                    return;
                }
                st.stats.data_packets += 1;
                st.stats.payload_bytes_out += enc.bytes.len() as u64;
                (seq, st.cfg.stream_id, st.cfg.group)
            };
            let pkt = DataPacket {
                stream_id,
                seq,
                play_at_us: play_at.as_micros(),
                codec: codec.to_wire(),
                payload: Bytes::from(enc.bytes),
            };
            let sealed = rb.seal(sim, |buf| encode_data_into(&pkt, buf));
            rb.lan.multicast(sim, rb.node, group, sealed);
            // FEC: absorb the packet; a completed group emits parity.
            let parity = {
                let mut st = rb.state.borrow_mut();
                st.parity_acc.as_mut().and_then(|acc| acc.absorb(&pkt))
            };
            if let Some(parity) = parity {
                let sealed = rb.seal(sim, |buf| es_proto::encode_parity_into(&parity, buf));
                rb.lan.multicast(sim, rb.node, group, sealed);
            }
            // Keep the packet around for NACK retransmission (payload
            // is a shared Bytes, so the cache holds refcounts, not
            // copies).
            let mut st = rb.state.borrow_mut();
            st.recent.push_back(pkt);
            while st.recent.len() > RECENT_CACHE {
                st.recent.pop_front();
            }
        });
    }

    fn send_control(&self, sim: &mut Sim) {
        let pkt = {
            let mut st = self.state.borrow_mut();
            if !st.have_cfg || st.crashed || st.standby || st.detached {
                return;
            }
            let seq = st.control_seq;
            st.control_seq += 1;
            st.stats.control_packets += 1;
            let mut flags = st.cfg.flags;
            if st.cfg.signer.is_some() {
                flags |= FLAG_AUTHENTICATED;
            }
            ControlPacket {
                stream_id: st.cfg.stream_id,
                seq,
                producer_time_us: sim.now().as_micros(),
                config: st.stream_cfg,
                codec: st.codec.to_wire(),
                quality: st.quality,
                control_interval_ms: st.cfg.control_interval.as_millis() as u16,
                flags,
            }
        };
        let group = self.state.borrow().cfg.group;
        let sealed = self.seal(sim, |buf| encode_control_into(&pkt, buf));
        self.lan.multicast(sim, self.node, group, sealed);
    }

    /// Serializes one packet in the reusable scratch buffer, appends
    /// the auth trailer when signing is configured, and hands the bytes
    /// off as an immutable [`Bytes`] without copying. The buffer is
    /// taken out of the shared state for the duration so `encode` and
    /// [`Self::maybe_sign`] may borrow the state themselves.
    fn seal(&self, sim: &mut Sim, encode: impl FnOnce(&mut BytesMut)) -> Bytes {
        let mut scratch = std::mem::take(&mut self.state.borrow_mut().scratch);
        scratch.clear();
        encode(&mut scratch);
        self.maybe_sign(sim, &mut scratch);
        let sealed = scratch.split().freeze();
        self.state.borrow_mut().scratch = scratch;
        sealed
    }

    /// Appends an auth trailer when signing is configured.
    fn maybe_sign(&self, sim: &mut Sim, bytes: &mut BytesMut) {
        let st = self.state.borrow();
        let Some(signer) = st.cfg.signer.as_ref() else {
            return;
        };
        let interval_len = st.cfg.auth_interval.as_nanos().max(1);
        let interval = (sim.now().as_nanos() / interval_len + 1) as u32;
        let interval = interval.min(signer.intervals());
        let trailer = signer.sign(interval, bytes);
        bytes.extend_from_slice(&trailer.encode());
    }

    /// Simulates the rebroadcaster process dying: data and control
    /// packets stop (receivers therefore see a control-packet gap), but
    /// the upstream VAD keeps producing, so the stream clock and
    /// sequence numbers keep advancing. A second crash while down is a
    /// no-op.
    pub fn crash(&self, sim: &mut Sim) {
        let journal = {
            let mut st = self.state.borrow_mut();
            if st.crashed {
                return;
            }
            st.crashed = true;
            st.stats.crashes += 1;
            st.journal.clone()
        };
        if let Some(j) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Error,
                "rebroadcast",
                "rebroadcaster crashed",
                &[("stream_id", self.state.borrow().cfg.stream_id.to_string())],
            );
        }
    }

    /// Brings a crashed rebroadcaster back: a control packet goes out
    /// immediately (late joiners and stalled speakers resynchronize
    /// from it) and subsequent audio flows again. The blocks lost while
    /// down stay lost — exactly like wire loss, §3.2's recovery paths
    /// handle them.
    pub fn restart(&self, sim: &mut Sim) {
        let journal = {
            let mut st = self.state.borrow_mut();
            if !st.crashed {
                return;
            }
            st.crashed = false;
            st.journal.clone()
        };
        if let Some(j) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "rebroadcast",
                "rebroadcaster restarted",
                &[("stream_id", self.state.borrow().cfg.stream_id.to_string())],
            );
        }
        self.send_control(sim);
    }

    /// True while the process is down.
    pub fn is_crashed(&self) -> bool {
        self.state.borrow().crashed
    }

    /// True while this instance is a warm spare awaiting promotion.
    pub fn is_standby(&self) -> bool {
        self.state.borrow().standby
    }

    /// Re-multicasts cached data packets covering the NACKed
    /// `(first_seq, count)` ranges; returns how many went out. Ranges
    /// older than the retransmission window are silently unfillable —
    /// FEC and concealment remain the only recourse for those.
    pub fn retransmit(&self, sim: &mut Sim, ranges: &[(u32, u16)]) -> u64 {
        let (pkts, group) = {
            let st = self.state.borrow();
            if st.crashed || st.standby || st.detached {
                return 0;
            }
            let mut pkts: Vec<DataPacket> = Vec::new();
            for &(first, count) in ranges {
                for seq in first..first.saturating_add(count as u32) {
                    if let Some(p) = st.recent.iter().find(|p| p.seq == seq) {
                        pkts.push(p.clone());
                    }
                }
            }
            (pkts, st.cfg.group)
        };
        if pkts.is_empty() {
            return 0;
        }
        for pkt in &pkts {
            let sealed = self.seal(sim, |buf| encode_data_into(pkt, buf));
            self.lan.multicast(sim, self.node, group, sealed);
        }
        let n = pkts.len() as u64;
        let journal = {
            let mut st = self.state.borrow_mut();
            st.stats.retransmits_sent += n;
            st.journal.clone().map(|j| (j, st.cfg.stream_id))
        };
        if let Some((j, stream_id)) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "rebroadcast",
                "retransmitted missed packets",
                &[
                    ("stream_id", stream_id.to_string()),
                    ("ranges", format!("{ranges:?}")),
                    ("packets", n.to_string()),
                ],
            );
        }
        n
    }

    /// Changes the FEC parity-group size mid-stream (the healing
    /// plane's loss-adaptive ladder). `None` disables parity. A
    /// partially accumulated group is abandoned; receivers notice the
    /// new group size on the next parity packet and rebuild their
    /// recoverers. Group sizes outside `2..=32` are ignored.
    pub fn set_fec_group(&self, sim: &mut Sim, group: Option<u8>) {
        if let Some(g) = group {
            if !(2..=32).contains(&g) {
                return;
            }
        }
        let journal = {
            let mut st = self.state.borrow_mut();
            if st.cfg.fec_group == group {
                return;
            }
            let from = st.cfg.fec_group;
            st.cfg.fec_group = group;
            st.parity_acc = group.map(es_proto::ParityAccumulator::new);
            st.stats.fec_changes += 1;
            st.journal.clone().map(|j| (j, from, st.cfg.stream_id))
        };
        if let Some((j, from, stream_id)) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "rebroadcast",
                "fec level changed",
                &[
                    ("stream_id", stream_id.to_string()),
                    ("from", format!("{from:?}")),
                    ("to", format!("{group:?}")),
                ],
            );
        }
    }

    /// The current FEC parity-group size, `None` when parity is off.
    pub fn fec_group(&self) -> Option<u8> {
        self.state.borrow().cfg.fec_group
    }

    /// The multicast group this channel transmits on.
    pub fn group(&self) -> McastGroup {
        self.state.borrow().cfg.group
    }

    /// Permanently detaches this instance from the VAD: it stops
    /// reading, never re-arms its readable waiter (queued items stay
    /// for the successor), and sends nothing further. Called on the
    /// old primary by [`Rebroadcaster::promote`]; idempotent.
    pub fn detach(&self, sim: &mut Sim) {
        let journal = {
            let mut st = self.state.borrow_mut();
            if st.detached {
                return;
            }
            st.detached = true;
            st.journal.clone().map(|j| (j, st.cfg.stream_id))
        };
        if let Some((j, stream_id)) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Warn,
                "rebroadcast",
                "rebroadcaster detached",
                &[("stream_id", stream_id.to_string())],
            );
        }
    }

    /// Promotes this standby to primary: detaches `primary`, adopts its
    /// stream clock, sequence space, codec selection and session table
    /// (so granted sessions and play deadlines survive the failover
    /// bit-for-bit), then starts reading the shared VAD and announces
    /// itself with an immediate control packet. No-op unless this
    /// instance is a standby.
    pub fn promote(&self, sim: &mut Sim, primary: &Rebroadcaster) {
        {
            if !self.state.borrow().standby {
                return;
            }
        }
        primary.detach(sim);
        let journal = {
            let prim = primary.state.borrow();
            let mut st = self.state.borrow_mut();
            st.standby = false;
            st.stream_cfg = prim.stream_cfg;
            st.have_cfg = prim.have_cfg;
            st.codec = prim.codec;
            st.quality = prim.quality;
            st.stream_pos_ns = prim.stream_pos_ns;
            st.origin = prim.origin;
            st.data_seq = prim.data_seq;
            st.control_seq = prim.control_seq;
            st.sessions = prim.sessions.clone();
            st.stats.promotions += 1;
            st.journal
                .clone()
                .map(|j| (j, st.cfg.stream_id, st.data_seq, st.sessions.active()))
        };
        if let Some((j, stream_id, at_seq, sessions)) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Warn,
                "rebroadcast",
                "standby promoted",
                &[
                    ("stream_id", stream_id.to_string()),
                    ("at_seq", at_seq.to_string()),
                    ("sessions_adopted", sessions.to_string()),
                ],
            );
        }
        self.arm_reader(sim);
        self.send_control(sim);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProducerStats {
        self.state.borrow().stats
    }

    /// Rate-limiter sleep statistics for this stream.
    pub fn rate_stats(&self) -> crate::rate::RateStats {
        self.state.borrow().cfg.rate_limiter.stats().clone()
    }

    /// Forwarding statistics of the VAD feeding this stream.
    pub fn vad_stats(&self) -> es_vad::VadStats {
        self.master.stats()
    }

    /// The configured control packet period.
    pub fn control_interval(&self) -> SimDuration {
        self.state.borrow().cfg.control_interval
    }

    /// Attaches a journal for structured diagnostics (configuration
    /// changes and the like).
    pub fn set_journal(&self, journal: Journal) {
        self.state.borrow_mut().journal = Some(journal);
    }

    /// Records a newly negotiated session for this stream.
    pub fn open_session(&self, sim: &mut Sim, entry: SessionEntry) {
        let journal = {
            let mut st = self.state.borrow_mut();
            let j = st
                .journal
                .clone()
                .map(|j| (j, entry.session_id, entry.speaker.clone(), st.cfg.stream_id));
            st.sessions.open(entry);
            j
        };
        if let Some((j, sid, speaker, stream_id)) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "rebroadcast",
                "session opened",
                &[
                    ("session_id", sid.to_string()),
                    ("speaker", speaker),
                    ("stream_id", stream_id.to_string()),
                ],
            );
        }
    }

    /// Refreshes a session's liveness (KEEPALIVE); false if unknown.
    pub fn touch_session(&self, session_id: u32, now_us: u64) -> bool {
        self.state.borrow_mut().sessions.touch(session_id, now_us)
    }

    /// Removes a session on TEARDOWN; returns the closed entry.
    pub fn close_session(&self, sim: &mut Sim, session_id: u32) -> Option<SessionEntry> {
        let (entry, journal) = {
            let mut st = self.state.borrow_mut();
            let e = st.sessions.close(session_id);
            let j = st.journal.clone();
            (e, j)
        };
        if let (Some(e), Some(j)) = (&entry, journal) {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "rebroadcast",
                "session closed",
                &[
                    ("session_id", e.session_id.to_string()),
                    ("speaker", e.speaker.clone()),
                ],
            );
        }
        entry
    }

    /// Expires sessions silent past `timeout_us`, journaling each;
    /// the expired entries are returned so the broker can notify the
    /// receivers with TEARDOWN packets.
    pub fn expire_sessions(
        &self,
        sim: &mut Sim,
        now_us: u64,
        timeout_us: u64,
    ) -> Vec<SessionEntry> {
        let (dead, journal) = {
            let mut st = self.state.borrow_mut();
            let dead = st.sessions.expire(now_us, timeout_us);
            let j = st.journal.clone();
            (dead, j)
        };
        if let Some(j) = journal {
            for e in &dead {
                j.emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Warn,
                    "rebroadcast",
                    "session expired",
                    &[
                        ("session_id", e.session_id.to_string()),
                        ("speaker", e.speaker.clone()),
                    ],
                );
            }
        }
        dead
    }

    /// The live session held by `speaker`, if any (SETUP retries from
    /// a receiver that missed the ACK re-grant the same session).
    pub fn find_session(&self, speaker: &str) -> Option<SessionEntry> {
        self.state
            .borrow()
            .sessions
            .find_by_speaker(speaker)
            .cloned()
    }

    /// Live negotiated-session count for this stream.
    pub fn sessions_active(&self) -> usize {
        self.state.borrow().sessions.active()
    }

    /// Snapshot of every live session, ascending by session id.
    pub fn session_entries(&self) -> Vec<SessionEntry> {
        self.state.borrow().sessions.iter().cloned().collect()
    }

    /// Session lifecycle counters `(opened, expired, closed)`.
    pub fn session_counts(&self) -> (u64, u64, u64) {
        let st = self.state.borrow();
        (st.sessions.opened, st.sessions.expired, st.sessions.closed)
    }

    /// Records producer counters, the compression ratio, rate-limiter
    /// sleeps and session-table lifecycle into `registry` under
    /// component `rebroadcast`.
    pub fn record_telemetry(&self, registry: &mut Registry) {
        let st = self.state.borrow();
        st.stats.record(registry);
        st.cfg.rate_limiter.stats().record(registry);
        registry
            .component("rebroadcast")
            .gauge(
                "control_interval_ms",
                st.cfg.control_interval.as_millis() as f64,
            )
            .counter("sessions_opened", st.sessions.opened)
            .counter("sessions_expired", st.sessions.expired)
            .counter("sessions_closed", st.sessions.closed)
            .gauge("sessions_active", st.sessions.active() as f64);
    }

    /// The stream's current audio configuration (meaningful once
    /// [`ProducerStats::control_packets`] is non-zero).
    pub fn stream_config(&self) -> AudioConfig {
        self.state.borrow().stream_cfg
    }
}

/// Converts codec work units to Geode-class CPU cycles.
///
/// Calibration: OVL's direct O(N²) MDCT performs ~126 M multiply-
/// accumulate work units per second of CD stereo (measured by
/// `es-codec`'s accounting at 50 ms packets), roughly 4.8× the
/// arithmetic of the FFT-based codec the paper used. Figure 4 implies
/// one Vorbis CD stream costs ≈ 11% of the 233 MHz Geode
/// (≈ 26 M cycles/s), so each OVL work unit is billed 26 M / 126 M ≈
/// 0.21 cycles. `es-bench::calib` documents the derivation.
pub fn work_to_cycles(work_units: u64) -> u64 {
    work_units * 21 / 100
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppPacing, AudioApp};
    use es_audio::gen::Sine;
    use es_net::{Datagram, LanConfig};
    use es_proto::Packet;
    use es_vad::{vad_pair, VadMode};

    /// Full producer-side pipeline: app → VAD → rebroadcaster → LAN.
    fn rig(
        sim: &mut Sim,
        rl: RateLimiter,
        policy: CompressionPolicy,
    ) -> (Rebroadcaster, Shared<Vec<(SimTime, Packet)>>, AudioApp) {
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let listener = lan.attach("listener");
        let group = McastGroup(1);
        lan.join(listener, group);
        let log: Shared<Vec<(SimTime, Packet)>> = shared(Vec::new());
        let l = log.clone();
        lan.set_handler(listener, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(p) = es_proto::decode(&dg.payload) {
                l.borrow_mut().push((sim.now(), p));
            }
        });
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let mut rcfg = RebroadcasterConfig::new(7, group);
        rcfg.rate_limiter = rl;
        rcfg.policy = policy;
        let rb = Rebroadcaster::start(sim, lan.clone(), producer, master, rcfg);
        let app = AudioApp::start(
            sim,
            Rc::new(slave),
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(2),
            AppPacing::RealTime,
        )
        .unwrap();
        (rb, log, app)
    }

    #[test]
    fn control_packets_flow_periodically_with_config() {
        let mut sim = Sim::new(1);
        let (_rb, log, _app) = rig(&mut sim, RateLimiter::new(), CompressionPolicy::Never);
        sim.run_until(SimTime::from_secs(3));
        let log = log.borrow();
        let controls: Vec<&ControlPacket> = log
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Control(c) => Some(c),
                _ => None,
            })
            .collect();
        // ~1 immediate + every 500 ms over 3 s.
        assert!(controls.len() >= 6, "{} control packets", controls.len());
        for c in &controls {
            assert_eq!(c.config, AudioConfig::CD);
            assert_eq!(c.stream_id, 7);
            assert_eq!(c.control_interval_ms, 500);
        }
        // Wall clock advances monotonically.
        assert!(controls
            .windows(2)
            .all(|w| w[1].producer_time_us >= w[0].producer_time_us));
    }

    #[test]
    fn data_is_rate_limited_to_real_time() {
        let mut sim = Sim::new(1);
        let (rb, log, _app) = rig(&mut sim, RateLimiter::new(), CompressionPolicy::Never);
        sim.run_until(SimTime::from_secs(3));
        let stats = rb.stats();
        // 2 s of CD audio in, all of it out as PCM.
        assert_eq!(stats.audio_bytes_in, 352_800);
        assert_eq!(stats.payload_bytes_out, 352_800);
        let log = log.borrow();
        let data_times: Vec<SimTime> = log
            .iter()
            .filter_map(|(t, p)| match p {
                Packet::Data(_) => Some(*t),
                _ => None,
            })
            .collect();
        // Sends spread over ~2 s, not a burst.
        let span = *data_times.last().unwrap() - data_times[0];
        assert!(
            span >= SimDuration::from_millis(1_700),
            "span {span} too short"
        );
    }

    #[test]
    fn play_deadlines_are_monotone_and_feasible() {
        let mut sim = Sim::new(1);
        let (_rb, log, _app) = rig(&mut sim, RateLimiter::new(), CompressionPolicy::Never);
        sim.run_until(SimTime::from_secs(3));
        let log = log.borrow();
        let mut last = 0u64;
        for (arrived, p) in log.iter() {
            if let Packet::Data(d) = p {
                assert!(d.play_at_us >= last, "deadlines must be monotone");
                last = d.play_at_us;
                // A packet must arrive before its deadline.
                assert!(
                    arrived.as_micros() <= d.play_at_us,
                    "packet for {} arrived at {}",
                    d.play_at_us,
                    arrived.as_micros()
                );
            }
        }
        assert!(last > 0);
    }

    #[test]
    fn compression_policy_shrinks_payload() {
        let mut sim = Sim::new(1);
        let (rb, log, _app) = rig(
            &mut sim,
            RateLimiter::new(),
            CompressionPolicy::paper_default(),
        );
        sim.run_until(SimTime::from_secs(3));
        let stats = rb.stats();
        assert!(
            stats.payload_bytes_out * 2 < stats.audio_bytes_in,
            "OVL at max quality must at least halve a sine: {} -> {}",
            stats.audio_bytes_in,
            stats.payload_bytes_out
        );
        let log = log.borrow();
        let codecs: std::collections::BTreeSet<u8> = log
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Data(d) => Some(d.codec),
                _ => None,
            })
            .collect();
        assert_eq!(codecs.len(), 1);
        assert!(codecs.contains(&CodecId::Ovl.to_wire()));
    }

    #[test]
    fn without_rate_limiter_data_bursts_at_wire_speed() {
        // The §3.1 pathology, producer side: with a wire-speed app and
        // no limiter, everything leaves almost at once.
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let listener = lan.attach("listener");
        let group = McastGroup(1);
        lan.join(listener, group);
        let times: Shared<Vec<SimTime>> = shared(Vec::new());
        let t2 = times.clone();
        lan.set_handler(listener, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(Packet::Data(_)) = es_proto::decode(&dg.payload) {
                t2.borrow_mut().push(sim.now());
            }
        });
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let mut rcfg = RebroadcasterConfig::new(1, group);
        rcfg.rate_limiter = RateLimiter::disabled();
        rcfg.policy = CompressionPolicy::Never;
        let _rb = Rebroadcaster::start(&mut sim, lan.clone(), producer, master, rcfg);
        let _app = AudioApp::start(
            &mut sim,
            Rc::new(slave),
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(10),
            AppPacing::WireSpeed,
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(12));
        let times = times.borrow();
        assert!(times.len() > 100);
        let span = *times.last().unwrap() - times[0];
        // 10 seconds of audio delivered in far less than 2 seconds.
        assert!(span < SimDuration::from_secs(2), "span {span}");
    }

    #[test]
    fn signed_stream_carries_trailers() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let listener = lan.attach("listener");
        let group = McastGroup(1);
        lan.join(listener, group);
        let payloads: Shared<Vec<Vec<u8>>> = shared(Vec::new());
        let p2 = payloads.clone();
        lan.set_handler(listener, move |_sim: &mut Sim, dg: Datagram| {
            p2.borrow_mut().push(dg.payload.to_vec());
        });
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let signer = Rc::new(StreamSigner::new(b"k", 1_000, 2));
        let mut rcfg = RebroadcasterConfig::new(1, group);
        rcfg.signer = Some(signer.clone());
        rcfg.policy = CompressionPolicy::Never;
        let _rb = Rebroadcaster::start(&mut sim, lan.clone(), producer, master, rcfg);
        let _app = AudioApp::start(
            &mut sim,
            Rc::new(slave),
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_millis(500),
            AppPacing::RealTime,
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(2));
        let payloads = payloads.borrow();
        assert!(!payloads.is_empty());
        for raw in payloads.iter() {
            // Trailer-stripped prefix parses as a packet; the packet
            // alone does not (CRC covers only the packet body).
            let body = &raw[..raw.len() - es_proto::TRAILER_LEN];
            assert!(es_proto::decode(body).is_ok());
            let trailer = es_proto::AuthTrailer::decode(&raw[raw.len() - es_proto::TRAILER_LEN..]);
            assert!(trailer.is_some());
            if let Ok(Packet::Control(c)) = es_proto::decode(body) {
                assert!(c.flags & FLAG_AUTHENTICATED != 0);
            }
        }
    }

    #[test]
    fn crash_and_restart_gap_the_stream_but_keep_deadlines_continuous() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let listener = lan.attach("listener");
        let group = McastGroup(1);
        lan.join(listener, group);
        let log: Shared<Vec<(SimTime, Packet)>> = shared(Vec::new());
        let l = log.clone();
        lan.set_handler(listener, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(p) = es_proto::decode(&dg.payload) {
                l.borrow_mut().push((sim.now(), p));
            }
        });
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let mut rcfg = RebroadcasterConfig::new(7, group);
        rcfg.policy = CompressionPolicy::Never;
        let rb = Rebroadcaster::start(&mut sim, lan.clone(), producer, master, rcfg);
        let _app = AudioApp::start(
            &mut sim,
            Rc::new(slave),
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(4),
            AppPacing::RealTime,
        )
        .unwrap();
        let rb2 = rb.clone();
        sim.schedule_at(SimTime::from_secs(1), move |sim| {
            rb2.crash(sim);
            assert!(rb2.is_crashed());
            rb2.crash(sim); // double crash is a no-op
        });
        let rb3 = rb.clone();
        sim.schedule_at(SimTime::from_secs(2), move |sim| {
            rb3.restart(sim);
            assert!(!rb3.is_crashed());
        });
        sim.run_until(SimTime::from_secs(5));

        let stats = rb.stats();
        assert_eq!(stats.crashes, 1);
        assert!(stats.crash_dropped_blocks > 0, "no blocks dropped");

        let log = log.borrow();
        // No packets of either kind in the dark window (leave a little
        // slack for in-flight sends right at the crash instant).
        let dark = log
            .iter()
            .filter(|(t, _)| *t > SimTime::from_millis(1_100) && *t < SimTime::from_secs(2))
            .count();
        assert_eq!(dark, 0, "{dark} packets while crashed");
        // A control packet arrives almost immediately after restart.
        let first_ctl_after = log
            .iter()
            .find_map(|(t, p)| match p {
                Packet::Control(_) if *t >= SimTime::from_secs(2) => Some(*t),
                _ => None,
            })
            .expect("no control packet after restart");
        assert!(first_ctl_after < SimTime::from_millis(2_050));
        // The outage is a sequence gap, and deadlines stay monotone
        // right across it.
        let data: Vec<&DataPacket> = log
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Data(d) => Some(d),
                _ => None,
            })
            .collect();
        assert!(data.windows(2).any(|w| w[1].seq > w[0].seq + 1), "no gap");
        assert!(
            data.windows(2).all(|w| w[1].play_at_us >= w[0].play_at_us),
            "deadlines regressed across the restart"
        );
    }

    #[test]
    fn retransmit_replays_recent_packets() {
        let mut sim = Sim::new(1);
        let (rb, log, _app) = rig(&mut sim, RateLimiter::new(), CompressionPolicy::Never);
        sim.run_until(SimTime::from_secs(3));
        let max_seq = log
            .borrow()
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Data(d) => Some(d.seq),
                _ => None,
            })
            .max()
            .expect("data flowed");
        // Two cached sequences plus a range past the end of the stream
        // (never sent, so never cached).
        let sent = rb.retransmit(&mut sim, &[(max_seq - 2, 2), (max_seq + 10, 3)]);
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sent, 2);
        assert_eq!(rb.stats().retransmits_sent, 2);
        let copies = log
            .borrow()
            .iter()
            .filter(|(_, p)| matches!(p, Packet::Data(d) if d.seq == max_seq - 2))
            .count();
        assert_eq!(copies, 2, "original + retransmission");
        // Nothing cached leaves nothing to send.
        assert_eq!(rb.retransmit(&mut sim, &[(max_seq + 100, 1)]), 0);
    }

    #[test]
    fn fec_level_change_emits_new_parity_group() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let listener = lan.attach("listener");
        let group = McastGroup(1);
        lan.join(listener, group);
        let log: Shared<Vec<(SimTime, Packet)>> = shared(Vec::new());
        let l = log.clone();
        lan.set_handler(listener, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(p) = es_proto::decode(&dg.payload) {
                l.borrow_mut().push((sim.now(), p));
            }
        });
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let mut rcfg = RebroadcasterConfig::new(7, group);
        rcfg.policy = CompressionPolicy::Never;
        rcfg.fec_group = Some(4);
        let rb = Rebroadcaster::start(&mut sim, lan.clone(), producer, master, rcfg);
        let _app = AudioApp::start(
            &mut sim,
            Rc::new(slave),
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(2),
            AppPacing::RealTime,
        )
        .unwrap();
        let rb2 = rb.clone();
        sim.schedule_at(SimTime::from_secs(1), move |sim| {
            rb2.set_fec_group(sim, Some(2));
            rb2.set_fec_group(sim, Some(2)); // no-op repeat
            rb2.set_fec_group(sim, Some(99)); // out of range: ignored
        });
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(rb.stats().fec_changes, 1);
        assert_eq!(rb.fec_group(), Some(2));
        let log = log.borrow();
        let counts: Vec<(SimTime, u8)> = log
            .iter()
            .filter_map(|(t, p)| match p {
                Packet::Parity(p) => Some((*t, p.count)),
                _ => None,
            })
            .collect();
        assert!(counts.iter().any(|&(_, c)| c == 4), "{counts:?}");
        assert!(counts.iter().any(|&(_, c)| c == 2), "{counts:?}");
        for &(t, c) in &counts {
            if t < SimTime::from_secs(1) {
                assert_eq!(c, 4, "pre-change parity at {t}");
            } else if t > SimTime::from_millis(1_200) {
                assert_eq!(c, 2, "post-change parity at {t}");
            }
        }
    }

    #[test]
    fn standby_promotion_preserves_clock_and_sequences() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let n1 = lan.attach("producer");
        let n2 = lan.attach("standby");
        let listener = lan.attach("listener");
        let group = McastGroup(1);
        lan.join(listener, group);
        let log: Shared<Vec<(SimTime, Packet)>> = shared(Vec::new());
        let l = log.clone();
        lan.set_handler(listener, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(p) = es_proto::decode(&dg.payload) {
                l.borrow_mut().push((sim.now(), p));
            }
        });
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let mut c1 = RebroadcasterConfig::new(7, group);
        c1.policy = CompressionPolicy::Never;
        let primary = Rebroadcaster::start(&mut sim, lan.clone(), n1, master.clone(), c1);
        let mut c2 = RebroadcasterConfig::new(7, group);
        c2.policy = CompressionPolicy::Never;
        let standby = Rebroadcaster::start_standby(&mut sim, lan.clone(), n2, master, c2);
        assert!(standby.is_standby());
        let _app = AudioApp::start(
            &mut sim,
            Rc::new(slave),
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(4),
            AppPacing::RealTime,
        )
        .unwrap();
        let p2 = primary.clone();
        sim.schedule_at(SimTime::from_secs(1), move |sim| p2.crash(sim));
        let (s2, p3) = (standby.clone(), primary.clone());
        sim.schedule_at(SimTime::from_millis(1_800), move |sim| {
            s2.promote(sim, &p3);
        });
        sim.run_until(SimTime::from_secs(6));

        assert!(!standby.is_standby());
        assert_eq!(standby.stats().promotions, 1);
        assert!(standby.stats().data_packets > 0, "standby never sent");

        let log = log.borrow();
        // Dark while crashed and unpromoted; nothing from the standby
        // before its promotion.
        let dark = log
            .iter()
            .filter(|(t, _)| *t > SimTime::from_millis(1_100) && *t < SimTime::from_millis(1_800))
            .count();
        assert_eq!(dark, 0, "{dark} packets while failed over");
        // A control packet goes out at the promotion instant.
        let first_ctl_after = log
            .iter()
            .find_map(|(t, p)| match p {
                Packet::Control(_) if *t >= SimTime::from_millis(1_800) => Some(*t),
                _ => None,
            })
            .expect("no control packet after promotion");
        assert!(
            first_ctl_after <= SimTime::from_millis(1_810),
            "{first_ctl_after}"
        );
        // One sequence space across both processes: strictly
        // increasing, with the outage visible as a gap, and play
        // deadlines continuous (the adopted stream clock).
        let data: Vec<&DataPacket> = log
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Data(d) => Some(d),
                _ => None,
            })
            .collect();
        assert!(
            data.windows(2).all(|w| w[1].seq > w[0].seq),
            "seq replayed or regressed"
        );
        assert!(data.windows(2).any(|w| w[1].seq > w[0].seq + 1), "no gap");
        assert!(
            data.windows(2).all(|w| w[1].play_at_us >= w[0].play_at_us),
            "deadlines regressed across the failover"
        );
    }
}
