//! The segment relay: the "internet radio" hierarchy node (§4.4).
//!
//! The paper's scaling sketch extends the single-segment Ethernet
//! speaker into a tree: the producer multicasts once, campus relays
//! subscribe upstream and re-multicast to their own segment. A
//! [`SegmentRelay`] is that node for the simulator. It joins the
//! upstream group, holds each packet for a fixed window, re-stamps the
//! stream's producer-timeline fields against its own segment clock
//! (arrival + hold), and re-multicasts on the downstream group.
//!
//! Re-stamping keeps the timing contract intact across the hop:
//!
//! - **Control** packets get `producer_time_us += hold`, so a
//!   downstream speaker's clock offset — computed from control arrival
//!   minus the embedded stamp — lands on the relay's delivery timeline,
//!   not the producer's.
//! - **Data** packets get `play_at_us += hold`; together with the
//!   control shift, downstream speakers keep exactly the upstream
//!   slack budget and play one hold window behind the upstream
//!   segment.
//! - **Parity** packets XOR the covered deadlines into one field, so a
//!   uniform shift cannot be applied to the aggregate directly; the
//!   relay remembers the original deadlines of recently forwarded data
//!   packets and re-folds the XOR (`old ^ new` per covered seq). If it
//!   never saw a covered packet (it was lost upstream), the stale term
//!   stays: a downstream FEC recovery then reconstructs the packet
//!   with its *original* deadline — one hold window of lost slack,
//!   counted in [`RelayStats::parity_stale`], never a wrong stream.
//!
//! Announce and session packets are forwarded unchanged (their
//! semantics are producer-relative), and anything that fails to parse
//! — e.g. an authenticated stream, whose trailer the relay cannot
//! re-sign — is forwarded verbatim and counted as opaque.
//!
//! The relay's LAN node is pinned to its segment
//! ([`Lan::set_segment`]), so the upstream hand-off is one
//! cross-shard post into the relay and everything downstream of it
//! stays inside the segment's shard.

use std::collections::BTreeMap;

use es_net::{Lan, McastGroup, NodeId};
use es_proto::packet::{encode_control, encode_data, encode_parity, Packet};
use es_sim::{shared, Shared, Sim, SimDuration};
use es_telemetry::{Registry, Telemetry};

/// How many forwarded data deadlines the relay remembers per stream
/// for parity re-folding; generously above any FEC group size.
const DEADLINE_WINDOW: usize = 256;

/// Static configuration for one segment relay.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// LAN node name (the builder uses `relayN`).
    pub name: String,
    /// Group the relay subscribes to (the producer's, or another
    /// relay's downstream).
    pub upstream: McastGroup,
    /// Group the relay re-multicasts on; its fleet tunes here.
    pub downstream: McastGroup,
    /// Logical engine segment of this relay and its fleet.
    pub segment: u32,
    /// Hold window: each packet is forwarded `hold` after arrival and
    /// its timeline fields shifted by the same amount. Small enough to
    /// keep cross-segment playback skew inaudible, large enough to be
    /// a real re-timing boundary.
    pub hold: SimDuration,
}

impl RelayConfig {
    /// A relay forwarding `upstream` onto `downstream` with the
    /// default 2 ms hold, in segment 0.
    pub fn new(upstream: McastGroup, downstream: McastGroup) -> Self {
        RelayConfig {
            name: "relay".to_string(),
            upstream,
            downstream,
            segment: 0,
            hold: SimDuration::from_millis(2),
        }
    }
}

/// Forwarding counters for one relay.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayStats {
    /// Data packets re-stamped and forwarded.
    pub data_relayed: u64,
    /// Control packets re-stamped and forwarded.
    pub control_relayed: u64,
    /// Parity packets forwarded with a fully re-folded deadline XOR.
    pub parity_relayed: u64,
    /// Parity packets forwarded with at least one stale (unseen)
    /// deadline term left in the XOR.
    pub parity_stale: u64,
    /// Announce/session packets forwarded unchanged.
    pub passthrough: u64,
    /// Undecodable datagrams forwarded verbatim (e.g. authenticated
    /// streams the relay cannot re-sign).
    pub opaque: u64,
}

impl Telemetry for RelayStats {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("relay");
        s.counter("data_relayed", self.data_relayed)
            .counter("control_relayed", self.control_relayed)
            .counter("parity_relayed", self.parity_relayed)
            .counter("parity_stale", self.parity_stale)
            .counter("passthrough", self.passthrough)
            .counter("opaque", self.opaque);
    }
}

struct RelayState {
    stats: RelayStats,
    /// Original `play_at_us` of recently forwarded data packets, per
    /// stream, for parity XOR re-folding.
    deadlines: BTreeMap<u16, BTreeMap<u32, u64>>,
}

/// A running segment relay (cheap cloneable handle).
#[derive(Clone)]
pub struct SegmentRelay {
    node: NodeId,
    config_segment: u32,
    state: Shared<RelayState>,
}

impl SegmentRelay {
    /// Attaches a relay to the LAN, pins it to its segment, joins the
    /// upstream group, and starts forwarding.
    pub fn start(sim: &mut Sim, lan: &Lan, cfg: RelayConfig) -> SegmentRelay {
        let _ = sim; // Attaching is instantaneous; kept for API symmetry.
        assert_ne!(
            cfg.upstream, cfg.downstream,
            "relay would loop: upstream and downstream group are the same"
        );
        let node = lan.attach(cfg.name.clone());
        lan.set_segment(node, cfg.segment);
        lan.join(node, cfg.upstream);
        let state = shared(RelayState {
            stats: RelayStats::default(),
            deadlines: BTreeMap::new(),
        });
        let relay = SegmentRelay {
            node,
            config_segment: cfg.segment,
            state: state.clone(),
        };
        let fwd_lan = lan.clone();
        let hold = cfg.hold;
        let downstream = cfg.downstream;
        lan.set_handler(node, move |sim, dg| {
            let out = restamp(&state, &dg.payload, hold.as_micros());
            let fwd_lan = fwd_lan.clone();
            sim.schedule_in(hold, move |sim| {
                fwd_lan.multicast(sim, node, downstream, out);
            });
        });
        relay
    }

    /// The relay's LAN node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The logical segment this relay (and its fleet) runs in.
    pub fn segment(&self) -> u32 {
        self.config_segment
    }

    /// Forwarding counters so far.
    pub fn stats(&self) -> RelayStats {
        self.state.borrow().stats
    }
}

/// Shifts a packet's producer-timeline fields by `hold_us` and
/// re-encodes it; undecodable input is returned as-is.
fn restamp(state: &Shared<RelayState>, raw: &bytes::Bytes, hold_us: u64) -> bytes::Bytes {
    let mut st = state.borrow_mut();
    match es_proto::packet::decode(raw) {
        Ok(Packet::Control(mut c)) => {
            c.producer_time_us += hold_us;
            st.stats.control_relayed += 1;
            encode_control(&c)
        }
        Ok(Packet::Data(mut d)) => {
            let window = st.deadlines.entry(d.stream_id).or_default();
            window.insert(d.seq, d.play_at_us);
            while window.len() > DEADLINE_WINDOW {
                window.pop_first();
            }
            d.play_at_us += hold_us;
            st.stats.data_relayed += 1;
            encode_data(&d)
        }
        Ok(Packet::Parity(mut p)) => {
            let window = st.deadlines.entry(p.stream_id).or_default();
            let mut stale = false;
            for seq in p.base_seq..p.base_seq.saturating_add(p.count as u32) {
                match window.get(&seq) {
                    Some(&old) => p.xor_play_at_us ^= old ^ (old + hold_us),
                    None => stale = true,
                }
            }
            if stale {
                st.stats.parity_stale += 1;
            } else {
                st.stats.parity_relayed += 1;
            }
            encode_parity(&p)
        }
        Ok(Packet::Announce(_)) | Ok(Packet::Session(_)) => {
            st.stats.passthrough += 1;
            raw.clone()
        }
        Err(_) => {
            st.stats.opaque += 1;
            raw.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use es_audio::AudioConfig;
    use es_net::{Datagram, Dest, LanConfig};
    use es_proto::packet::{ControlPacket, DataPacket};
    use es_sim::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn data(seq: u32, play_at_us: u64) -> Bytes {
        encode_data(&DataPacket {
            stream_id: 1,
            seq,
            play_at_us,
            codec: 0,
            payload: Bytes::from_static(&[1, 2, 3, 4]),
        })
    }

    /// Builds a producer node, a relay, and a downstream listener;
    /// returns what the listener receives.
    fn relay_rig(hold: SimDuration, send: Vec<Bytes>) -> Vec<(u64, Packet)> {
        let mut sim = Sim::new(5);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let _relay = SegmentRelay::start(&mut sim, &lan, {
            let mut c = RelayConfig::new(McastGroup(10), McastGroup(20));
            c.segment = 3;
            c.hold = hold;
            c
        });
        let listener = lan.attach("listener");
        lan.set_segment(listener, 3);
        lan.join(listener, McastGroup(20));
        let got: Rc<RefCell<Vec<(u64, Packet)>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        lan.set_handler(listener, move |sim, dg| {
            g.borrow_mut().push((
                sim.now().as_micros(),
                es_proto::packet::decode(&dg.payload).unwrap(),
            ));
        });
        for p in send {
            lan.multicast(&mut sim, producer, McastGroup(10), p);
        }
        sim.run();
        let out = got.borrow().clone();
        out
    }

    #[test]
    fn relay_restamps_data_and_control_by_hold() {
        let hold = SimDuration::from_millis(2);
        let control = encode_control(&ControlPacket {
            stream_id: 1,
            seq: 0,
            producer_time_us: 1_000,
            config: AudioConfig::CD,
            codec: 0,
            quality: 0,
            control_interval_ms: 100,
            flags: 0,
        });
        let got = relay_rig(hold, vec![control, data(7, 50_000)]);
        assert_eq!(got.len(), 2);
        match &got[0].1 {
            Packet::Control(c) => assert_eq!(c.producer_time_us, 1_000 + 2_000),
            p => panic!("expected control, got {p:?}"),
        }
        match &got[1].1 {
            Packet::Data(d) => {
                assert_eq!(d.seq, 7);
                assert_eq!(d.play_at_us, 52_000);
                assert_eq!(d.payload.as_ref(), &[1, 2, 3, 4]);
            }
            p => panic!("expected data, got {p:?}"),
        }
        // Forwarded one hold window after arrival.
        assert!(got[0].0 >= 2_000);
    }

    #[test]
    fn relay_refolds_parity_xor_with_shifted_deadlines() {
        let hold = SimDuration::from_millis(2);
        let d0 = 40_000u64;
        let d1 = 60_000u64;
        let parity = encode_parity(&es_proto::fec::ParityPacket {
            stream_id: 1,
            base_seq: 0,
            count: 2,
            xor_play_at_us: d0 ^ d1,
            xor_len: 0,
            xor_codec: 0,
            payload: Bytes::from_static(&[0, 0, 0, 0]),
        });
        let got = relay_rig(hold, vec![data(0, d0), data(1, d1), parity]);
        assert_eq!(got.len(), 3);
        match &got[2].1 {
            Packet::Parity(p) => {
                // XOR of the *shifted* deadlines: recovery downstream
                // reconstructs deadlines on the relay timeline.
                assert_eq!(p.xor_play_at_us, (d0 + 2_000) ^ (d1 + 2_000));
            }
            p => panic!("expected parity, got {p:?}"),
        }
    }

    #[test]
    fn relay_forwards_unparseable_payloads_verbatim() {
        let mut sim = Sim::new(5);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let relay = SegmentRelay::start(
            &mut sim,
            &lan,
            RelayConfig::new(McastGroup(10), McastGroup(20)),
        );
        let listener = lan.attach("listener");
        lan.join(listener, McastGroup(20));
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        lan.set_handler(listener, move |_sim, dg: Datagram| {
            assert!(matches!(dg.dst, Dest::Multicast(McastGroup(20))));
            g.borrow_mut().push(dg.payload.clone());
        });
        let junk = Bytes::from_static(b"not a packet");
        lan.multicast(&mut sim, producer, McastGroup(10), junk.clone());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*got.borrow(), vec![junk]);
        assert_eq!(relay.stats().opaque, 1);
        assert_eq!(relay.stats().data_relayed, 0);
    }
}
