//! # es-rebroadcast — the Audio Stream Rebroadcaster (producer side)
//!
//! The user-level half of the paper's producer (Figure 3): an
//! application plays into the VAD slave; this crate reads the master,
//! paces the stream to real time, compresses it per policy, and
//! multicasts it to the Ethernet Speakers with periodic control
//! packets.
//!
//! - [`app`]: the stand-in for the unmodified audio application.
//! - [`rate`]: the §3.1 rate limiter ("why does a 5 minute song take
//!   5 minutes?").
//! - [`policy`]: §2.2's selective compression.
//! - [`producer`]: the stateless single-threaded rebroadcaster itself.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod app;
pub mod policy;
pub mod producer;
pub mod rate;
pub mod relay;

pub use app::{AppPacing, AppStats, AudioApp};
pub use policy::CompressionPolicy;
pub use producer::{ProducerStats, Rebroadcaster, RebroadcasterConfig};
pub use rate::RateLimiter;
pub use relay::{RelayConfig, RelayStats, SegmentRelay};
