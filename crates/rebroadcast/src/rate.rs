//! The rate limiter (§3.1, "why does a 5 minute song take 5 minutes?").
//!
//! The VAD deliberately does no pacing — "we did not want to limit the
//! functionality of the VAD by slowing it down unnecessarily" — so an
//! application that decodes a file writes it at wire speed and the
//! speakers' buffers overflow. The fix lives here, in the
//! rebroadcaster: "instruct the rebroadcaster to sleep for the exact
//! duration of time that it would take to actually play the data",
//! computed from the encoding parameters.

use es_audio::AudioConfig;
use es_sim::{SimDuration, SimTime};
use es_telemetry::{Histogram, Registry, Telemetry};

/// How often and for how long the limiter put the producer to sleep.
#[derive(Debug, Clone, Default)]
pub struct RateStats {
    /// Chunks whose send time was pushed past `now`.
    pub sleeps: u64,
    /// Total virtual time spent sleeping.
    pub total_sleep: SimDuration,
    /// Distribution of individual sleep durations, in microseconds.
    pub sleep_us: Histogram,
}

impl Telemetry for RateStats {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("rebroadcast");
        s.counter("rate_sleeps", self.sleeps)
            .counter("rate_sleep_total_us", self.total_sleep.as_micros())
            .histogram("rate_sleep_us", &self.sleep_us);
    }
}

/// Paces sends so bytes leave no faster than they play.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    enabled: bool,
    /// The stream clock: the earliest time the *next* byte may be sent.
    next_due: Option<SimTime>,
    /// Allowed head start: how far ahead of real time the sender may
    /// run (fills receiver buffers without overflowing them).
    lead: SimDuration,
    stats: RateStats,
}

impl RateLimiter {
    /// Creates an enabled limiter with a small default lead of 100 ms
    /// (roughly two audio blocks of buffer build-up at the receivers).
    pub fn new() -> Self {
        Self::with_lead(SimDuration::from_millis(100))
    }

    /// Creates an enabled limiter with an explicit lead.
    pub fn with_lead(lead: SimDuration) -> Self {
        RateLimiter {
            enabled: true,
            next_due: None,
            lead,
            stats: RateStats::default(),
        }
    }

    /// Creates a disabled limiter — the failure mode the paper
    /// describes, kept for the E-RATE experiment.
    pub fn disabled() -> Self {
        RateLimiter {
            enabled: false,
            next_due: None,
            lead: SimDuration::ZERO,
            stats: RateStats::default(),
        }
    }

    /// Whether pacing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sleep statistics accumulated by [`Self::pace`].
    pub fn stats(&self) -> &RateStats {
        &self.stats
    }

    /// Accounts for `bytes` of audio in `cfg` and returns the time at
    /// which they may be sent (`now` if the stream is keeping up or the
    /// limiter is disabled).
    ///
    /// The limiter keeps a stream clock `next_due` — the playback
    /// deadline of the chunk being offered. A chunk may leave up to
    /// `lead` before its deadline; a source that stalls past its own
    /// deadline is resynchronized instead of bursting the backlog.
    pub fn pace(&mut self, now: SimTime, cfg: &AudioConfig, bytes: usize) -> SimTime {
        if !self.enabled {
            return now;
        }
        let mut due = self.next_due.unwrap_or(now);
        if due < now {
            // The source fell behind real time (gap in the input);
            // restart the stream clock from now.
            due = now;
        }
        let playtime = SimDuration::from_nanos(cfg.nanos_for_bytes(bytes as u64));
        self.next_due = Some(due + playtime);
        // Send up to `lead` ahead of the deadline, never before now.
        let send_at = SimTime::from_nanos(due.as_nanos().saturating_sub(self.lead.as_nanos()));
        let send_at = send_at.max(now);
        if send_at > now {
            let sleep = send_at.saturating_since(now);
            self.stats.sleeps += 1;
            self.stats.total_sleep += sleep;
            self.stats.sleep_us.observe(sleep.as_micros());
        }
        send_at
    }

    /// Resets the stream clock (e.g. on reconfiguration).
    pub fn reset(&mut self) {
        self.next_due = None;
    }
}

impl Default for RateLimiter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_seconds_takes_five_seconds() {
        let mut rl = RateLimiter::with_lead(SimDuration::ZERO);
        let cfg = AudioConfig::CD;
        let chunk = 8_820usize; // 50 ms of CD audio.
        let mut t = SimTime::ZERO;
        let mut last_send = SimTime::ZERO;
        for _ in 0..100 {
            // The producer is "infinitely fast": it asks immediately.
            last_send = rl.pace(t, &cfg, chunk);
            t = last_send; // It sends, then loops.
        }
        // 100 chunks * 50 ms = 5 s; the 100th chunk leaves at 4.95 s.
        assert_eq!(last_send, SimTime::from_millis(4_950));
    }

    #[test]
    fn disabled_limiter_never_delays() {
        let mut rl = RateLimiter::disabled();
        let cfg = AudioConfig::CD;
        for _ in 0..1_000 {
            assert_eq!(
                rl.pace(SimTime::from_millis(1), &cfg, 8_820),
                SimTime::from_millis(1)
            );
        }
    }

    #[test]
    fn lead_allows_initial_burst() {
        let mut rl = RateLimiter::with_lead(SimDuration::from_millis(100));
        let cfg = AudioConfig::CD;
        // The first 100 ms worth of audio goes out immediately.
        let a = rl.pace(SimTime::ZERO, &cfg, 8_820);
        let b = rl.pace(SimTime::ZERO, &cfg, 8_820);
        let c = rl.pace(SimTime::ZERO, &cfg, 8_820);
        assert_eq!(a, SimTime::ZERO);
        assert_eq!(b, SimTime::ZERO);
        assert_eq!(c, SimTime::ZERO, "deadline 100ms minus lead 100ms");
        // The fourth chunk must wait: its deadline is at 150 ms.
        let d = rl.pace(SimTime::ZERO, &cfg, 8_820);
        assert_eq!(d, SimTime::from_millis(50));
    }

    #[test]
    fn slow_source_is_not_penalized() {
        let mut rl = RateLimiter::with_lead(SimDuration::ZERO);
        let cfg = AudioConfig::CD;
        let _ = rl.pace(SimTime::ZERO, &cfg, 8_820);
        // Source stalls for 10 seconds, then resumes: no burst debt,
        // the next chunk goes out immediately.
        let send = rl.pace(SimTime::from_secs(10), &cfg, 8_820);
        assert_eq!(send, SimTime::from_secs(10));
        // And pacing continues from there.
        let send2 = rl.pace(SimTime::from_secs(10), &cfg, 8_820);
        assert_eq!(send2, SimTime::from_secs(10) + SimDuration::from_millis(50));
    }

    #[test]
    fn phone_rate_paces_slower_stream() {
        let mut rl = RateLimiter::with_lead(SimDuration::ZERO);
        let cfg = AudioConfig::PHONE; // 8000 B/s.
        let _ = rl.pace(SimTime::ZERO, &cfg, 800); // 100 ms of audio.
        let next = rl.pace(SimTime::ZERO, &cfg, 800);
        assert_eq!(next, SimTime::from_millis(100));
    }

    #[test]
    fn reset_forgets_stream_clock() {
        let mut rl = RateLimiter::with_lead(SimDuration::ZERO);
        let cfg = AudioConfig::CD;
        for _ in 0..10 {
            rl.pace(SimTime::ZERO, &cfg, 8_820);
        }
        rl.reset();
        assert_eq!(
            rl.pace(SimTime::from_millis(3), &cfg, 8_820),
            SimTime::from_millis(3)
        );
    }
}
