//! The "off-the-shelf audio application" driver.
//!
//! The paper's whole premise is that the application is unmodified and
//! opaque — mpg123, the Real Audio player — and simply writes PCM to
//! what it believes is `/dev/audio` (§1, §2.1). This module is that
//! application for the simulator: it opens an [`AudioDevice`] (a real
//! card or a VAD slave — it cannot tell which, by design), configures
//! it with an ioctl, and writes a generated signal.
//!
//! Two pacing behaviours matter for the experiments:
//!
//! - [`AppPacing::WireSpeed`]: a file player decoding ahead of
//!   playback, writing as fast as `write(2)` accepts — the §3.1 failure
//!   mode when pointed at an unpaced VAD.
//! - [`AppPacing::RealTime`]: a live source (network radio client)
//!   producing audio as it arrives.

use std::rc::Rc;

use es_audio::convert::encode_samples;
use es_audio::gen::Signal;
use es_audio::AudioConfig;
use es_sim::{shared, Shared, Sim, SimDuration, SimTime};
use es_telemetry::{Registry, Telemetry};
use es_vad::{AudioDevice, DevError, Ioctl};

/// How the application produces data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppPacing {
    /// Write the whole clip as fast as the device accepts it.
    WireSpeed,
    /// Write one chunk per chunk-duration of virtual time.
    RealTime,
}

/// Progress counters for the application.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppStats {
    /// Bytes accepted by the device so far.
    pub bytes_written: u64,
    /// Virtual time the final write completed, if finished.
    pub finished_at: Option<SimTime>,
    /// Number of short writes encountered (back-pressure events).
    pub short_writes: u64,
}

impl Telemetry for AppStats {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("app");
        s.counter("bytes_written", self.bytes_written)
            .counter("short_writes", self.short_writes)
            .gauge(
                "finished",
                if self.finished_at.is_some() { 1.0 } else { 0.0 },
            );
    }
}

struct AppState {
    /// The open device — held like a process holds its file
    /// descriptor, so the device outlives transient closures.
    dev: Rc<AudioDevice>,
    signal: Box<dyn Signal>,
    cfg: AudioConfig,
    remaining_frames: u64,
    chunk_frames: u64,
    stats: AppStats,
    pacing: AppPacing,
}

/// Handle to a running audio application.
#[derive(Clone)]
pub struct AudioApp {
    state: Shared<AppState>,
}

impl AudioApp {
    /// Opens `dev`, configures it for `cfg`, and starts writing
    /// `duration` worth of `signal` with the given pacing. Chunks are
    /// 50 ms of audio each.
    ///
    /// Returns a handle for progress inspection.
    pub fn start(
        sim: &mut Sim,
        dev: Rc<AudioDevice>,
        cfg: AudioConfig,
        signal: Box<dyn Signal>,
        duration: SimDuration,
        pacing: AppPacing,
    ) -> Result<AudioApp, DevError> {
        dev.open()?;
        dev.ioctl(sim, Ioctl::SetInfo(cfg))?;
        let total_frames =
            (duration.as_nanos() as u128 * cfg.sample_rate as u128 / 1_000_000_000) as u64;
        let chunk_frames = (cfg.sample_rate as u64 / 20).max(1);
        let state = shared(AppState {
            dev: dev.clone(),
            signal,
            cfg,
            remaining_frames: total_frames,
            chunk_frames,
            stats: AppStats::default(),
            pacing,
        });
        let app = AudioApp {
            state: state.clone(),
        };
        pump(sim, dev, state, Vec::new());
        Ok(app)
    }

    /// Progress snapshot.
    pub fn stats(&self) -> AppStats {
        self.state.borrow().stats
    }

    /// True once every frame has been accepted by the device.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().stats.finished_at.is_some()
    }

    /// The device the application writes to.
    pub fn device(&self) -> Rc<AudioDevice> {
        self.state.borrow().dev.clone()
    }
}

/// Writes pending bytes, generating the next chunk as needed, and
/// re-arms itself on back-pressure or pacing sleeps.
fn pump(sim: &mut Sim, dev: Rc<AudioDevice>, state: Shared<AppState>, mut pending: Vec<u8>) {
    loop {
        if pending.is_empty() {
            let (done, chunk, pacing, chunk_dur) = {
                let mut st = state.borrow_mut();
                if st.remaining_frames == 0 {
                    st.stats.finished_at = Some(sim.now());
                    (true, Vec::new(), st.pacing, SimDuration::ZERO)
                } else {
                    let frames = st.chunk_frames.min(st.remaining_frames);
                    st.remaining_frames -= frames;
                    let mut mono = vec![0.0f32; frames as usize];
                    st.signal.fill(&mut mono);
                    let mut interleaved =
                        Vec::with_capacity(frames as usize * st.cfg.channels as usize);
                    for v in mono {
                        let s = es_audio::gen::f32_to_i16(v);
                        for _ in 0..st.cfg.channels {
                            interleaved.push(s);
                        }
                    }
                    let bytes = encode_samples(&interleaved, st.cfg.encoding);
                    let chunk_dur =
                        SimDuration::from_nanos(st.cfg.nanos_for_bytes(bytes.len() as u64));
                    (false, bytes, st.pacing, chunk_dur)
                }
            };
            if done {
                return;
            }
            pending = chunk;
            // A real-time source waits out the chunk duration before
            // producing the next one; the write itself happens now.
            if pacing == AppPacing::RealTime {
                let dev2 = dev.clone();
                let state2 = state.clone();
                let to_write = std::mem::take(&mut pending);
                write_all_then(sim, dev2.clone(), state2.clone(), to_write, move |sim| {
                    sim.schedule_in(chunk_dur, move |sim| {
                        pump(sim, dev2, state2, Vec::new());
                    });
                });
                return;
            }
        }
        // Wire speed: write with retry-on-block, then loop for more.
        let n = match dev.write(sim, &pending) {
            Ok(n) => n,
            Err(_) => return, // Device closed under us; stop quietly.
        };
        state.borrow_mut().stats.bytes_written += n as u64;
        pending.drain(..n);
        if !pending.is_empty() {
            state.borrow_mut().stats.short_writes += 1;
            let dev2 = dev.clone();
            let state2 = state.clone();
            dev.on_writable(move |sim| pump(sim, dev2, state2, pending));
            return;
        }
    }
}

/// Writes `data` fully (retrying on back-pressure), then calls `then`.
fn write_all_then(
    sim: &mut Sim,
    dev: Rc<AudioDevice>,
    state: Shared<AppState>,
    mut data: Vec<u8>,
    then: impl FnOnce(&mut Sim) + 'static,
) {
    let n = match dev.write(sim, &data) {
        Ok(n) => n,
        Err(_) => return,
    };
    state.borrow_mut().stats.bytes_written += n as u64;
    data.drain(..n);
    if data.is_empty() {
        then(sim);
    } else {
        state.borrow_mut().stats.short_writes += 1;
        let dev2 = dev.clone();
        dev.on_writable(move |sim| write_all_then(sim, dev2, state, data, then));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_audio::gen::Sine;
    use es_vad::{vad_pair, VadMaster, VadMode};

    fn drain_master(master: &VadMaster, sim: &mut Sim) -> u64 {
        let mut total = 0u64;
        for item in master.read(sim, usize::MAX) {
            if let es_vad::MasterItem::Audio(b) = item {
                total += b.len() as u64;
            }
        }
        total
    }

    #[test]
    fn wire_speed_app_finishes_fast() {
        // §3.1: "the producer will essentially send the entire file at
        // wire speed".
        let mut sim = Sim::new(1);
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let slave = Rc::new(slave);
        let app = AudioApp::start(
            &mut sim,
            slave,
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(30),
            AppPacing::WireSpeed,
        )
        .unwrap();
        // Keep the master drained so the app never deadlocks.
        let mut drained = 0u64;
        while !app.is_finished() {
            if !sim.step() {
                break;
            }
            drained += drain_master(&master, &mut sim);
        }
        // Let the kernel thread forward the ring's final contents.
        sim.run_for(SimDuration::from_millis(50));
        drained += drain_master(&master, &mut sim);
        let stats = app.stats();
        assert!(app.is_finished());
        // 30s of CD audio = 5,292,000 bytes, delivered in < 1s virtual.
        assert_eq!(stats.bytes_written, 5_292_000);
        assert!(stats.finished_at.unwrap() < SimTime::from_secs(1));
        assert!(stats.short_writes > 0, "back-pressure must have occurred");
        let leftover = master.stats().buffered_audio_bytes as u64;
        assert!(drained + leftover >= 5_292_000 - 8_820 * 2);
    }

    #[test]
    fn real_time_app_paces_writes() {
        let mut sim = Sim::new(1);
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let slave = Rc::new(slave);
        let app = AudioApp::start(
            &mut sim,
            slave,
            AudioConfig::CD,
            Box::new(Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(2),
            AppPacing::RealTime,
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(1));
        drain_master(&master, &mut sim);
        // Halfway through: roughly half the bytes written.
        let written = app.stats().bytes_written;
        let expected = AudioConfig::CD.bytes_per_second();
        assert!(
            (written as i64 - expected as i64).unsigned_abs() < expected / 5,
            "written {written} expected ~{expected}"
        );
        assert!(!app.is_finished());
        sim.run_until(SimTime::from_secs(3));
        drain_master(&master, &mut sim);
        sim.run_until(SimTime::from_secs(4));
        assert!(app.is_finished());
        let finished = app.stats().finished_at.unwrap();
        assert!(
            finished >= SimTime::from_millis(1_950),
            "finished too early: {finished}"
        );
    }

    #[test]
    fn app_respects_configured_encoding() {
        let mut sim = Sim::new(1);
        let (slave, master) = vad_pair(VadMode::KernelThread {
            poll: SimDuration::from_millis(5),
        });
        let slave = Rc::new(slave);
        let _app = AudioApp::start(
            &mut sim,
            slave,
            AudioConfig::PHONE,
            Box::new(Sine::new(300.0, 8_000, 0.5)),
            SimDuration::from_secs(1),
            AppPacing::WireSpeed,
        )
        .unwrap();
        sim.run_for(SimDuration::from_millis(100));
        let items = master.read(&mut sim, usize::MAX);
        // First item is the PHONE config forwarded by the ioctl.
        assert!(matches!(
            items.first(),
            Some(es_vad::MasterItem::Config(c)) if *c == AudioConfig::PHONE
        ));
        let audio: u64 = items
            .iter()
            .map(|i| match i {
                es_vad::MasterItem::Audio(b) => b.len() as u64,
                _ => 0,
            })
            .sum();
        // One second of 8 kHz mono ulaw = 8000 bytes.
        assert_eq!(audio, 8_000);
    }
}
