//! The selective-compression policy (§2.2).
//!
//! "Audio channels with low bit-rates are still sent uncompressed
//! because the use of Ogg Vorbis introduces latency and increases the
//! workload on the sender. The selective use of compression can be
//! enhanced by allowing the rebroadcast application to select the Ogg
//! Vorbis compression rate."

use es_audio::AudioConfig;
use es_codec::{CodecId, MAX_QUALITY};

/// Chooses the codec for a stream from its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionPolicy {
    /// Always send raw PCM (the early system the paper describes, with
    /// its ~1.3 Mbps per CD stream).
    Never,
    /// Always use the given codec at the given quality.
    Always {
        /// Codec to apply.
        codec: CodecId,
        /// Quality index (OVL only).
        quality: u8,
    },
    /// Compress only streams above a bit-rate threshold; quality may
    /// shrink as the raw rate grows ("more aggressive compression ...
    /// on high bit-rate audio channels where audio quality is less of a
    /// concern").
    Auto {
        /// Streams at or below this raw bit rate stay uncompressed.
        threshold_bps: u64,
        /// Quality used for streams just above the threshold.
        quality: u8,
    },
}

impl CompressionPolicy {
    /// The paper's configuration: compress CD-quality streams with the
    /// lossy codec at maximum quality ("we simply set the Ogg Vorbis
    /// quality index to its maximum"), leave telephone-grade channels
    /// alone.
    pub fn paper_default() -> Self {
        CompressionPolicy::Auto {
            threshold_bps: 256_000,
            quality: MAX_QUALITY,
        }
    }

    /// Resolves the codec and quality for a stream configuration.
    pub fn select(&self, cfg: &AudioConfig) -> (CodecId, u8) {
        match *self {
            CompressionPolicy::Never => (CodecId::Pcm, 0),
            CompressionPolicy::Always { codec, quality } => (codec, quality.min(MAX_QUALITY)),
            CompressionPolicy::Auto {
                threshold_bps,
                quality,
            } => {
                if cfg.bits_per_second() <= threshold_bps {
                    // "Still sent uncompressed" — i.e. in the stream's
                    // own raw form: companded channels stay 8-bit.
                    match cfg.encoding {
                        es_audio::Encoding::ULaw | es_audio::Encoding::ALaw => (CodecId::ULaw, 0),
                        _ => (CodecId::Pcm, 0),
                    }
                } else {
                    (CodecId::Ovl, quality.min(MAX_QUALITY))
                }
            }
        }
    }

    /// The codec wire ids this policy could ever put on the wire for
    /// `cfg` — the stream's capability advertisement. [`Self::Auto`]
    /// advertises both its branches (uncompressed fallback plus the
    /// compressed choice) because the rebroadcast application may
    /// re-select as the configured rate changes; the fixed policies
    /// advertise exactly their one codec. Sorted, deduplicated.
    pub fn advertised_codecs(&self, cfg: &AudioConfig) -> Vec<u8> {
        let mut out = match *self {
            CompressionPolicy::Never => vec![CodecId::Pcm.to_wire()],
            CompressionPolicy::Always { codec, .. } => vec![codec.to_wire()],
            CompressionPolicy::Auto { .. } => {
                let raw = match cfg.encoding {
                    es_audio::Encoding::ULaw | es_audio::Encoding::ALaw => CodecId::ULaw,
                    _ => CodecId::Pcm,
                };
                vec![self.select(cfg).0.to_wire(), raw.to_wire()]
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Default for CompressionPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_compresses_cd_not_phone() {
        let p = CompressionPolicy::paper_default();
        assert_eq!(p.select(&AudioConfig::CD), (CodecId::Ovl, MAX_QUALITY));
        // The phone channel is companded: its "raw" form is ulaw bytes.
        assert_eq!(p.select(&AudioConfig::PHONE), (CodecId::ULaw, 0));
    }

    #[test]
    fn never_always() {
        assert_eq!(
            CompressionPolicy::Never.select(&AudioConfig::CD),
            (CodecId::Pcm, 0)
        );
        let p = CompressionPolicy::Always {
            codec: CodecId::Adpcm,
            quality: 3,
        };
        assert_eq!(p.select(&AudioConfig::PHONE), (CodecId::Adpcm, 3));
    }

    #[test]
    fn quality_clamped() {
        let p = CompressionPolicy::Always {
            codec: CodecId::Ovl,
            quality: 200,
        };
        assert_eq!(p.select(&AudioConfig::CD).1, MAX_QUALITY);
    }

    #[test]
    fn threshold_boundary() {
        let p = CompressionPolicy::Auto {
            threshold_bps: AudioConfig::CD.bits_per_second(),
            quality: 5,
        };
        // At the threshold: uncompressed.
        assert_eq!(p.select(&AudioConfig::CD).0, CodecId::Pcm);
        let just_above = AudioConfig {
            sample_rate: 48_000,
            ..AudioConfig::CD
        };
        assert_eq!(p.select(&just_above).0, CodecId::Ovl);
    }
}
