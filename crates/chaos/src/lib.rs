//! # es-chaos — declarative fault-injection scenarios
//!
//! The paper's synchronization argument (§3.2) is really a claim about
//! *recovery*: speakers stay aligned despite loss, reorder, duplication
//! and producer hiccups. This crate turns that claim into executable
//! scenarios: a [`Scenario`] is a seeded script of timed impairment
//! phases ([`Fault`]s scheduled on the sim clock) plus named invariant
//! checks that read the telemetry the run produced (a [`Trace`] of
//! [`Probe`] snapshots and the event journal).
//!
//! Determinism is the point. [`conformance`] executes every scenario
//! twice with the same seed and demands byte-identical telemetry
//! fingerprints before it even looks at the invariants; any failure is
//! reported with a one-liner that reproduces the exact run:
//!
//! ```text
//! ES_CHAOS_SEED=42 cargo test --test chaos burst_loss
//! ```
//!
//! Environment knobs:
//! - `ES_CHAOS_SEED` overrides every scenario's seed (the repro hook).
//! - `ES_CHAOS_FP_DIR` writes each scenario's fingerprint to
//!   `<dir>/<name>.txt` so a driver script can diff two whole-suite
//!   runs across processes (`scripts/check.sh` does exactly that).
//! - `ES_CHAOS_JOURNAL_DIR` writes each scenario's event journal to
//!   `<dir>/<name>.jsonl` — the gate archives the healing tier's
//!   journals under `results/` for post-mortem reading.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use es_core::prelude::CompressionPolicy;
use es_core::{ChannelSpec, EsSystem, HealSpec, SessionSpec, Source, SpeakerSpec, SystemBuilder};
use es_net::{LanConfig, McastGroup};
use es_sim::{SimDuration, SimTime};
use es_telemetry::MetricsSnapshot;

/// One scripted impairment, applied at a scheduled virtual time.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Swap the LAN's physical parameters ([`es_net::Lan::set_config`]).
    Lan(LanConfig),
    /// Degrade one speaker's receive path: each datagram bound for it
    /// is independently dropped with probability `loss` for the
    /// window, then the path clears. Unlike [`Fault::PartitionSpeaker`]
    /// the speaker stays reachable — this is the lossy-leaf-link case
    /// the healing plane's FEC ladder exists for.
    DegradeSpeaker {
        /// Speaker index (declaration order).
        speaker: usize,
        /// Per-datagram loss probability, clamped to `0.0..=1.0`.
        loss: f64,
        /// Window length; reception heals by itself afterwards.
        duration: SimDuration,
    },
    /// Cut one speaker off the LAN for a window.
    PartitionSpeaker {
        /// Speaker index (declaration order).
        speaker: usize,
        /// Window length; the partition heals by itself afterwards.
        duration: SimDuration,
    },
    /// End a speaker's partition window early.
    HealSpeaker {
        /// Speaker index (declaration order).
        speaker: usize,
    },
    /// Kill a channel's rebroadcaster process (control packets stop).
    CrashProducer {
        /// Channel index (declaration order).
        channel: usize,
    },
    /// Bring a crashed rebroadcaster back.
    RestartProducer {
        /// Channel index (declaration order).
        channel: usize,
    },
    /// Multicast FLUSH to every live session: receivers drop their
    /// clocks and re-gate on the next control packet. Requires
    /// [`Scenario::negotiated`].
    FlushSessions,
    /// Broker-side TEARDOWN of one speaker's session (the receiver
    /// auto-rejoins by re-discovering). Requires
    /// [`Scenario::negotiated`].
    TeardownSpeaker {
        /// Speaker index (declaration order).
        speaker: usize,
    },
}

/// Telemetry captured at one probe instant.
pub struct Probe {
    /// When the probe was taken.
    pub at: SimTime,
    /// Full system metrics at that instant.
    pub metrics: MetricsSnapshot,
    /// Playback offset of each speaker `i > 0` versus speaker 0,
    /// measured by cross-correlating DAC taps over a window ending
    /// shortly before the probe. `None` while a speaker has not played
    /// through the window (e.g. mid-partition).
    pub offsets: Vec<Option<SimDuration>>,
}

/// Everything one scenario run produced.
pub struct Trace {
    /// Scenario name.
    pub name: String,
    /// The seed the run actually used (after any env override).
    pub seed: u64,
    /// Probe snapshots in time order; the last one is taken at the end
    /// of the run.
    pub probes: Vec<Probe>,
    /// The system journal as JSON lines (scripted faults emit events
    /// here alongside the components' own diagnostics).
    pub journal_lines: String,
    /// Number of speakers in the deployment.
    pub speakers: usize,
    /// Test binary [`Trace::repro`] names (`chaos` or `healing`).
    pub test_binary: String,
}

impl Trace {
    /// The snapshot taken when the run ended.
    pub fn final_probe(&self) -> &Probe {
        self.probes.last().expect("a run always probes at the end")
    }

    /// The probe taken at exactly `at` after the epoch, if one was
    /// scheduled there.
    pub fn probe_at(&self, at: SimDuration) -> Option<&Probe> {
        let t = SimTime::ZERO + at;
        self.probes.iter().find(|p| p.at == t)
    }

    /// The one-liner that reproduces this exact run.
    pub fn repro(&self) -> String {
        format!(
            "ES_CHAOS_SEED={} cargo test --test {} {}",
            self.seed, self.test_binary, self.name
        )
    }

    /// A canonical byte string of everything observable: probe times,
    /// metrics JSON lines, playback offsets and the journal. Two runs
    /// of the same scenario with the same seed must produce identical
    /// fingerprints — this is the determinism contract [`conformance`]
    /// enforces.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario={} seed={}\n", self.name, self.seed));
        for p in &self.probes {
            out.push_str(&format!("== probe @ {} ns\n", p.at.as_nanos()));
            for (i, off) in p.offsets.iter().enumerate() {
                out.push_str(&format!(
                    "offset[0,{}]={}\n",
                    i + 1,
                    off.map_or(-1, |d| d.as_micros() as i64)
                ));
            }
            out.push_str(&p.metrics.to_json_lines());
        }
        out.push_str("== journal\n");
        out.push_str(&self.journal_lines);
        out
    }
}

/// A named invariant evaluated against the finished [`Trace`].
type CheckFn = Box<dyn Fn(&Trace) -> Result<(), String>>;

/// A declarative chaos scenario: deployment shape, a script of timed
/// faults, probe instants, and invariant checks.
pub struct Scenario {
    name: String,
    seed: u64,
    lan: LanConfig,
    speakers: usize,
    conceal_loss: bool,
    negotiated: bool,
    clicks: bool,
    fec_group: Option<u8>,
    playout_delay: Option<SimDuration>,
    healing: Option<HealSpec>,
    stream: SimDuration,
    run_for: SimDuration,
    phases: Vec<(SimDuration, Fault)>,
    probes: Vec<SimDuration>,
    checks: Vec<(String, CheckFn)>,
    test_binary: String,
}

impl Scenario {
    /// A scenario named `name`: one CD music channel streaming for 8
    /// virtual seconds, two speakers, a 10-second run, default LAN.
    /// `ES_CHAOS_SEED` in the environment overrides `seed`.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Scenario {
            name: name.into(),
            seed,
            lan: LanConfig::default(),
            speakers: 2,
            conceal_loss: false,
            negotiated: false,
            clicks: false,
            fec_group: None,
            playout_delay: None,
            healing: None,
            stream: SimDuration::from_secs(8),
            run_for: SimDuration::from_secs(10),
            phases: Vec::new(),
            probes: Vec::new(),
            checks: Vec::new(),
            test_binary: "chaos".into(),
        }
    }

    /// Initial LAN parameters (later [`Fault::Lan`] phases replace
    /// them).
    pub fn lan(mut self, lan: LanConfig) -> Self {
        self.lan = lan;
        self
    }

    /// Number of speakers (all powered on at t=0).
    pub fn speakers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a scenario needs at least one speaker");
        self.speakers = n;
        self
    }

    /// Enables packet-loss concealment on every speaker.
    pub fn conceal_loss(mut self) -> Self {
        self.conceal_loss = true;
        self
    }

    /// Speakers join by session handshake (DISCOVER → SETUP on announce
    /// group 0) instead of static group wiring, and the producer runs a
    /// session broker. Enables [`Fault::FlushSessions`] and
    /// [`Fault::TeardownSpeaker`].
    pub fn negotiated(mut self) -> Self {
        self.negotiated = true;
        self
    }

    /// Streams an uncompressed click train instead of music — the
    /// sharpest signal for the cross-correlation sync probes.
    pub fn clicks(mut self) -> Self {
        self.clicks = true;
        self
    }

    /// Emits one XOR-parity packet per `n` data packets (FEC).
    pub fn fec_group(mut self, n: u8) -> Self {
        self.fec_group = Some(n);
        self
    }

    /// Overrides the channel's receiver playout delay (a deep playout
    /// buffer gives NACK retransmissions time to land before their
    /// deadlines).
    pub fn playout_delay(mut self, d: SimDuration) -> Self {
        self.playout_delay = Some(d);
        self
    }

    /// Enables the self-healing plane ([`SystemBuilder::healing`]).
    pub fn healing(mut self, spec: HealSpec) -> Self {
        self.healing = Some(spec);
        self
    }

    /// Names the test binary [`Trace::repro`] points at (`chaos` by
    /// default; the healing tier sets `healing`).
    pub fn test_binary(mut self, name: impl Into<String>) -> Self {
        self.test_binary = name.into();
        self
    }

    /// Stream length (the channel's clip duration).
    pub fn stream_for(mut self, d: SimDuration) -> Self {
        self.stream = d;
        self
    }

    /// Total virtual run time (must cover every phase and probe).
    pub fn run_for(mut self, d: SimDuration) -> Self {
        self.run_for = d;
        self
    }

    /// Schedules a fault `at` after the epoch.
    pub fn at(mut self, at: SimDuration, fault: Fault) -> Self {
        self.phases.push((at, fault));
        self
    }

    /// Captures a telemetry probe `at` after the epoch (one more is
    /// always taken at the end of the run).
    pub fn probe(mut self, at: SimDuration) -> Self {
        self.probes.push(at);
        self
    }

    /// Adds a named invariant check over the finished trace.
    pub fn check(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&Trace) -> Result<(), String> + 'static,
    ) -> Self {
        self.checks.push((name.into(), Box::new(f)));
        self
    }

    /// The seed this scenario will actually run with: the declared one,
    /// unless `ES_CHAOS_SEED` overrides it.
    pub fn effective_seed(&self) -> u64 {
        match std::env::var("ES_CHAOS_SEED") {
            Ok(s) => s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("ES_CHAOS_SEED={s:?} is not a u64")),
            Err(_) => self.seed,
        }
    }

    fn build(&self, seed: u64) -> EsSystem {
        let group = McastGroup(1);
        let channel_name = format!("chaos-{}", self.name);
        let mut b = SystemBuilder::new(seed).lan(self.lan).channel({
            let mut ch = ChannelSpec::new(1, group, channel_name.clone()).duration(self.stream);
            ch = if self.clicks {
                // 4 clicks/s of CD stereo, uncompressed.
                ch.source(Source::Impulses(11_025))
                    .policy(CompressionPolicy::Never)
            } else {
                ch.source(Source::Music)
            };
            if let Some(n) = self.fec_group {
                ch = ch.fec_group(n);
            }
            if let Some(d) = self.playout_delay {
                ch = ch.playout_delay(d);
            }
            ch
        });
        if self.negotiated {
            b = b.sessions(SessionSpec::new(McastGroup(0)));
        }
        if let Some(h) = &self.healing {
            b = b.healing(h.clone());
        }
        for i in 0..self.speakers {
            let mut spec = if self.negotiated {
                SpeakerSpec::negotiated(format!("es{i}"), channel_name.clone())
            } else {
                SpeakerSpec::new(format!("es{i}"), group)
            };
            if self.conceal_loss {
                spec = spec.loss_concealment();
            }
            b = b.speaker(spec);
        }
        b.build()
    }

    /// Executes the scenario once and collects its [`Trace`]. Panics if
    /// a fault references a speaker or channel the deployment does not
    /// have.
    pub fn run(&self) -> Trace {
        let seed = self.effective_seed();
        let mut sys = self.build(seed);
        let lan = sys.lan().clone();

        // Script the fault phases onto the sim clock. All speakers
        // power on at t=0, so their node ids exist now.
        for (at, fault) in &self.phases {
            let at = *at;
            match fault {
                Fault::Lan(cfg) => {
                    let lan = lan.clone();
                    let cfg = *cfg;
                    sys.sim.schedule_in(at, move |sim| lan.set_config(sim, cfg));
                }
                Fault::DegradeSpeaker {
                    speaker,
                    loss,
                    duration,
                } => {
                    let node = sys
                        .speaker(*speaker)
                        .expect("scenario speakers power on at t=0")
                        .node();
                    let loss = *loss;
                    let sick = lan.clone();
                    sys.sim
                        .schedule_in(at, move |sim| sick.degrade(sim, node, loss));
                    let clear = lan.clone();
                    sys.sim
                        .schedule_in(at + *duration, move |sim| clear.degrade(sim, node, 0.0));
                }
                Fault::PartitionSpeaker { speaker, duration } => {
                    let node = sys
                        .speaker(*speaker)
                        .expect("scenario speakers power on at t=0")
                        .node();
                    let until = SimTime::ZERO + at + *duration;
                    let partition = lan.clone();
                    sys.sim
                        .schedule_in(at, move |sim| partition.partition(sim, node, until));
                    // An explicit heal at window end, so the journal
                    // records both edges of the outage.
                    let heal = lan.clone();
                    sys.sim
                        .schedule_in(at + *duration, move |sim| heal.heal(sim, node));
                }
                Fault::HealSpeaker { speaker } => {
                    let lan = lan.clone();
                    let node = sys
                        .speaker(*speaker)
                        .expect("scenario speakers power on at t=0")
                        .node();
                    sys.sim.schedule_in(at, move |sim| lan.heal(sim, node));
                }
                Fault::CrashProducer { channel } => {
                    let rb = sys.rebroadcaster(*channel).clone();
                    sys.sim.schedule_in(at, move |sim| rb.crash(sim));
                }
                Fault::RestartProducer { channel } => {
                    let rb = sys.rebroadcaster(*channel).clone();
                    sys.sim.schedule_in(at, move |sim| rb.restart(sim));
                }
                Fault::FlushSessions => {
                    let broker = sys
                        .broker()
                        .expect("FlushSessions requires .negotiated()")
                        .clone();
                    sys.sim.schedule_in(at, move |sim| broker.flush_all(sim));
                }
                Fault::TeardownSpeaker { speaker } => {
                    let broker = sys
                        .broker()
                        .expect("TeardownSpeaker requires .negotiated()")
                        .clone();
                    let name = format!("es{speaker}");
                    sys.sim
                        .schedule_in(at, move |sim| broker.teardown_speaker(sim, &name));
                }
            }
        }

        // Run in segments, pausing at each probe instant to capture a
        // snapshot (metrics walks never consume simulator randomness,
        // so probing does not perturb the run).
        let mut probe_times: Vec<SimDuration> = self.probes.clone();
        probe_times.sort();
        probe_times.dedup();
        probe_times.retain(|&t| t < self.run_for);
        probe_times.push(self.run_for);

        let mut probes = Vec::with_capacity(probe_times.len());
        for at in probe_times {
            let t = SimTime::ZERO + at;
            sys.run_until(t);
            probes.push(self.capture(&sys, t));
        }

        Trace {
            name: self.name.clone(),
            seed,
            probes,
            journal_lines: sys.journal().to_json_lines(),
            speakers: self.speakers,
            test_binary: self.test_binary.clone(),
        }
    }

    fn capture(&self, sys: &EsSystem, at: SimTime) -> Probe {
        // Correlate over a window that ended comfortably before the
        // probe so both taps have played through it.
        let window_start = SimTime::from_nanos(at.as_nanos().saturating_sub(1_500_000_000));
        let offsets = (1..self.speakers)
            .map(|i| sys.playback_offset(0, i, window_start, SimDuration::from_millis(100)))
            .collect();
        Probe {
            at,
            metrics: sys.metrics(),
            offsets,
        }
    }
}

/// Runs `scenario` twice with the same seed, verifies the two traces
/// are byte-identical, evaluates every invariant check, and returns the
/// first run's trace. Any failure panics with the scenario, the seed,
/// and the exact one-liner that reproduces the run.
pub fn conformance(scenario: &Scenario) -> Trace {
    let first = scenario.run();
    let second = scenario.run();
    let (fa, fb) = (first.fingerprint(), second.fingerprint());
    if fa != fb {
        let diff_at = fa
            .lines()
            .zip(fb.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fa.lines().count().min(fb.lines().count()));
        panic!(
            "NONDETERMINISM in scenario '{}': two runs with seed {} diverge \
             at fingerprint line {} — reproduce with: {}",
            first.name,
            first.seed,
            diff_at,
            first.repro()
        );
    }
    if let Ok(dir) = std::env::var("ES_CHAOS_FP_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{}.txt", first.name));
        std::fs::write(&path, &fa)
            .unwrap_or_else(|e| panic!("cannot write fingerprint {}: {e}", path.display()));
    }
    if let Ok(dir) = std::env::var("ES_CHAOS_JOURNAL_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{}.jsonl", first.name));
        std::fs::write(&path, &first.journal_lines)
            .unwrap_or_else(|e| panic!("cannot write journal {}: {e}", path.display()));
    }
    for (name, check) in &scenario.checks {
        if let Err(why) = check(&first) {
            panic!(
                "INVARIANT '{name}' failed in scenario '{}': {why}\n  reproduce with: {}",
                first.name,
                first.repro()
            );
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scenario {
        Scenario::new("unit", 7)
            .stream_for(SimDuration::from_secs(2))
            .run_for(SimDuration::from_secs(3))
            .probe(SimDuration::from_secs(1))
    }

    #[test]
    fn run_collects_probes_in_order() {
        let trace = quick().run();
        assert_eq!(trace.probes.len(), 2, "one scheduled + one final");
        assert_eq!(trace.probes[0].at, SimTime::from_secs(1));
        assert_eq!(trace.final_probe().at, SimTime::from_secs(3));
        assert!(trace.probe_at(SimDuration::from_secs(1)).is_some());
        assert!(trace.probe_at(SimDuration::from_secs(2)).is_none());
        // A healthy default LAN delivers traffic to both speakers.
        let m = &trace.final_probe().metrics;
        assert!(m.counter("net/lan0/frames_delivered").unwrap() > 0);
        assert_eq!(m.counter("net/lan0/frames_dropped"), Some(0));
    }

    #[test]
    fn conformance_is_deterministic_and_checks_run() {
        let ran = std::rc::Rc::new(std::cell::Cell::new(false));
        let ran2 = ran.clone();
        let trace = conformance(&quick().check("samples-played", move |t| {
            ran2.set(true);
            let played = t
                .final_probe()
                .metrics
                .sum_counters("speaker", "samples_played");
            if played == 0 {
                return Err("no audio played".into());
            }
            Ok(())
        }));
        assert!(ran.get(), "check must execute");
        assert_eq!(trace.seed, trace.seed);
        assert!(trace.repro().contains("cargo test --test chaos unit"));
    }

    #[test]
    #[should_panic(expected = "INVARIANT 'always-fails'")]
    fn failed_check_panics_with_repro() {
        conformance(&quick().check("always-fails", |_| Err("nope".into())));
    }

    #[test]
    fn degrade_fault_drops_and_clears() {
        let trace = Scenario::new("unit-degrade", 9)
            .test_binary("healing")
            .stream_for(SimDuration::from_secs(2))
            .run_for(SimDuration::from_secs(3))
            .at(
                SimDuration::from_millis(500),
                Fault::DegradeSpeaker {
                    speaker: 1,
                    loss: 0.5,
                    duration: SimDuration::from_millis(800),
                },
            )
            .probe(SimDuration::from_millis(1_300))
            .run();
        let mid = trace
            .probe_at(SimDuration::from_millis(1_300))
            .unwrap()
            .metrics
            .counter("net/lan0/frames_degraded")
            .unwrap();
        assert!(mid > 0, "window must drop frames");
        let end = trace
            .final_probe()
            .metrics
            .counter("net/lan0/frames_degraded")
            .unwrap();
        assert_eq!(mid, end, "drops must stop once the window clears");
        assert!(trace.journal_lines.contains("receiver degraded"));
        assert!(trace.repro().contains("--test healing"));
    }

    #[test]
    fn faults_schedule_and_journal() {
        let trace = Scenario::new("unit-faults", 3)
            .stream_for(SimDuration::from_secs(2))
            .run_for(SimDuration::from_secs(3))
            .at(
                SimDuration::from_millis(500),
                Fault::PartitionSpeaker {
                    speaker: 1,
                    duration: SimDuration::from_millis(400),
                },
            )
            .at(
                SimDuration::from_secs(1),
                Fault::CrashProducer { channel: 0 },
            )
            .at(
                SimDuration::from_millis(1_500),
                Fault::RestartProducer { channel: 0 },
            )
            .run();
        let m = &trace.final_probe().metrics;
        assert!(m.counter("net/lan0/frames_partitioned").unwrap() > 0);
        assert_eq!(m.counter("rebroadcast/ch0/crashes"), Some(1));
        for needle in [
            "receiver partitioned",
            "rebroadcaster crashed",
            "rebroadcaster restarted",
        ] {
            assert!(
                trace.journal_lines.contains(needle),
                "journal missing {needle:?}"
            );
        }
    }
}
