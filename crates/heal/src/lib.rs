//! # es-heal — telemetry-driven self-healing policy
//!
//! The paper's producer is deliberately stateless about its receivers
//! (§2.2); this crate is the *management-plane* counterpart §5.3
//! gestures at: a pure, deterministic policy engine that watches
//! per-receiver reception telemetry epoch by epoch and decides repair
//! actions. It owns no I/O and no clock — `es-core`'s heal monitor
//! feeds it [`EpochSample`]s from [`MetricsSnapshot`] deltas and
//! executes whatever [`HealAction`]s come back, so every decision is
//! reproducible from the journal alone.
//!
//! Three repairs are modelled, in escalating order of intrusiveness:
//!
//! 1. **Loss-adaptive FEC** — the parity-group ladder
//!    `None → 8 → 4 → 2` (smaller group = more parity overhead =
//!    stronger protection), raised for the whole channel when any
//!    receiver is *sustainedly* sick, lowered when the whole fleet has
//!    been healthy for a while.
//! 2. **NACK retransmission** — receivers report missing sequence
//!    ranges; the monitor relays them to the producer's retransmit
//!    cache. The planner here only journals the decision shape.
//! 3. **Producer failover** — a warm standby adopts the stream clock
//!    and session table when the primary stops emitting control
//!    packets.
//!
//! Hysteresis (`raise_after` sick epochs before escalating,
//! `recover_after` healthy epochs before relaxing) keeps a *flapping*
//! receiver — one oscillating across the sick threshold — from
//! whipsawing the FEC level; suppressed oscillations are counted
//! instead of acted on.
//!
//! [`MetricsSnapshot`]: es_telemetry::MetricsSnapshot

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use es_telemetry::{Registry, Telemetry};

/// Receiver condition as classified from one epoch's telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Within all thresholds.
    #[default]
    Healthy,
    /// Noticeable loss, but below the repair threshold.
    Degraded,
    /// Sustained loss, deadline misses, or clock drift past threshold.
    Sick,
}

impl core::fmt::Display for Health {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Health::Healthy => f.write_str("healthy"),
            Health::Degraded => f.write_str("degraded"),
            Health::Sick => f.write_str("sick"),
        }
    }
}

/// Detector thresholds and hysteresis. All tunable; the defaults are
/// what DESIGN.md §10 documents and `tests/healing.rs` exercises.
#[derive(Debug, Clone)]
pub struct HealPolicy {
    /// Loss fraction at or above which an epoch is Sick.
    pub sick_loss: f64,
    /// Loss fraction at or above which an epoch is Degraded.
    pub degraded_loss: f64,
    /// Per-epoch deadline-miss delta at or above which an epoch is
    /// Sick.
    pub sick_deadline_misses: u64,
    /// Absolute clock offset (µs) at or above which an epoch is Sick.
    pub sick_drift_us: i64,
    /// Consecutive Sick epochs before the FEC ladder is raised.
    pub raise_after: u32,
    /// Consecutive Healthy epochs (fleet-wide) before the ladder is
    /// lowered, and (per receiver) before a Sick receiver is declared
    /// recovered.
    pub recover_after: u32,
    /// FEC parity-group ladder, weakest first. `None` means parity
    /// off; a smaller group is stronger protection.
    pub fec_ladder: Vec<Option<u8>>,
}

impl Default for HealPolicy {
    fn default() -> Self {
        HealPolicy {
            sick_loss: 0.15,
            degraded_loss: 0.05,
            sick_deadline_misses: 3,
            sick_drift_us: 20_000,
            raise_after: 2,
            recover_after: 4,
            fec_ladder: vec![None, Some(8), Some(4), Some(2)],
        }
    }
}

/// One receiver's telemetry for one virtual-time epoch, distilled from
/// [`MetricsSnapshot`] deltas by the monitor.
///
/// [`MetricsSnapshot`]: es_telemetry::MetricsSnapshot
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochSample {
    /// Reception loss fraction (RFC 3550-style, 0.0..=1.0).
    pub loss_fraction: f64,
    /// `speaker/*/deadline_misses` growth this epoch.
    pub deadline_miss_delta: u64,
    /// Current clock offset estimate versus the producer, µs.
    pub drift_us: i64,
}

/// Classifies one epoch sample against `policy` thresholds.
pub fn classify(policy: &HealPolicy, s: &EpochSample) -> Health {
    if s.loss_fraction >= policy.sick_loss
        || s.deadline_miss_delta >= policy.sick_deadline_misses
        || s.drift_us.abs() >= policy.sick_drift_us
    {
        Health::Sick
    } else if s.loss_fraction >= policy.degraded_loss {
        Health::Degraded
    } else {
        Health::Healthy
    }
}

/// A repair decision. `RaiseFec`/`LowerFec`/`Recovered` come out of
/// [`FleetDetector::end_epoch`]; `Retransmit` and `Failover` are
/// constructed by the monitor from gap reports and control-packet
/// stalls, using the same type so the journal speaks one language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealAction {
    /// Strengthen the channel's FEC one ladder rung.
    RaiseFec {
        /// Previous parity-group size (`None` = parity off).
        from: Option<u8>,
        /// New parity-group size.
        to: Option<u8>,
    },
    /// Relax the channel's FEC one ladder rung.
    LowerFec {
        /// Previous parity-group size.
        from: Option<u8>,
        /// New parity-group size (`None` = parity off).
        to: Option<u8>,
    },
    /// Ask the producer to re-multicast missed sequence ranges.
    Retransmit {
        /// Receiver that reported the gaps.
        target: String,
        /// `(first_seq, count)` ranges to refill.
        ranges: Vec<(u32, u16)>,
    },
    /// Promote the standby producer.
    Failover,
    /// A formerly Sick receiver has stayed healthy `recover_after`
    /// epochs.
    Recovered {
        /// The recovered receiver.
        target: String,
    },
}

/// Lifecycle counters for the healing plane, exported under component
/// `heal`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealStats {
    /// Monitor epochs completed.
    pub epochs: u64,
    /// FEC ladder raises applied.
    pub fec_raises: u64,
    /// FEC ladder lowers applied.
    pub fec_lowers: u64,
    /// NACK retransmission requests relayed to the producer.
    pub retransmits_requested: u64,
    /// Standby promotions triggered.
    pub failovers: u64,
    /// Sick receivers that returned to sustained health.
    pub recoveries: u64,
    /// One-epoch health oscillations damped instead of acted on.
    pub suppressed_flaps: u64,
}

impl Telemetry for HealStats {
    fn record(&self, registry: &mut Registry) {
        registry
            .component("heal")
            .counter("epochs", self.epochs)
            .counter("fec_raises", self.fec_raises)
            .counter("fec_lowers", self.fec_lowers)
            .counter("retransmits_requested", self.retransmits_requested)
            .counter("failovers", self.failovers)
            .counter("recoveries", self.recoveries)
            .counter("suppressed_flaps", self.suppressed_flaps);
    }
}

#[derive(Debug, Default)]
struct ReceiverState {
    /// Reported (hysteresis-filtered) health.
    reported: Health,
    sick_streak: u32,
    healthy_streak: u32,
    /// Latest raw classification (for inspection).
    last: Health,
}

/// Per-fleet detector: feed every receiver's [`EpochSample`] each
/// epoch via [`FleetDetector::observe`], then call
/// [`FleetDetector::end_epoch`] for the epoch's repair decisions.
/// Deterministic: iteration is name-ordered (BTreeMap) and no clocks
/// or randomness are consulted.
#[derive(Debug)]
pub struct FleetDetector {
    policy: HealPolicy,
    /// Current rung on `policy.fec_ladder`.
    fec_idx: usize,
    receivers: BTreeMap<String, ReceiverState>,
    /// Counters; `epochs`/`fec_*`/`recoveries`/`suppressed_flaps` are
    /// maintained here, the action-execution counters by the monitor.
    pub stats: HealStats,
}

impl FleetDetector {
    /// A detector starting at the bottom (weakest) ladder rung.
    pub fn new(policy: HealPolicy) -> Self {
        assert!(
            !policy.fec_ladder.is_empty(),
            "the FEC ladder needs at least one rung"
        );
        FleetDetector {
            policy,
            fec_idx: 0,
            receivers: BTreeMap::new(),
            stats: HealStats::default(),
        }
    }

    /// Starts the ladder at the rung matching `group` (e.g. when the
    /// channel was configured with FEC already on). Unknown values
    /// leave the detector at the bottom rung.
    pub fn seed_fec_level(&mut self, group: Option<u8>) {
        if let Some(i) = self.policy.fec_ladder.iter().position(|&g| g == group) {
            self.fec_idx = i;
        }
    }

    /// The ladder rung currently in force.
    pub fn fec_level(&self) -> Option<u8> {
        self.policy.fec_ladder[self.fec_idx]
    }

    /// The hysteresis-filtered health of `name` (Healthy for unknown
    /// receivers).
    pub fn health_of(&self, name: &str) -> Health {
        self.receivers
            .get(name)
            .map_or(Health::Healthy, |r| r.reported)
    }

    /// Records one receiver's epoch sample; returns the raw (pre-
    /// hysteresis) classification.
    pub fn observe(&mut self, name: &str, sample: EpochSample) -> Health {
        let h = classify(&self.policy, &sample);
        let raise_after = self.policy.raise_after;
        let r = self.receivers.entry(name.to_string()).or_default();
        r.last = h;
        match h {
            Health::Sick => {
                r.sick_streak += 1;
                r.healthy_streak = 0;
            }
            Health::Healthy => {
                // A short sick burst that ended on its own is a flap:
                // count it, do not escalate.
                if r.sick_streak > 0 && r.sick_streak < raise_after {
                    self.stats.suppressed_flaps += 1;
                }
                r.sick_streak = 0;
                r.healthy_streak += 1;
            }
            Health::Degraded => {
                // Neutral: neither streak accumulates.
                if r.sick_streak > 0 && r.sick_streak < raise_after {
                    self.stats.suppressed_flaps += 1;
                }
                r.sick_streak = 0;
                r.healthy_streak = 0;
            }
        }
        h
    }

    /// Closes the epoch: applies hysteresis, moves the FEC ladder, and
    /// returns the repair decisions in deterministic order (raises
    /// before lowers before recoveries; receivers name-ordered).
    pub fn end_epoch(&mut self) -> Vec<HealAction> {
        self.stats.epochs += 1;
        let mut actions = Vec::new();
        // Escalation: any receiver sustainedly sick raises the ladder
        // one rung per epoch at most.
        let mut raise = false;
        for r in self.receivers.values_mut() {
            if r.sick_streak >= self.policy.raise_after {
                if r.reported != Health::Sick {
                    r.reported = Health::Sick;
                }
                raise = true;
                // Demand renewed sustained sickness for the next rung.
                r.sick_streak = 0;
            }
        }
        if raise && self.fec_idx + 1 < self.policy.fec_ladder.len() {
            let from = self.policy.fec_ladder[self.fec_idx];
            self.fec_idx += 1;
            let to = self.policy.fec_ladder[self.fec_idx];
            self.stats.fec_raises += 1;
            actions.push(HealAction::RaiseFec { from, to });
        }
        // Recoveries: a reported-Sick receiver healthy long enough.
        // Decided before relaxation, which resets the streaks it reads.
        let mut recovered = Vec::new();
        for (name, r) in self.receivers.iter_mut() {
            if r.reported == Health::Sick && r.healthy_streak >= self.policy.recover_after {
                r.reported = Health::Healthy;
                self.stats.recoveries += 1;
                recovered.push(name.clone());
            }
        }
        // Relaxation: the whole fleet healthy long enough lowers one
        // rung and restarts the clock.
        let all_recovered = !self.receivers.is_empty()
            && self
                .receivers
                .values()
                .all(|r| r.healthy_streak >= self.policy.recover_after);
        if all_recovered && self.fec_idx > 0 {
            let from = self.policy.fec_ladder[self.fec_idx];
            self.fec_idx -= 1;
            let to = self.policy.fec_ladder[self.fec_idx];
            self.stats.fec_lowers += 1;
            for r in self.receivers.values_mut() {
                r.healthy_streak = 0;
            }
            actions.push(HealAction::LowerFec { from, to });
        }
        actions.extend(
            recovered
                .into_iter()
                .map(|target| HealAction::Recovered { target }),
        );
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sick() -> EpochSample {
        EpochSample {
            loss_fraction: 0.3,
            ..EpochSample::default()
        }
    }

    fn healthy() -> EpochSample {
        EpochSample::default()
    }

    #[test]
    fn classify_thresholds() {
        let p = HealPolicy::default();
        assert_eq!(classify(&p, &healthy()), Health::Healthy);
        assert_eq!(
            classify(
                &p,
                &EpochSample {
                    loss_fraction: 0.06,
                    ..Default::default()
                }
            ),
            Health::Degraded
        );
        assert_eq!(classify(&p, &sick()), Health::Sick);
        assert_eq!(
            classify(
                &p,
                &EpochSample {
                    deadline_miss_delta: 3,
                    ..Default::default()
                }
            ),
            Health::Sick
        );
        assert_eq!(
            classify(
                &p,
                &EpochSample {
                    drift_us: -25_000,
                    ..Default::default()
                }
            ),
            Health::Sick
        );
    }

    #[test]
    fn sustained_sickness_climbs_the_ladder_one_rung_per_epoch() {
        let mut d = FleetDetector::new(HealPolicy::default());
        assert_eq!(d.fec_level(), None);
        // Epoch 1: one sick epoch is not enough.
        d.observe("es1", sick());
        d.observe("es2", healthy());
        assert!(d.end_epoch().is_empty());
        // Epoch 2: raise_after reached — one rung.
        d.observe("es1", sick());
        d.observe("es2", healthy());
        let a = d.end_epoch();
        assert_eq!(
            a,
            vec![HealAction::RaiseFec {
                from: None,
                to: Some(8)
            }]
        );
        assert_eq!(d.health_of("es1"), Health::Sick);
        // Two more sick epochs: the next rung.
        d.observe("es1", sick());
        assert!(d.end_epoch().is_empty());
        d.observe("es1", sick());
        assert_eq!(
            d.end_epoch(),
            vec![HealAction::RaiseFec {
                from: Some(8),
                to: Some(4)
            }]
        );
        assert_eq!(d.stats.fec_raises, 2);
    }

    #[test]
    fn ladder_tops_out() {
        let mut d = FleetDetector::new(HealPolicy::default());
        for _ in 0..20 {
            d.observe("es1", sick());
            d.end_epoch();
        }
        assert_eq!(d.fec_level(), Some(2), "strongest rung");
        assert_eq!(d.stats.fec_raises, 3, "one raise per rung only");
    }

    #[test]
    fn fleet_health_lowers_the_ladder_and_reports_recovery() {
        let mut d = FleetDetector::new(HealPolicy::default());
        for _ in 0..2 {
            d.observe("es1", sick());
            d.observe("es2", healthy());
            d.end_epoch();
        }
        assert_eq!(d.fec_level(), Some(8));
        // recover_after healthy epochs: lower + recovered, same epoch.
        let mut actions = Vec::new();
        for _ in 0..4 {
            d.observe("es1", healthy());
            d.observe("es2", healthy());
            actions.extend(d.end_epoch());
        }
        assert!(actions.contains(&HealAction::LowerFec {
            from: Some(8),
            to: None
        }));
        assert!(actions.contains(&HealAction::Recovered {
            target: "es1".into()
        }));
        assert_eq!(d.health_of("es1"), Health::Healthy);
        assert_eq!(d.stats.recoveries, 1);
        assert_eq!(d.fec_level(), None);
    }

    #[test]
    fn one_epoch_flaps_are_damped_not_acted_on() {
        let mut d = FleetDetector::new(HealPolicy::default());
        // sick, healthy, sick, healthy … never two in a row.
        for i in 0..8 {
            let s = if i % 2 == 0 { sick() } else { healthy() };
            d.observe("es1", s);
            assert!(d.end_epoch().is_empty(), "flap must not move the ladder");
        }
        assert_eq!(d.fec_level(), None);
        assert_eq!(d.stats.suppressed_flaps, 4);
        assert_eq!(d.stats.fec_raises, 0);
    }

    #[test]
    fn seeded_fec_level_starts_mid_ladder() {
        let mut d = FleetDetector::new(HealPolicy::default());
        d.seed_fec_level(Some(4));
        assert_eq!(d.fec_level(), Some(4));
        d.observe("es1", sick());
        d.end_epoch();
        d.observe("es1", sick());
        assert_eq!(
            d.end_epoch(),
            vec![HealAction::RaiseFec {
                from: Some(4),
                to: Some(2)
            }]
        );
    }

    #[test]
    fn stats_export_under_heal_component() {
        let mut d = FleetDetector::new(HealPolicy::default());
        for _ in 0..3 {
            d.observe("es1", sick());
            d.end_epoch();
        }
        let mut reg = Registry::new();
        d.stats.record(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("heal/0/epochs"), Some(3));
        assert_eq!(snap.counter("heal/0/fec_raises"), Some(1));
    }
}
