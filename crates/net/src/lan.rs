//! The simulated switched-Ethernet LAN.
//!
//! §2.3 restricts the whole system to one Ethernet segment: "low error
//! rates, ample bandwidth, and most importantly, well behaved packet
//! arrival", with multicast available by default. This module models
//! exactly that environment — and lets the experiments break each
//! assumption on purpose (legacy 10 Mbps links for the bandwidth
//! experiment, injected loss and jitter for E-LOSS).
//!
//! The model is a store-and-forward switch: each sender owns an egress
//! link with FIFO serialization at the configured line rate; delivery
//! to every receiver adds propagation delay plus optional Gaussian
//! jitter; loss is sampled per receiver. Multicast frames fan out to
//! all members of the destination group ("everybody receives a
//! multicast packet at the same time" — §3.2's uniformity assumption —
//! holds exactly when jitter is zero).

use std::any::Any;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use es_sim::random::{chance, normal, GilbertElliott};
use es_sim::{
    fleet, shared, BucketAccumulator, ShardRouter, Shared, Sim, SimDuration, SimTime, TimeSeries,
};
use es_telemetry::{Journal, Registry, Severity, ShardBuffer, ShardDrain, Stamp, Telemetry};

/// Identifies a host attached to the LAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

/// A multicast group address ("the multicast addresses used for the
/// audio channels", §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct McastGroup(pub u16);

/// A datagram destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// One host.
    Unicast(NodeId),
    /// Every member of a group except the sender.
    Multicast(McastGroup),
}

/// A received datagram, as handed to a node's receive handler.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sending host.
    pub src: NodeId,
    /// Destination as sent.
    pub dst: Dest,
    /// Payload bytes (the UDP payload; wire overhead is accounted
    /// separately).
    pub payload: Bytes,
}

/// Per-frame wire overhead in bytes: Ethernet header + CRC (18), IP
/// (20), UDP (8), preamble + inter-frame gap (20).
pub const WIRE_OVERHEAD: usize = 66;

/// How the medium is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MediumMode {
    /// Modern switched Ethernet: every sender owns its link, the switch
    /// forwards at line rate (the paper's "fast Ethernet" case).
    #[default]
    Switched,
    /// A shared collision domain (hub / coax / the paper's "legacy
    /// 10Mbps" and "wireless links"): one transmission at a time for
    /// the whole segment.
    SharedHub,
}

/// Gilbert–Elliott burst-loss parameters (per receiver, per fragment).
///
/// When set on a [`LanConfig`] this *replaces* the i.i.d. `loss_prob`
/// model: each receiver carries its own two-state chain, stepped once
/// per wire fragment, losing fragments at `loss_good` in the quiet
/// state and `loss_bad` inside a burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLossConfig {
    /// Per-step probability of entering a burst.
    pub p_good_to_bad: f64,
    /// Per-step probability of a burst ending (mean burst length is its
    /// reciprocal, in fragments).
    pub p_bad_to_good: f64,
    /// Fragment loss probability in the quiet state.
    pub loss_good: f64,
    /// Fragment loss probability inside a burst.
    pub loss_bad: f64,
}

impl BurstLossConfig {
    /// A convenient bursty profile: clean quiet state, bursts of mean
    /// length `mean_burst` fragments arriving so that the long-run
    /// fragment loss rate is roughly `target_loss` (burst-state loss is
    /// total).
    pub fn bursty(target_loss: f64, mean_burst: f64) -> Self {
        let p_bad_to_good = 1.0 / mean_burst.max(1.0);
        // Stationary bad occupancy g/(g+b) == target_loss.
        let p_good_to_bad = (target_loss * p_bad_to_good / (1.0 - target_loss).max(1e-9)).min(1.0);
        BurstLossConfig {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }
}

/// LAN physical parameters.
#[derive(Debug, Clone, Copy)]
pub struct LanConfig {
    /// Line rate per link in bits per second (100 Mbps fast Ethernet by
    /// default; 10 Mbps reproduces the paper's "legacy" case).
    pub bandwidth_bps: u64,
    /// Fixed propagation + switching delay.
    pub propagation: SimDuration,
    /// Standard deviation of Gaussian per-receiver delivery jitter.
    pub jitter_std: SimDuration,
    /// Independent per-receiver, per-fragment drop probability (ignored
    /// while `burst` is set).
    pub loss_prob: f64,
    /// Maximum UDP payload per wire frame; larger datagrams fragment
    /// and are lost whole if any fragment is lost.
    pub mtu: usize,
    /// Switched or shared medium.
    pub medium: MediumMode,
    /// Two-state burst loss; `None` keeps the i.i.d. `loss_prob` model.
    pub burst: Option<BurstLossConfig>,
    /// Probability a delivery is reordered: held back by
    /// `reorder_delay` so later traffic overtakes it.
    pub reorder_prob: f64,
    /// How long a reordered delivery is held back (bounded — the packet
    /// is late, never dropped by the reorderer itself).
    pub reorder_delay: SimDuration,
    /// Probability a delivery is duplicated; the copy trails the
    /// original by one extra propagation delay.
    pub duplicate_prob: f64,
}

impl Default for LanConfig {
    fn default() -> Self {
        LanConfig {
            bandwidth_bps: 100_000_000,
            propagation: SimDuration::from_micros(50),
            jitter_std: SimDuration::ZERO,
            loss_prob: 0.0,
            mtu: 1_472,
            medium: MediumMode::Switched,
            burst: None,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            duplicate_prob: 0.0,
        }
    }
}

impl LanConfig {
    /// Legacy 10 Mbps Ethernet — where §2.2 says raw CD streams became
    /// unacceptable. Legacy segments were shared collision domains, so
    /// the whole LAN carries one frame at a time.
    pub fn legacy_10mbps() -> Self {
        LanConfig {
            bandwidth_bps: 10_000_000,
            medium: MediumMode::SharedHub,
            ..LanConfig::default()
        }
    }

    /// A misbehaving network for fault-injection experiments.
    pub fn lossy(loss_prob: f64, jitter_std: SimDuration) -> Self {
        LanConfig {
            loss_prob,
            jitter_std,
            ..LanConfig::default()
        }
    }

    /// Gilbert–Elliott burst loss on an otherwise clean LAN.
    pub fn bursty(target_loss: f64, mean_burst: f64) -> Self {
        LanConfig {
            burst: Some(BurstLossConfig::bursty(target_loss, mean_burst)),
            ..LanConfig::default()
        }
    }

    /// A reordering LAN: each delivery is held back by `delay` with
    /// probability `prob`.
    pub fn reordering(prob: f64, delay: SimDuration) -> Self {
        LanConfig {
            reorder_prob: prob,
            reorder_delay: delay,
            ..LanConfig::default()
        }
    }

    /// A duplicating LAN: each delivery is copied with probability
    /// `prob`.
    pub fn duplicating(prob: f64) -> Self {
        LanConfig {
            duplicate_prob: prob,
            ..LanConfig::default()
        }
    }
}

/// Aggregate traffic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LanStats {
    /// Datagrams submitted by senders.
    pub datagrams_sent: u64,
    /// Datagrams submitted to a multicast destination.
    pub multicast_sent: u64,
    /// Datagram deliveries (one per receiver; duplicates count again).
    pub datagrams_delivered: u64,
    /// Deliveries suppressed by the loss model (including partition
    /// drops).
    pub datagrams_lost: u64,
    /// Lost multi-fragment datagrams where only *some* fragments were
    /// dropped — reassembly failures, kept distinct from whole-datagram
    /// loss so burst statistics stay honest.
    pub datagrams_lost_partial: u64,
    /// Deliveries suppressed because the receiver was partitioned
    /// (subset of `datagrams_lost`).
    pub datagrams_partitioned: u64,
    /// Deliveries suppressed by a per-receiver degrade window
    /// ([`Lan::degrade`]; subset of `datagrams_lost`).
    pub datagrams_degraded: u64,
    /// Deliveries held back by the reorder impairment.
    pub datagrams_reordered: u64,
    /// Extra copies created by the duplication impairment.
    pub datagrams_duplicated: u64,
    /// Payload bytes submitted.
    pub payload_bytes_sent: u64,
    /// Bytes on the wire including fragmentation and frame overhead.
    pub wire_bytes_sent: u64,
}

impl LanStats {
    /// Mean offered load in bits/s over `elapsed`.
    pub fn offered_bits_per_sec(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.wire_bytes_sent as f64 * 8.0 / elapsed.as_secs_f64()
    }

    /// Mean receivers reached per multicast datagram.
    pub fn multicast_fanout(&self) -> f64 {
        if self.multicast_sent == 0 {
            0.0
        } else {
            (self.datagrams_delivered + self.datagrams_lost) as f64 / self.multicast_sent as f64
        }
    }
}

impl Telemetry for LanStats {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("net");
        s.counter("frames_sent", self.datagrams_sent)
            .counter("frames_delivered", self.datagrams_delivered)
            .counter("frames_dropped", self.datagrams_lost)
            .counter("frames_dropped_partial", self.datagrams_lost_partial)
            .counter("frames_partitioned", self.datagrams_partitioned)
            .counter("frames_degraded", self.datagrams_degraded)
            .counter("frames_reordered", self.datagrams_reordered)
            .counter("frames_duplicated", self.datagrams_duplicated)
            .counter("multicast_frames", self.multicast_sent)
            .counter("payload_bytes_sent", self.payload_bytes_sent)
            .counter("wire_bytes_sent", self.wire_bytes_sent)
            .gauge("multicast_fanout", self.multicast_fanout());
    }
}

type RecvHandler = Box<dyn FnMut(&mut Sim, Datagram)>;

/// A deferred unit of pure receive-side work, produced by a node's
/// preparer (see [`Lan::set_preparer`]). Jobs run on the fleet
/// executor's worker lanes, so they must be `Send` and must not touch
/// simulator or node state; the result comes back to the node via
/// [`Lan::take_prepared`] just before its receive handler runs. The
/// job receives a [`ShardBuffer`] keyed by its submission index for
/// lane-local telemetry — record only deterministic quantities
/// (counts, work units) there, never wall-clock readings, or the
/// merged registry would vary with `ES_FLEET_THREADS`.
pub type PrepareJob = Box<dyn FnOnce(&mut ShardBuffer) -> Box<dyn Any + Send> + Send>;

type Preparer = Box<dyn Fn(&Datagram) -> Option<PrepareJob>>;

struct Node {
    name: String,
    handler: Option<RecvHandler>,
    /// Builds parallel prepare jobs for incoming datagrams, if set.
    preparer: Option<Preparer>,
    /// Result of this delivery's prepare job, staged for the handler.
    prepared: Option<Box<dyn Any + Send>>,
    groups: Vec<McastGroup>,
    link_busy_until: SimTime,
    /// This receiver's private impairment RNG stream, seeded lazily
    /// from the sim seed and the node index. Keeping the draws out of
    /// the global stream makes each receiver's loss/jitter pattern
    /// independent of who else is attached and of fan-out order.
    rng: Option<StdRng>,
    /// Per-receiver Gilbert–Elliott burst-loss chain state.
    burst_chain: GilbertElliott,
    /// While set and in the future, every delivery to this node drops
    /// (its switch port is dark).
    partitioned_until: Option<SimTime>,
    /// Extra per-datagram loss probability for this receiver alone (a
    /// flaky NIC or radio link); 0.0 = healthy. One draw per datagram
    /// from the node's private stream, on top of the LAN-wide model.
    degrade_loss: f64,
    /// Logical engine segment this host's deliveries execute in (see
    /// `es_sim::shard`). A topology label, fixed per scenario: it must
    /// not depend on `ES_SIM_SHARDS`, or event sequence numbers — and
    /// with them the telemetry fingerprints — would shift with the
    /// shard count.
    segment: u32,
}

/// Derives a node's private RNG stream from the sim seed. SplitMix64's
/// output finalizer scrambles whatever we feed it, so a simple
/// golden-ratio mix of the node index suffices.
fn node_stream_seed(seed: u64, node: u32) -> u64 {
    seed ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

struct LanInner {
    config: LanConfig,
    nodes: Vec<Node>,
    stats: LanStats,
    wire_usage: BucketAccumulator,
    /// Shared-medium busy horizon ([`MediumMode::SharedHub`] only).
    medium_busy_until: SimTime,
    /// Payload bytes per multicast group (channel accounting).
    group_bytes: std::collections::BTreeMap<McastGroup, u64>,
    /// Event journal for loss diagnostics, if attached.
    journal: Option<Journal>,
    /// Lane telemetry drained from prepare-job shard buffers,
    /// accumulated across batches. Snapshots rebuild their registry
    /// from scratch on every walk, so drained shards need a home that
    /// outlives the batch; this is it.
    fleet_registry: Registry,
    /// Deterministic cross-shard channel: every delivery is posted
    /// into the receiver's segment through here.
    router: ShardRouter,
}

/// The LAN fabric. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Lan {
    inner: Shared<LanInner>,
}

impl Lan {
    /// Creates a LAN with the given physical parameters.
    pub fn new(config: LanConfig) -> Self {
        Lan {
            inner: shared(LanInner {
                config,
                nodes: Vec::new(),
                stats: LanStats::default(),
                wire_usage: BucketAccumulator::new("wire-bytes", SimDuration::from_secs(1)),
                medium_busy_until: SimTime::ZERO,
                group_bytes: std::collections::BTreeMap::new(),
                journal: None,
                fleet_registry: Registry::new(),
                router: ShardRouter::new(),
            }),
        }
    }

    /// Attaches an event journal; subsequent datagram drops are logged
    /// as warnings with the sender's name and the loss count.
    pub fn set_journal(&self, journal: Journal) {
        self.inner.borrow_mut().journal = Some(journal);
    }

    /// Attaches a host and returns its id. Install a receive handler
    /// with [`Lan::set_handler`] to get packets.
    pub fn attach(&self, name: impl Into<String>) -> NodeId {
        let mut inner = self.inner.borrow_mut();
        inner.nodes.push(Node {
            name: name.into(),
            handler: None,
            preparer: None,
            prepared: None,
            groups: Vec::new(),
            link_busy_until: SimTime::ZERO,
            rng: None,
            burst_chain: GilbertElliott::new(),
            partitioned_until: None,
            degrade_loss: 0.0,
            segment: 0,
        });
        NodeId(inner.nodes.len() as u32 - 1)
    }

    /// Assigns `node` to a logical engine segment; its deliveries are
    /// scheduled into that segment from now on. Segments are topology
    /// (e.g. "the fleet behind relay 2"), set once at build time: they
    /// must not be derived from the shard count.
    pub fn set_segment(&self, node: NodeId, segment: u32) {
        self.inner.borrow_mut().nodes[node.0 as usize].segment = segment;
    }

    /// The logical engine segment `node` is assigned to (0 = default).
    pub fn segment(&self, node: NodeId) -> u32 {
        self.inner.borrow().nodes[node.0 as usize].segment
    }

    /// Posts scheduled through the LAN's cross-shard channel that
    /// crossed a segment boundary (engine diagnostics).
    pub fn cross_segment_posts(&self) -> u64 {
        self.inner.borrow().router.cross_posts()
    }

    /// The host's display name.
    pub fn node_name(&self, node: NodeId) -> String {
        // es-allow(panic-path): NodeIds are issued densely by join() and never outlive the LAN that minted them
        self.inner.borrow().nodes[node.0 as usize].name.clone()
    }

    /// Installs (or replaces) the receive handler for `node`.
    pub fn set_handler(&self, node: NodeId, f: impl FnMut(&mut Sim, Datagram) + 'static) {
        self.inner.borrow_mut().nodes[node.0 as usize].handler = Some(Box::new(f));
    }

    /// Installs (or replaces) the prepare hook for `node`: called on
    /// the simulation thread for every delivery, it may return a pure
    /// [`PrepareJob`] (packet parse, codec decode) to run on the fleet
    /// executor while other receivers of the same instant do the same.
    /// Returning `None` keeps that delivery entirely serial.
    pub fn set_preparer(
        &self,
        node: NodeId,
        f: impl Fn(&Datagram) -> Option<PrepareJob> + 'static,
    ) {
        self.inner.borrow_mut().nodes[node.0 as usize].preparer = Some(Box::new(f));
    }

    /// Replays the lane telemetry drained from prepare-job shard
    /// buffers (accumulated across every batch so far) into `reg`.
    /// Snapshot walkers call this alongside the stats recorders; the
    /// underlying registry persists inside the LAN because snapshots
    /// rebuild theirs from scratch each walk.
    pub fn record_fleet_telemetry(&self, reg: &mut Registry) {
        reg.merge_from(&self.inner.borrow().fleet_registry);
    }

    /// Takes the staged result of this delivery's prepare job, if any.
    /// Only meaningful from inside the node's receive handler; the
    /// stage is cleared when the handler returns.
    pub fn take_prepared(&self, node: NodeId) -> Option<Box<dyn Any + Send>> {
        self.inner.borrow_mut().nodes[node.0 as usize]
            .prepared
            .take()
    }

    /// Joins a multicast group — the ES "tuning in" to a channel; no
    /// dialogue with the sender is involved (§2.3).
    pub fn join(&self, node: NodeId, group: McastGroup) {
        let mut inner = self.inner.borrow_mut();
        let groups = &mut inner.nodes[node.0 as usize].groups;
        if !groups.contains(&group) {
            groups.push(group);
        }
    }

    /// Leaves a multicast group — "tuning out" (channel switching).
    pub fn leave(&self, node: NodeId, group: McastGroup) {
        let mut inner = self.inner.borrow_mut();
        inner.nodes[node.0 as usize].groups.retain(|&g| g != group);
    }

    /// True if `node` is currently a member of `group`.
    pub fn is_member(&self, node: NodeId, group: McastGroup) -> bool {
        self.inner.borrow().nodes[node.0 as usize]
            .groups
            .contains(&group)
    }

    /// The LAN's current physical parameters.
    pub fn config(&self) -> LanConfig {
        self.inner.borrow().config
    }

    /// Replaces the LAN's physical parameters mid-run — the scheduled
    /// impairment transition a chaos scenario scripts on the sim clock.
    /// Traffic already serialized keeps its old delivery schedule; the
    /// next [`Lan::send`] sees the new config. Journaled when a journal
    /// is attached.
    pub fn set_config(&self, sim: &mut Sim, config: LanConfig) {
        let journal = {
            let mut inner = self.inner.borrow_mut();
            inner.config = config;
            inner.journal.clone()
        };
        if let Some(j) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "net",
                "lan configuration changed",
                &[
                    ("loss_prob", format!("{}", config.loss_prob)),
                    ("burst", config.burst.is_some().to_string()),
                    ("jitter_std_us", config.jitter_std.as_micros().to_string()),
                    ("reorder_prob", format!("{}", config.reorder_prob)),
                    ("duplicate_prob", format!("{}", config.duplicate_prob)),
                ],
            );
        }
    }

    /// Cuts `node` off from the LAN until `until`: every delivery to it
    /// in the window is dropped (and counted as partitioned). A second
    /// call extends or shortens the window; [`Lan::heal`] ends it early.
    pub fn partition(&self, sim: &mut Sim, node: NodeId, until: SimTime) {
        let journal = {
            let mut inner = self.inner.borrow_mut();
            inner.nodes[node.0 as usize].partitioned_until = Some(until);
            inner.journal.clone()
        };
        if let Some(j) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Warn,
                "net",
                "receiver partitioned",
                &[
                    ("node", self.node_name(node)),
                    ("until_us", until.as_micros().to_string()),
                ],
            );
        }
    }

    /// Ends `node`'s partition window immediately.
    pub fn heal(&self, sim: &mut Sim, node: NodeId) {
        let journal = {
            let mut inner = self.inner.borrow_mut();
            inner.nodes[node.0 as usize].partitioned_until = None;
            inner.journal.clone()
        };
        if let Some(j) = journal {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "net",
                "receiver partition healed",
                &[("node", self.node_name(node))],
            );
        }
    }

    /// Sets (or, with `loss_prob == 0.0`, clears) an extra
    /// per-datagram loss probability on deliveries to `node` — one
    /// flaky NIC or radio link, while the rest of the segment stays
    /// clean. The draw comes from the node's private RNG stream, so
    /// the impairment pattern is independent of fleet size and lane
    /// count. Journaled when a journal is attached.
    pub fn degrade(&self, sim: &mut Sim, node: NodeId, loss_prob: f64) {
        let journal = {
            let mut inner = self.inner.borrow_mut();
            inner.nodes[node.0 as usize].degrade_loss = loss_prob.clamp(0.0, 1.0);
            inner.journal.clone()
        };
        if let Some(j) = journal {
            if loss_prob > 0.0 {
                j.emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Warn,
                    "net",
                    "receiver degraded",
                    &[
                        ("node", self.node_name(node)),
                        ("loss_prob", format!("{loss_prob}")),
                    ],
                );
            } else {
                j.emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Info,
                    "net",
                    "receiver degrade cleared",
                    &[("node", self.node_name(node))],
                );
            }
        }
    }

    /// The extra per-datagram loss probability currently applied to
    /// `node` (0.0 = healthy).
    pub fn degrade_loss(&self, node: NodeId) -> f64 {
        self.inner.borrow().nodes[node.0 as usize].degrade_loss
    }

    /// True while `node` sits inside a partition window at `now`.
    pub fn is_partitioned(&self, node: NodeId, now: SimTime) -> bool {
        self.inner.borrow().nodes[node.0 as usize]
            .partitioned_until
            .is_some_and(|until| now < until)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> LanStats {
        self.inner.borrow().stats
    }

    /// Payload bytes multicast to `group` so far (per-channel
    /// accounting for multi-stream deployments).
    pub fn group_bytes(&self, group: McastGroup) -> u64 {
        self.inner
            .borrow()
            .group_bytes
            .get(&group)
            .copied()
            .unwrap_or(0)
    }

    /// Per-second wire utilization series (fraction of line rate),
    /// up to `until`.
    pub fn utilization_series(&self, until: SimTime) -> TimeSeries {
        let inner = self.inner.borrow();
        let capacity_per_bucket = inner.config.bandwidth_bps as f64 / 8.0;
        let mut out = TimeSeries::new("lan-utilization");
        for &(t, bytes) in inner.wire_usage.series().samples() {
            if t > until {
                break;
            }
            out.push(t, bytes / capacity_per_bucket);
        }
        out
    }

    /// Sends a datagram. Serialization occupies the sender's egress
    /// link FIFO; delivery events are scheduled per receiver.
    pub fn send(&self, sim: &mut Sim, from: NodeId, dst: Dest, payload: Bytes) {
        let lan = self.clone();
        let (deliver_at_base, receivers, lost_count) = {
            let mut inner = self.inner.borrow_mut();
            let config = inner.config;

            // Fragment count and wire bytes.
            let frags = payload.len().div_ceil(config.mtu).max(1);
            let wire_bytes = payload.len() + frags * WIRE_OVERHEAD;
            inner.stats.datagrams_sent += 1;
            inner.stats.payload_bytes_sent += payload.len() as u64;
            inner.stats.wire_bytes_sent += wire_bytes as u64;
            inner.wire_usage.add(sim.now(), wire_bytes as f64);

            if let Dest::Multicast(g) = dst {
                inner.stats.multicast_sent += 1;
                *inner.group_bytes.entry(g).or_insert(0) += payload.len() as u64;
            }

            // FIFO serialization: per sender link on a switch, on the
            // whole segment for a shared medium.
            let ser = SimDuration::for_bytes_at_rate(wire_bytes as u64, config.bandwidth_bps);
            let done = match config.medium {
                MediumMode::Switched => {
                    // es-allow(panic-path): sender and receiver ids are join()-issued dense indices into nodes
                    let node = &mut inner.nodes[from.0 as usize];
                    let start = sim.now().max(node.link_busy_until);
                    let done = start + ser;
                    node.link_busy_until = done;
                    done
                }
                MediumMode::SharedHub => {
                    let start = sim.now().max(inner.medium_busy_until);
                    let done = start + ser;
                    inner.medium_busy_until = done;
                    done
                }
            };

            // Receiver set.
            let receivers: Vec<u32> = match dst {
                Dest::Unicast(NodeId(n)) => {
                    if (n as usize) < inner.nodes.len() {
                        // es-allow(hot-path-transitive): per-datagram receiver-set bookkeeping in the simulator, not lane DSP
                        vec![n]
                    } else {
                        // es-allow(hot-path-transitive): per-datagram receiver-set bookkeeping in the simulator, not lane DSP
                        Vec::new()
                    }
                }
                Dest::Multicast(group) => inner
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|&(i, node)| i as u32 != from.0 && node.groups.contains(&group))
                    .map(|(i, _)| i as u32)
                    // es-allow(hot-path-transitive): per-datagram receiver-set bookkeeping in the simulator, not lane DSP
                    .collect(),
            };

            // Per-receiver impairments, each sampled from the
            // *receiver's* private RNG stream so one node's loss and
            // jitter pattern is independent of the rest of the fleet.
            // Loss is sampled per wire fragment (independently, or
            // through the receiver's Gilbert–Elliott chain when burst
            // loss is configured); any lost fragment fails reassembly
            // and loses the datagram for that receiver. Surviving
            // deliveries may then be reordered (held back), jittered,
            // or duplicated.
            let now = sim.now();
            let seed = sim.seed();
            let mut kept: Vec<(u32, SimDuration)> = Vec::with_capacity(receivers.len());
            let mut lost = 0u64;
            for r in receivers {
                enum Outcome {
                    Partitioned,
                    Degraded,
                    Lost {
                        partial: bool,
                    },
                    Kept {
                        offset: SimDuration,
                        dup_offset: Option<SimDuration>,
                        reordered: bool,
                    },
                }
                let outcome = {
                    let node = &mut inner.nodes[r as usize];
                    if node.partitioned_until.is_some_and(|until| now < until) {
                        Outcome::Partitioned
                    } else if node.degrade_loss > 0.0 && {
                        let rng = node.rng.get_or_insert_with(|| {
                            StdRng::seed_from_u64(node_stream_seed(seed, r))
                        });
                        chance(rng, node.degrade_loss)
                    } {
                        Outcome::Degraded
                    } else {
                        let rng = node.rng.get_or_insert_with(|| {
                            StdRng::seed_from_u64(node_stream_seed(seed, r))
                        });
                        let mut lost_frags = 0usize;
                        for _ in 0..frags {
                            let frag_lost = match config.burst {
                                Some(b) => node.burst_chain.step(
                                    rng,
                                    b.p_good_to_bad,
                                    b.p_bad_to_good,
                                    b.loss_good,
                                    b.loss_bad,
                                ),
                                None => config.loss_prob > 0.0 && chance(rng, config.loss_prob),
                            };
                            lost_frags += frag_lost as usize;
                        }
                        if lost_frags > 0 {
                            Outcome::Lost {
                                partial: frags > 1 && lost_frags < frags,
                            }
                        } else {
                            let mut extra = SimDuration::ZERO;
                            let mut reordered = false;
                            if config.reorder_prob > 0.0 && chance(rng, config.reorder_prob) {
                                extra = config.reorder_delay;
                                reordered = true;
                            }
                            let jitter = |rng: &mut StdRng| {
                                if config.jitter_std.is_zero() {
                                    SimDuration::ZERO
                                } else {
                                    let ns = normal(rng, 0.0, config.jitter_std.as_nanos() as f64);
                                    SimDuration::from_nanos(ns.max(0.0) as u64)
                                }
                            };
                            let offset = extra + jitter(rng);
                            let dup_offset = (config.duplicate_prob > 0.0
                                && chance(rng, config.duplicate_prob))
                            .then(|| extra + config.propagation + jitter(rng));
                            Outcome::Kept {
                                offset,
                                dup_offset,
                                reordered,
                            }
                        }
                    }
                };
                match outcome {
                    Outcome::Partitioned => {
                        inner.stats.datagrams_lost += 1;
                        inner.stats.datagrams_partitioned += 1;
                        lost += 1;
                    }
                    Outcome::Degraded => {
                        inner.stats.datagrams_lost += 1;
                        inner.stats.datagrams_degraded += 1;
                        lost += 1;
                    }
                    Outcome::Lost { partial } => {
                        inner.stats.datagrams_lost += 1;
                        if partial {
                            inner.stats.datagrams_lost_partial += 1;
                        }
                        lost += 1;
                    }
                    Outcome::Kept {
                        offset,
                        dup_offset,
                        reordered,
                    } => {
                        if reordered {
                            inner.stats.datagrams_reordered += 1;
                        }
                        kept.push((r, offset));
                        if let Some(d) = dup_offset {
                            inner.stats.datagrams_duplicated += 1;
                            kept.push((r, d));
                        }
                    }
                }
            }
            (done + config.propagation, kept, lost)
        };
        if lost_count > 0 {
            let journal = self.inner.borrow().journal.clone();
            if let Some(j) = journal {
                let name = self.node_name(from);
                j.emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Warn,
                    "net",
                    "datagram lost in transit",
                    &[
                        ("from", name),
                        ("receivers_lost", lost_count.to_string()),
                        ("bytes", payload.len().to_string()),
                    ],
                );
            }
        }

        // Group deliveries that share an arrival instant *and* a
        // receiver segment into one batch event: the common case — a
        // zero-jitter multicast to a whole fleet on one segment —
        // becomes a single event whose per-receiver pure work can fan
        // out across the fleet executor. Distinct arrival times
        // (jitter, reordering, duplicates) each get their own
        // singleton batch, preserving the old per-delivery schedule
        // exactly. The segment key is part of the split because a
        // batch executes in its receivers' segment: segments are fixed
        // topology labels, so the same events — with the same sequence
        // numbers — are created at every shard count.
        // es-allow(hot-path-transitive): per-datagram delivery batching in the simulator, costed by the sim model, not lane DSP
        let mut batches: Vec<(SimTime, u32, Vec<u32>)> = Vec::new();
        let mut index: std::collections::BTreeMap<(SimTime, u32), usize> =
            std::collections::BTreeMap::new();
        let (router, segments): (ShardRouter, Vec<u32>) = {
            let inner = self.inner.borrow();
            (
                inner.router.clone(),
                receivers
                    .iter()
                    .map(|&(r, _)| inner.nodes[r as usize].segment)
                    // es-allow(hot-path-transitive): per-datagram delivery batching in the simulator, not lane DSP
                    .collect(),
            )
        };
        for (&(r, offset), &seg) in receivers.iter().zip(&segments) {
            let at = deliver_at_base + offset;
            let i = *index.entry((at, seg)).or_insert_with(|| {
                // es-allow(hot-path-transitive): per-datagram delivery batching in the simulator, not lane DSP
                batches.push((at, seg, Vec::new()));
                batches.len() - 1
            });
            batches[i].2.push(r);
        }
        for (at, seg, rs) in batches {
            let lan = lan.clone();
            let dg = Datagram {
                src: from,
                dst,
                payload: payload.clone(),
            };
            router.post(sim, seg, at, move |sim| lan.deliver_batch(sim, &rs, dg));
        }
    }

    /// Delivers one datagram to every receiver of a shared arrival
    /// instant. Pure per-receiver work (from [`Lan::set_preparer`])
    /// runs first as one parallel batch on the fleet executor; the
    /// receive handlers then run serially in receiver order, each
    /// picking up its staged result. All observable effects happen in
    /// batch order on the simulation thread, so the outcome is
    /// bit-identical for any `ES_FLEET_THREADS` value.
    fn deliver_batch(&self, sim: &mut Sim, rs: &[u32], dg: Datagram) {
        // Phase 1: collect prepare jobs. The preparer is taken out of
        // its slot for the call so it may itself borrow the LAN.
        // es-allow(hot-path-transitive): per-batch job staging on the simulation thread, costed by the sim model
        let mut jobs: Vec<PrepareJob> = Vec::new();
        // es-allow(hot-path-transitive): per-batch job staging on the simulation thread, costed by the sim model
        let mut job_of: Vec<Option<usize>> = vec![None; rs.len()];
        for (i, &r) in rs.iter().enumerate() {
            // es-allow(panic-path): receiver ids come from the validated receiver set; job_of/rx_of_job are sized to rs/jobs above
            let preparer = self.inner.borrow_mut().nodes[r as usize].preparer.take();
            if let Some(p) = preparer {
                if let Some(job) = p(&dg) {
                    job_of[i] = Some(jobs.len());
                    jobs.push(job);
                }
                let mut inner = self.inner.borrow_mut();
                let slot = &mut inner.nodes[r as usize].preparer;
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
        }
        // Fused phases 2+3: stream the fan-out. Each prepare job is
        // wrapped so it also carries a shard buffer of lane telemetry
        // keyed by its submission index. Results arrive at the sink in
        // submission order *as they complete*, so early receivers'
        // handlers — and the telemetry drain — run on the simulation
        // thread while later jobs still execute on worker lanes. All
        // observable effects still happen in receiver order on this
        // thread, so the outcome is bit-identical for any
        // `ES_FLEET_THREADS` value.
        struct LanePrepared {
            shard: ShardBuffer,
            result: Box<dyn Any + Send>,
        }
        // Receiver index owning each job (job_of's inverse).
        // es-allow(hot-path-transitive): per-batch job staging on the simulation thread, costed by the sim model
        let mut rx_of_job: Vec<usize> = vec![0; jobs.len()];
        for (i, j) in job_of.iter().enumerate() {
            if let Some(j) = j {
                rx_of_job[*j] = i;
            }
        }
        let fleet_jobs: Vec<fleet::Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(j, job)| {
                Box::new(move || {
                    let mut shard = ShardBuffer::new(j);
                    let result = job(&mut shard);
                    Box::new(LanePrepared { shard, result }) as Box<dyn Any + Send>
                }) as fleet::Job
            })
            // es-allow(hot-path-transitive): per-batch job staging on the simulation thread, costed by the sim model
            .collect();
        let journal = self.inner.borrow().journal.clone();
        let scratch_journal;
        let journal_ref = match &journal {
            Some(j) => j,
            None => {
                scratch_journal = Journal::new();
                &scratch_journal
            }
        };
        // Take the persistent lane registry out of the cell for the
        // batch so the drain can hold it across handler re-entry into
        // the LAN.
        let mut fleet_registry = std::mem::take(&mut self.inner.borrow_mut().fleet_registry);
        let mut drain = ShardDrain::new(&mut fleet_registry, journal_ref);
        let mut next_rx = 0usize;
        fleet::run_batch_each(fleet_jobs, |j, boxed| {
            let p = boxed
                .downcast::<LanePrepared>()
                // es-allow(panic-path): every job built in this fn boxes a LanePrepared; the downcast cannot fail
                .expect("lane jobs wrap LanePrepared");
            drain.offer(p.shard);
            let r = rs[rx_of_job[j]];
            self.inner.borrow_mut().nodes[r as usize].prepared = Some(p.result);
            // Every receiver whose prepare (if any) has now landed can
            // run; receivers without jobs ride along with their
            // neighbors.
            while next_rx < rs.len() && job_of[next_rx].is_none_or(|jj| jj <= j) {
                self.run_handler(sim, rs[next_rx], &dg);
                next_rx += 1;
            }
        });
        // Receivers past the last prepare job (or the whole list, when
        // no preparer produced work).
        while next_rx < rs.len() {
            self.run_handler(sim, rs[next_rx], &dg);
            next_rx += 1;
        }
        drain.finish();
        self.inner.borrow_mut().fleet_registry = fleet_registry;
    }

    /// Runs one receiver's handler with its staged prepare result (if
    /// any) and clears the stage afterwards so nothing leaks into a
    /// later, unrelated delivery.
    fn run_handler(&self, sim: &mut Sim, r: u32, dg: &Datagram) {
        // Take the handler out so it can borrow the LAN itself.
        // es-allow(panic-path): r is a join()-issued dense index into nodes
        let handler = self.inner.borrow_mut().nodes[r as usize].handler.take();
        if let Some(mut h) = handler {
            self.inner.borrow_mut().stats.datagrams_delivered += 1;
            h(sim, dg.clone());
            let mut inner = self.inner.borrow_mut();
            let slot = &mut inner.nodes[r as usize].handler;
            // A handler installed during delivery wins.
            if slot.is_none() {
                *slot = Some(h);
            }
        }
        self.inner.borrow_mut().nodes[r as usize].prepared = None;
    }

    /// Convenience: multicast send.
    pub fn multicast(&self, sim: &mut Sim, from: NodeId, group: McastGroup, payload: Bytes) {
        self.send(sim, from, Dest::Multicast(group), payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type DeliveryLog = Rc<RefCell<Vec<(SimTime, Vec<u8>)>>>;

    fn collect_deliveries(lan: &Lan, node: NodeId) -> DeliveryLog {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        lan.set_handler(node, move |sim, dg| {
            l.borrow_mut().push((sim.now(), dg.payload.to_vec()));
        });
        log
    }

    #[test]
    fn unicast_delivery_with_serialization_and_propagation() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let log = collect_deliveries(&lan, b);
        lan.send(&mut sim, a, Dest::Unicast(b), Bytes::from(vec![0u8; 1_000]));
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // (1000 + 66) * 8 bits / 100 Mbps = 85.28 us, + 50 us propagation.
        let t = log[0].0.as_nanos();
        assert_eq!(t, 85_280 + 50_000);
    }

    #[test]
    fn multicast_reaches_members_only_and_not_sender() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let s1 = lan.attach("es1");
        let s2 = lan.attach("es2");
        let s3 = lan.attach("es3");
        let g = McastGroup(7);
        lan.join(producer, g);
        lan.join(s1, g);
        lan.join(s2, g);
        // s3 does not join.
        let l1 = collect_deliveries(&lan, s1);
        let l2 = collect_deliveries(&lan, s2);
        let l3 = collect_deliveries(&lan, s3);
        let lp = collect_deliveries(&lan, producer);
        lan.multicast(&mut sim, producer, g, Bytes::from_static(b"hello"));
        sim.run();
        assert_eq!(l1.borrow().len(), 1);
        assert_eq!(l2.borrow().len(), 1);
        assert_eq!(l3.borrow().len(), 0);
        assert_eq!(lp.borrow().len(), 0, "sender must not hear itself");
        // Uniform arrival: both receivers at the same instant (§3.2).
        assert_eq!(l1.borrow()[0].0, l2.borrow()[0].0);
    }

    #[test]
    fn multicast_fanout_shares_one_payload_allocation() {
        // The fan-out is zero-copy: every receiver's datagram must
        // reference the sender's payload buffer, not a deep copy.
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let g = McastGroup(7);
        let ptrs: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..8 {
            let node = lan.attach(format!("es{i}"));
            lan.join(node, g);
            let p = ptrs.clone();
            lan.set_handler(node, move |_sim, dg| {
                p.borrow_mut().push(dg.payload.as_ptr() as usize);
            });
        }
        let payload = Bytes::from(vec![0xABu8; 4_096]);
        let backing = payload.as_ptr() as usize;
        lan.multicast(&mut sim, producer, g, payload);
        sim.run();
        let ptrs = ptrs.borrow();
        assert_eq!(ptrs.len(), 8);
        for &p in ptrs.iter() {
            assert_eq!(p, backing, "receiver saw a copied payload");
        }
    }

    #[test]
    fn degrade_targets_one_receiver_and_clears() {
        let mut sim = Sim::new(5);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        let sick = lan.attach("es-sick");
        let healthy = lan.attach("es-ok");
        let g = McastGroup(7);
        lan.join(sick, g);
        lan.join(healthy, g);
        let lsick = collect_deliveries(&lan, sick);
        let lok = collect_deliveries(&lan, healthy);
        lan.degrade(&mut sim, sick, 1.0);
        for _ in 0..20 {
            lan.multicast(&mut sim, producer, g, Bytes::from_static(b"pkt"));
        }
        sim.run();
        assert_eq!(lsick.borrow().len(), 0, "fully degraded link drops all");
        assert_eq!(lok.borrow().len(), 20, "healthy neighbor unaffected");
        let stats = lan.stats();
        assert_eq!(stats.datagrams_degraded, 20);
        assert_eq!(stats.datagrams_lost, 20);
        // Clearing restores delivery.
        lan.degrade(&mut sim, sick, 0.0);
        assert_eq!(lan.degrade_loss(sick), 0.0);
        lan.multicast(&mut sim, producer, g, Bytes::from_static(b"pkt"));
        sim.run();
        assert_eq!(lsick.borrow().len(), 1);
        assert_eq!(lan.stats().datagrams_degraded, 20, "no further drops");
    }

    #[test]
    fn join_leave_controls_membership() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(1);
        let log = collect_deliveries(&lan, b);
        lan.join(b, g);
        assert!(lan.is_member(b, g));
        lan.multicast(&mut sim, a, g, Bytes::from_static(b"x"));
        sim.run();
        lan.leave(b, g);
        assert!(!lan.is_member(b, g));
        lan.multicast(&mut sim, a, g, Bytes::from_static(b"y"));
        sim.run();
        assert_eq!(log.borrow().len(), 1, "only the pre-leave packet");
    }

    #[test]
    fn fifo_serialization_queues_back_to_back_sends() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let log = collect_deliveries(&lan, b);
        for _ in 0..3 {
            lan.send(&mut sim, a, Dest::Unicast(b), Bytes::from(vec![0u8; 1_000]));
        }
        sim.run();
        let log = log.borrow();
        let per_frame = 85_280u64;
        for (i, (t, _)) in log.iter().enumerate() {
            assert_eq!(
                t.as_nanos(),
                per_frame * (i as u64 + 1) + 50_000,
                "frame {i}"
            );
        }
    }

    #[test]
    fn loss_model_drops_about_the_right_fraction() {
        let mut sim = Sim::new(42);
        let lan = Lan::new(LanConfig::lossy(0.25, SimDuration::ZERO));
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(0);
        lan.join(b, g);
        let log = collect_deliveries(&lan, b);
        let n = 4_000;
        for _ in 0..n {
            lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
            sim.run();
        }
        let delivered = log.borrow().len() as f64;
        let rate = delivered / n as f64;
        assert!((rate - 0.75).abs() < 0.03, "delivery rate {rate}");
        let stats = lan.stats();
        assert_eq!(stats.datagrams_sent, n as u64);
        assert_eq!(stats.datagrams_delivered + stats.datagrams_lost, n as u64);
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let mut sim = Sim::new(7);
        let lan = Lan::new(LanConfig::lossy(0.0, SimDuration::from_micros(500)));
        let a = lan.attach("a");
        let b = lan.attach("b");
        let c = lan.attach("c");
        let g = McastGroup(0);
        lan.join(b, g);
        lan.join(c, g);
        let lb = collect_deliveries(&lan, b);
        let lc = collect_deliveries(&lan, c);
        let mut diffs = Vec::new();
        for _ in 0..100 {
            lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
            sim.run();
        }
        for (x, y) in lb.borrow().iter().zip(lc.borrow().iter()) {
            diffs.push((x.0.as_nanos() as i64 - y.0.as_nanos() as i64).abs());
        }
        assert!(
            diffs.iter().any(|&d| d > 100_000),
            "jitter produced no measurable skew"
        );
    }

    #[test]
    fn fragmentation_counts_wire_overhead_per_fragment() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let _log = collect_deliveries(&lan, b);
        // 4000 bytes over a 1472-byte MTU = 3 fragments.
        lan.send(&mut sim, a, Dest::Unicast(b), Bytes::from(vec![0u8; 4_000]));
        sim.run();
        let stats = lan.stats();
        assert_eq!(stats.wire_bytes_sent, 4_000 + 3 * WIRE_OVERHEAD as u64);
    }

    #[test]
    fn bandwidth_matters_10mbps_is_10x_slower() {
        let payload = Bytes::from(vec![0u8; 10_000]);
        let run = |config: LanConfig| -> u64 {
            let mut sim = Sim::new(1);
            let lan = Lan::new(config);
            let a = lan.attach("a");
            let b = lan.attach("b");
            let log = collect_deliveries(&lan, b);
            lan.send(&mut sim, a, Dest::Unicast(b), payload.clone());
            sim.run();
            let t = log.borrow()[0].0;
            t.as_nanos()
        };
        let fast = run(LanConfig::default());
        let slow = run(LanConfig::legacy_10mbps());
        let ratio = (slow - 50_000) as f64 / (fast - 50_000) as f64;
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn utilization_series_reflects_traffic() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::legacy_10mbps());
        let a = lan.attach("a");
        let b = lan.attach("b");
        lan.join(b, McastGroup(0));
        // 125 kB/s = 1 Mbps = 10% of a 10 Mbps link, for 3 seconds.
        for ms in (0..3_000).step_by(8) {
            let lan2 = lan.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |sim| {
                lan2.multicast(sim, a, McastGroup(0), Bytes::from(vec![0u8; 1_000]));
            });
        }
        sim.run_until(SimTime::from_secs(3));
        let series = lan.utilization_series(SimTime::from_secs(3));
        assert!(series.len() >= 2);
        let mean = series.mean().unwrap();
        assert!((mean - 0.107).abs() < 0.01, "mean utilization {mean}");
    }

    #[test]
    fn stats_offered_load() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        lan.send(&mut sim, a, Dest::Unicast(b), Bytes::from(vec![0u8; 934]));
        sim.run();
        let bps = lan.stats().offered_bits_per_sec(SimDuration::from_secs(1));
        assert!((bps - 8_000.0).abs() < 1.0, "{bps}");
        assert_eq!(lan.stats().offered_bits_per_sec(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn unicast_to_unknown_node_is_dropped_quietly() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        lan.send(
            &mut sim,
            a,
            Dest::Unicast(NodeId(99)),
            Bytes::from_static(b"x"),
        );
        sim.run();
        assert_eq!(lan.stats().datagrams_delivered, 0);
    }

    #[test]
    fn shared_hub_serializes_across_senders() {
        // Two senders each pushing 1000-byte frames: on a switch their
        // transmissions overlap; on a hub they queue behind each other.
        let run = |medium: MediumMode| -> u64 {
            let mut sim = Sim::new(1);
            let lan = Lan::new(LanConfig {
                medium,
                ..LanConfig::default()
            });
            let a = lan.attach("a");
            let b = lan.attach("b");
            let c = lan.attach("c");
            let log = collect_deliveries(&lan, c);
            lan.join(c, McastGroup(0));
            for _ in 0..10 {
                lan.multicast(&mut sim, a, McastGroup(0), Bytes::from(vec![0u8; 1_000]));
                lan.multicast(&mut sim, b, McastGroup(0), Bytes::from(vec![0u8; 1_000]));
            }
            sim.run();
            let last = {
                let l = log.borrow();
                l.last().unwrap().0
            };
            last.as_nanos()
        };
        let switched = run(MediumMode::Switched);
        let hub = run(MediumMode::SharedHub);
        // 20 frames on a hub take twice as long as 10 per link.
        assert!(
            hub > switched * 19 / 10,
            "hub {hub} ns vs switched {switched} ns"
        );
    }

    #[test]
    fn group_byte_accounting() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        lan.join(b, McastGroup(1));
        lan.join(b, McastGroup(2));
        lan.multicast(&mut sim, a, McastGroup(1), Bytes::from(vec![0u8; 100]));
        lan.multicast(&mut sim, a, McastGroup(1), Bytes::from(vec![0u8; 50]));
        lan.multicast(&mut sim, a, McastGroup(2), Bytes::from(vec![0u8; 7]));
        sim.run();
        assert_eq!(lan.group_bytes(McastGroup(1)), 150);
        assert_eq!(lan.group_bytes(McastGroup(2)), 7);
        assert_eq!(lan.group_bytes(McastGroup(9)), 0);
    }

    #[test]
    fn handler_can_send_from_within_delivery() {
        // A speaker that echoes a packet back must not deadlock on the
        // LAN's interior RefCell.
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let echo_lan = lan.clone();
        lan.set_handler(b, move |sim, dg| {
            echo_lan.send(sim, b, Dest::Unicast(dg.src), dg.payload);
        });
        let got = collect_deliveries(&lan, a);
        lan.send(&mut sim, a, Dest::Unicast(b), Bytes::from_static(b"ping"));
        sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].1, b"ping");
    }

    #[test]
    fn burst_loss_clusters_drops() {
        // Same long-run loss rate, but Gilbert–Elliott losses arrive in
        // runs: the count of loss runs must be far below the count an
        // i.i.d. model produces at the same rate.
        let run = |config: LanConfig| -> (f64, usize) {
            let mut sim = Sim::new(42);
            let lan = Lan::new(config);
            let a = lan.attach("a");
            let b = lan.attach("b");
            let g = McastGroup(0);
            lan.join(b, g);
            let log = collect_deliveries(&lan, b);
            let n = 10_000u64;
            for i in 0..n {
                lan.multicast(&mut sim, a, g, Bytes::from(vec![(i % 251) as u8]));
                sim.run();
            }
            // Reconstruct the loss pattern from which payloads arrived.
            let delivered: Vec<u8> = log.borrow().iter().map(|(_, p)| p[0]).collect();
            let mut runs = 0usize;
            let mut idx = 0usize;
            let mut in_run = false;
            for i in 0..n {
                let got = delivered.get(idx) == Some(&((i % 251) as u8));
                if got {
                    idx += 1;
                    in_run = false;
                } else if !in_run {
                    runs += 1;
                    in_run = true;
                }
            }
            (1.0 - delivered.len() as f64 / n as f64, runs)
        };
        let (rate_iid, runs_iid) = run(LanConfig::lossy(0.2, SimDuration::ZERO));
        let (rate_ge, runs_ge) = run(LanConfig::bursty(0.2, 12.0));
        assert!((rate_iid - 0.2).abs() < 0.04, "iid loss rate {rate_iid}");
        assert!((rate_ge - 0.2).abs() < 0.06, "burst loss rate {rate_ge}");
        assert!(
            runs_ge * 3 < runs_iid,
            "bursts not clustered: {runs_ge} runs vs iid {runs_iid}"
        );
    }

    #[test]
    fn reorder_holds_deliveries_back() {
        let mut sim = Sim::new(9);
        let hold = SimDuration::from_millis(5);
        let lan = Lan::new(LanConfig::reordering(0.3, hold));
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(0);
        lan.join(b, g);
        let log = collect_deliveries(&lan, b);
        let n = 500u64;
        for i in 0..n {
            let lan2 = lan.clone();
            sim.schedule_at(SimTime::from_millis(i), move |sim| {
                lan2.multicast(sim, a, g, Bytes::from(vec![(i % 251) as u8]));
            });
        }
        sim.run();
        let stats = lan.stats();
        assert!(
            stats.datagrams_reordered > 0,
            "no deliveries were reordered"
        );
        assert_eq!(stats.datagrams_lost, 0, "reorder must never drop");
        assert_eq!(log.borrow().len(), n as usize, "all packets delivered");
        // Held-back packets really arrive out of order: the payload
        // sequence as received is a permutation, not the identity.
        let order: Vec<u8> = log.borrow().iter().map(|(_, p)| p[0]).collect();
        let sent: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        assert_ne!(order, sent, "reordering left the stream in order");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut sim = Sim::new(11);
        let lan = Lan::new(LanConfig::duplicating(0.25));
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(0);
        lan.join(b, g);
        let log = collect_deliveries(&lan, b);
        let n = 2_000u64;
        for _ in 0..n {
            lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
            sim.run();
        }
        let stats = lan.stats();
        assert!(stats.datagrams_duplicated > 0);
        assert_eq!(
            log.borrow().len() as u64,
            n + stats.datagrams_duplicated,
            "each duplicate is one extra delivery"
        );
        let rate = stats.datagrams_duplicated as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.04, "duplication rate {rate}");
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let mut sim = Sim::new(3);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(0);
        lan.join(b, g);
        let log = collect_deliveries(&lan, b);
        lan.partition(&mut sim, b, SimTime::from_secs(1));
        assert!(lan.is_partitioned(b, SimTime::ZERO));
        assert!(!lan.is_partitioned(b, SimTime::from_secs(1)));
        for ms in [0u64, 500, 1_500] {
            let lan2 = lan.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |sim| {
                lan2.multicast(sim, a, g, Bytes::from_static(b"p"));
            });
        }
        sim.run();
        // The two sends inside [0, 1 s) drop; the one after arrives.
        assert_eq!(log.borrow().len(), 1);
        let stats = lan.stats();
        assert_eq!(stats.datagrams_partitioned, 2);
        assert_eq!(stats.datagrams_lost, 2);

        // An early heal reopens the port immediately.
        lan.partition(&mut sim, b, SimTime::from_secs(10));
        lan.heal(&mut sim, b);
        lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
        sim.run();
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn set_config_switches_impairments_mid_run() {
        let mut sim = Sim::new(5);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(0);
        lan.join(b, g);
        let log = collect_deliveries(&lan, b);
        let n = 1_000;
        for _ in 0..n {
            lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
            sim.run();
        }
        assert_eq!(log.borrow().len(), n, "clean phase delivers everything");
        lan.set_config(&mut sim, LanConfig::lossy(1.0, SimDuration::ZERO));
        assert_eq!(lan.config().loss_prob, 1.0);
        for _ in 0..n {
            lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
            sim.run();
        }
        assert_eq!(log.borrow().len(), n, "total-loss phase delivers nothing");
        lan.set_config(&mut sim, LanConfig::default());
        lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
        sim.run();
        assert_eq!(log.borrow().len(), n + 1, "recovery phase delivers again");
    }

    #[test]
    fn loss_pattern_is_per_receiver_not_global() {
        // A receiver's impairment draws come from its own RNG stream:
        // attaching more speakers must not change which packets an
        // existing speaker loses.
        let run = |extra_receivers: usize| -> Vec<u8> {
            let mut sim = Sim::new(77);
            let lan = Lan::new(LanConfig::lossy(0.3, SimDuration::ZERO));
            let a = lan.attach("a");
            let b = lan.attach("b");
            let g = McastGroup(0);
            lan.join(b, g);
            let log = collect_deliveries(&lan, b);
            for i in 0..extra_receivers {
                let n = lan.attach(format!("extra{i}"));
                lan.join(n, g);
                let _ = collect_deliveries(&lan, n);
            }
            for i in 0..500u64 {
                lan.multicast(&mut sim, a, g, Bytes::from(vec![(i % 251) as u8]));
                sim.run();
            }
            let got: Vec<u8> = log.borrow().iter().map(|(_, p)| p[0]).collect();
            got
        };
        assert_eq!(run(0), run(7), "fleet size changed b's loss pattern");
    }

    #[test]
    fn preparer_results_are_staged_for_the_handler() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let g = McastGroup(3);
        let sums: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..6 {
            let node = lan.attach(format!("es{i}"));
            lan.join(node, g);
            lan.set_preparer(node, move |dg| {
                let bytes = dg.payload.to_vec();
                Some(Box::new(move |shard: &mut ShardBuffer| {
                    let sum: u64 = bytes.iter().map(|&b| b as u64).sum();
                    shard.component("net").counter("test_jobs", 1);
                    Box::new(sum + i) as Box<dyn std::any::Any + Send>
                }))
            });
            let l2 = lan.clone();
            let s = sums.clone();
            lan.set_handler(node, move |_sim, _dg| {
                let v = l2
                    .take_prepared(node)
                    .expect("prepared result staged")
                    .downcast::<u64>()
                    .unwrap();
                s.borrow_mut().push(*v);
            });
        }
        lan.multicast(&mut sim, a, g, Bytes::from(vec![2u8; 10]));
        sim.run();
        // Receiver order, each with its own job's result.
        assert_eq!(*sums.borrow(), vec![20, 21, 22, 23, 24, 25]);
        // The shard buffers' lane telemetry was drained and persists
        // on the LAN for snapshot walkers.
        let mut reg = Registry::new();
        lan.record_fleet_telemetry(&mut reg);
        assert_eq!(reg.snapshot().counter("net/0/test_jobs"), Some(6));
    }

    #[test]
    fn prepared_result_does_not_leak_without_consumption() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let b = lan.attach("b");
        lan.set_preparer(b, |_dg| {
            Some(Box::new(|_: &mut ShardBuffer| {
                Box::new(7u32) as Box<dyn std::any::Any + Send>
            }))
        });
        // First handler ignores its staged result entirely.
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        lan.set_handler(b, move |_sim, _dg| *h.borrow_mut() += 1);
        lan.send(&mut sim, a, Dest::Unicast(b), Bytes::from_static(b"x"));
        sim.run();
        assert_eq!(*hits.borrow(), 1);
        // The stage must be empty outside a delivery.
        assert!(lan.take_prepared(b).is_none());
    }

    #[test]
    fn batch_delivery_preserves_multicast_instant_and_order() {
        // Same-instant fan-out runs as one batch; handlers still see
        // one delivery each, in node-index order, at the same time.
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let a = lan.attach("a");
        let g = McastGroup(1);
        let order: Rc<RefCell<Vec<(usize, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let node = lan.attach(format!("es{i}"));
            lan.join(node, g);
            let o = order.clone();
            lan.set_handler(node, move |sim, _dg| o.borrow_mut().push((i, sim.now())));
        }
        lan.multicast(&mut sim, a, g, Bytes::from_static(b"tick"));
        sim.run();
        let order = order.borrow();
        assert_eq!(
            order.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(order.iter().all(|&(_, t)| t == order[0].1));
        assert_eq!(lan.stats().datagrams_delivered, 5);
    }

    #[test]
    fn partial_fragment_loss_counted_separately() {
        // 4-fragment datagrams at moderate per-fragment loss: most lost
        // datagrams lose only some fragments, and the partial counter
        // must see them. Single-fragment datagrams must never count.
        let mut sim = Sim::new(21);
        let lan = Lan::new(LanConfig::lossy(0.15, SimDuration::ZERO));
        let a = lan.attach("a");
        let b = lan.attach("b");
        let g = McastGroup(0);
        lan.join(b, g);
        let _log = collect_deliveries(&lan, b);
        for _ in 0..500 {
            lan.multicast(&mut sim, a, g, Bytes::from(vec![0u8; 5_000]));
            sim.run();
        }
        let stats = lan.stats();
        assert!(stats.datagrams_lost > 0);
        assert!(
            stats.datagrams_lost_partial > 0,
            "partial losses not counted"
        );
        assert!(stats.datagrams_lost_partial <= stats.datagrams_lost);

        let mut sim = Sim::new(21);
        let lan = Lan::new(LanConfig::lossy(0.5, SimDuration::ZERO));
        let a = lan.attach("a");
        let b = lan.attach("b");
        lan.join(b, g);
        let _log = collect_deliveries(&lan, b);
        for _ in 0..200 {
            lan.multicast(&mut sim, a, g, Bytes::from_static(b"p"));
            sim.run();
        }
        assert_eq!(
            lan.stats().datagrams_lost_partial,
            0,
            "single-fragment datagrams cannot lose partially"
        );
    }
}
