//! # es-net — the network substrate
//!
//! Two transports for one protocol:
//!
//! - [`lan`]: a deterministic discrete-event switched-Ethernet model
//!   (line-rate serialization, propagation, optional jitter and loss,
//!   multicast groups) used by every experiment.
//! - [`udp`]: real `std::net` UDP multicast for live runs on an actual
//!   network interface (the `real_udp` example).
//!
//! §2.3 of the paper justifies the single-LAN scope: friendly packet
//! arrival and free multicast. [`lan::LanConfig`] defaults to that
//! friendly environment and lets experiments dial in the hostile one.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod lan;
pub mod udp;

pub use lan::{
    BurstLossConfig, Datagram, Dest, Lan, LanConfig, LanStats, McastGroup, MediumMode, NodeId,
    PrepareJob, WIRE_OVERHEAD,
};
