//! Real UDP multicast transport.
//!
//! The simulator proves the protocol's properties; this module proves
//! the system actually runs on a network. It wraps `std::net` UDP
//! multicast the way the paper's producer and speakers use it: the
//! rebroadcaster sends to a group address, speakers join the group and
//! receive — no unicast dialogue with the producer ever happens
//! (§2.3's receive-only "radio" design).
//!
//! The examples bind to the loopback interface so a single machine can
//! host a producer and several speaker threads.

use std::io;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::time::Duration;

/// Base multicast address for Ethernet Speaker channels; channel `n`
/// maps to `239.77.83.n` (administratively scoped range).
pub const CHANNEL_BASE: [u8; 3] = [239, 77, 83];

/// Default UDP port for audio channels.
pub const DEFAULT_PORT: u16 = 47_000;

/// Maps a channel number to its multicast group address.
pub fn channel_addr(channel: u8) -> Ipv4Addr {
    Ipv4Addr::new(CHANNEL_BASE[0], CHANNEL_BASE[1], CHANNEL_BASE[2], channel)
}

/// A socket configured for sending to an Ethernet Speaker channel.
#[derive(Debug)]
pub struct McastSender {
    socket: UdpSocket,
    dest: SocketAddrV4,
}

impl McastSender {
    /// Creates a sender for `channel` on `port`, looped back so
    /// same-host receivers hear it.
    pub fn new(channel: u8, port: u16) -> io::Result<Self> {
        let socket = UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0))?;
        socket.set_multicast_loop_v4(true)?;
        socket.set_multicast_ttl_v4(1)?; // Single LAN segment, as §2.3 requires.
        Ok(McastSender {
            socket,
            dest: SocketAddrV4::new(channel_addr(channel), port),
        })
    }

    /// Sends one datagram to the channel group.
    pub fn send(&self, payload: &[u8]) -> io::Result<usize> {
        self.socket.send_to(payload, self.dest)
    }

    /// The destination group address.
    pub fn dest(&self) -> SocketAddrV4 {
        self.dest
    }
}

/// A socket joined to an Ethernet Speaker channel for receiving.
#[derive(Debug)]
pub struct McastReceiver {
    socket: UdpSocket,
    group: Ipv4Addr,
}

impl McastReceiver {
    /// Joins `channel` on `port`, with a read timeout so receive loops
    /// can notice shutdown.
    pub fn join(channel: u8, port: u16, timeout: Duration) -> io::Result<Self> {
        let group = channel_addr(channel);
        let socket = bind_reusable(port)?;
        socket.join_multicast_v4(&group, &Ipv4Addr::UNSPECIFIED)?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(McastReceiver { socket, group })
    }

    /// Receives one datagram into `buf`; `Ok(None)` on timeout.
    pub fn recv(&self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        match self.socket.recv_from(buf) {
            Ok((n, _)) => Ok(Some(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Leaves the group (also happens implicitly on drop of the
    /// socket).
    pub fn leave(&self) -> io::Result<()> {
        self.socket
            .leave_multicast_v4(&self.group, &Ipv4Addr::UNSPECIFIED)
    }
}

/// Binds a UDP socket on `port` with `SO_REUSEADDR` semantics where the
/// platform allows several receivers on one host.
fn bind_reusable(port: u16) -> io::Result<UdpSocket> {
    // Plain std has no portable SO_REUSEADDR knob before binding; on
    // Linux, binding to the wildcard address is sufficient for one
    // receiver per port per process, which is what the examples need.
    UdpSocket::bind((Ipv4Addr::UNSPECIFIED, port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_telemetry::{Journal, Severity, Stamp};

    /// Environment-dependent skips are journaled (wall-clock stamps)
    /// rather than printed; the suite stays silent and the reason stays
    /// inspectable.
    fn skip(journal: &Journal, reason: String) {
        journal.emit(
            Stamp::wall_now(),
            Severity::Warn,
            "net",
            "multicast test skipped",
            &[("reason", reason)],
        );
    }

    #[test]
    fn channel_addresses_are_distinct_and_multicast() {
        let a = channel_addr(0);
        let b = channel_addr(1);
        assert_ne!(a, b);
        assert!(a.is_multicast());
        assert!(b.is_multicast());
    }

    #[test]
    fn loopback_multicast_roundtrip() {
        // Some CI sandboxes forbid multicast; skip quietly if join
        // fails rather than fail the suite on environment.
        let journal = Journal::new();
        let port = 49_377;
        let rx = match McastReceiver::join(9, port, Duration::from_millis(500)) {
            Ok(rx) => rx,
            Err(e) => {
                skip(&journal, e.to_string());
                return;
            }
        };
        let tx = match McastSender::new(9, port) {
            Ok(tx) => tx,
            Err(e) => {
                skip(&journal, e.to_string());
                return;
            }
        };
        if tx.send(b"es-probe").is_err() {
            skip(&journal, "send failed".to_string());
            return;
        }
        let mut buf = [0u8; 64];
        match rx.recv(&mut buf) {
            Ok(Some(n)) => assert_eq!(&buf[..n], b"es-probe"),
            Ok(None) => skip(&journal, "no loopback delivery".to_string()),
            Err(e) => skip(&journal, e.to_string()),
        }
        rx.leave().ok();
    }

    #[test]
    fn recv_timeout_returns_none() {
        let port = 49_378;
        let rx = match McastReceiver::join(10, port, Duration::from_millis(50)) {
            Ok(rx) => rx,
            Err(e) => {
                skip(&Journal::new(), e.to_string());
                return;
            }
        };
        let mut buf = [0u8; 8];
        assert!(matches!(rx.recv(&mut buf), Ok(None)));
    }
}
