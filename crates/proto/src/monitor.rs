//! Per-stream reception quality monitoring.
//!
//! §5.3 plans central management of speaker fleets ("create an SNMP MIB
//! to allow any NMS console to manage ESs"). A MIB needs numbers; this
//! module computes the standard reception-quality set from the packet
//! stream alone — no producer cooperation, keeping §2.3's stateless
//! design:
//!
//! - **interarrival jitter**, RFC 3550 §6.4.1 style: the smoothed
//!   difference between packet spacing on the wire and spacing on the
//!   producer's timeline,
//! - **loss** from sequence-number gaps,
//! - **reordering** and **duplicates**,
//! - a one-line health grade a console can threshold on.

/// Running reception-quality state for one stream.
#[derive(Debug, Clone, Default)]
pub struct StreamMonitor {
    highest_seq: Option<u32>,
    received: u64,
    duplicates: u64,
    reordered: u64,
    /// Sum of gap sizes observed (packets presumed lost).
    lost: u64,
    /// RFC 3550 smoothed jitter, in microseconds.
    jitter_us: f64,
    last_transit_us: Option<i64>,
    seen_window: std::collections::VecDeque<u32>,
}

/// A snapshot of reception quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Packets received (including duplicates).
    pub received: u64,
    /// Packets presumed lost (sequence gaps net of late arrivals).
    pub lost: u64,
    /// Loss fraction in `[0, 1]`.
    pub loss_fraction: f64,
    /// Duplicate packets.
    pub duplicates: u64,
    /// Packets that arrived after a later sequence number.
    pub reordered: u64,
    /// Smoothed interarrival jitter, microseconds.
    pub jitter_us: f64,
}

impl QualityReport {
    /// A coarse health grade for dashboards: `"good"` (loss < 1%,
    /// jitter < 20 ms), `"degraded"` (loss < 5%), else `"bad"`.
    pub fn grade(&self) -> &'static str {
        if self.loss_fraction < 0.01 && self.jitter_us < 20_000.0 {
            "good"
        } else if self.loss_fraction < 0.05 {
            "degraded"
        } else {
            "bad"
        }
    }
}

impl StreamMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a data packet: its sequence number, its producer-side
    /// timestamp, and the local arrival time (both microseconds).
    pub fn on_packet(&mut self, seq: u32, play_at_us: u64, arrival_us: u64) {
        self.received += 1;

        // Duplicate / reorder bookkeeping over a short memory window.
        if self.seen_window.contains(&seq) {
            self.duplicates += 1;
            return;
        }
        self.seen_window.push_back(seq);
        if self.seen_window.len() > 64 {
            self.seen_window.pop_front();
        }

        match self.highest_seq {
            None => self.highest_seq = Some(seq),
            Some(h) if seq > h => {
                let gap = seq - h - 1;
                self.lost += gap as u64;
                self.highest_seq = Some(seq);
            }
            Some(_) => {
                // Arrived after a higher sequence number: late. It was
                // provisionally counted lost; correct that.
                self.reordered += 1;
                self.lost = self.lost.saturating_sub(1);
            }
        }

        // RFC 3550 jitter: J += (|D| - J) / 16, with D the difference
        // in (arrival - timestamp) transit between consecutive packets.
        let transit = arrival_us as i64 - play_at_us as i64;
        if let Some(prev) = self.last_transit_us {
            let d = (transit - prev).abs() as f64;
            self.jitter_us += (d - self.jitter_us) / 16.0;
        }
        self.last_transit_us = Some(transit);
    }

    /// The current quality snapshot.
    pub fn report(&self) -> QualityReport {
        let expected = self.received - self.duplicates + self.lost;
        QualityReport {
            received: self.received,
            lost: self.lost,
            loss_fraction: if expected == 0 {
                0.0
            } else {
                self.lost as f64 / expected as f64
            },
            duplicates: self.duplicates,
            reordered: self.reordered,
            jitter_us: self.jitter_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_clean(m: &mut StreamMonitor, n: u32, spacing_us: u64, jitter: impl Fn(u32) -> i64) {
        for i in 0..n {
            let ts = i as u64 * spacing_us;
            let arrival = (ts as i64 + 100 + jitter(i)).max(0) as u64;
            m.on_packet(i, ts, arrival);
        }
    }

    #[test]
    fn clean_stream_is_good() {
        let mut m = StreamMonitor::new();
        feed_clean(&mut m, 200, 50_000, |_| 0);
        let r = m.report();
        assert_eq!(r.received, 200);
        assert_eq!(r.lost, 0);
        assert_eq!(r.duplicates, 0);
        assert_eq!(r.reordered, 0);
        assert!(r.jitter_us < 1.0);
        assert_eq!(r.grade(), "good");
    }

    #[test]
    fn gaps_count_as_loss() {
        let mut m = StreamMonitor::new();
        for seq in [0u32, 1, 2, 5, 6, 10] {
            m.on_packet(seq, seq as u64 * 50_000, seq as u64 * 50_000 + 100);
        }
        let r = m.report();
        assert_eq!(r.lost, 5, "seqs 3,4,7,8,9");
        assert!(r.loss_fraction > 0.4);
        assert_eq!(r.grade(), "bad");
    }

    #[test]
    fn late_arrival_corrects_loss_into_reorder() {
        let mut m = StreamMonitor::new();
        for seq in [0u32, 1, 3, 2, 4] {
            m.on_packet(seq, seq as u64 * 50_000, seq as u64 * 50_000 + 100);
        }
        let r = m.report();
        assert_eq!(r.lost, 0, "2 arrived late, not lost");
        assert_eq!(r.reordered, 1);
        assert_eq!(r.grade(), "good");
    }

    #[test]
    fn duplicates_are_counted_once() {
        let mut m = StreamMonitor::new();
        for seq in [0u32, 1, 1, 1, 2] {
            m.on_packet(seq, seq as u64 * 50_000, seq as u64 * 50_000 + 100);
        }
        let r = m.report();
        assert_eq!(r.duplicates, 2);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn jitter_tracks_arrival_variance() {
        let mut steady = StreamMonitor::new();
        feed_clean(&mut steady, 200, 50_000, |_| 0);
        let mut shaky = StreamMonitor::new();
        feed_clean(&mut shaky, 200, 50_000, |i| {
            if i % 2 == 0 {
                8_000
            } else {
                -8_000
            }
        });
        let s = steady.report().jitter_us;
        let j = shaky.report().jitter_us;
        assert!(j > s + 5_000.0, "jitter {j} vs steady {s}");
        // RFC smoothing converges toward the mean |D| = 16 ms.
        assert!((10_000.0..20_000.0).contains(&j), "{j}");
    }

    #[test]
    fn grades_threshold_sensibly() {
        let mk = |loss: f64, jitter: f64| QualityReport {
            received: 100,
            lost: 0,
            loss_fraction: loss,
            duplicates: 0,
            reordered: 0,
            jitter_us: jitter,
        };
        assert_eq!(mk(0.0, 0.0).grade(), "good");
        assert_eq!(mk(0.001, 50_000.0).grade(), "degraded");
        assert_eq!(mk(0.03, 0.0).grade(), "degraded");
        assert_eq!(mk(0.2, 0.0).grade(), "bad");
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let r = StreamMonitor::new().report();
        assert_eq!(r.received, 0);
        assert_eq!(r.loss_fraction, 0.0);
        assert_eq!(r.grade(), "good");
    }
}
