//! The session control plane (discovery, negotiation, lifecycle).
//!
//! The paper's producer is stateless radio: speakers tune a multicast
//! group and listen. Production streaming systems (RTSP/RAOP-style)
//! instead *negotiate*: a receiver discovers what is on the air,
//! advertises what it can play, and is granted a session naming the
//! group, codec and playout delay it should use. This module is that
//! control plane as deterministic wire packets and pure state
//! machines, transport-agnostic so the same logic drives the
//! simulated LAN (`es-core`) and real UDP multicast (the loopback
//! smoke test):
//!
//! - **DISCOVER** — a speaker multicasts its [`Capabilities`]
//!   (codecs, sample rates, device class) on the announce group.
//! - **OFFER** — the producer answers with the channel line-up, each
//!   entry carrying the stream's own capability advertisement.
//! - **SETUP / SETUP-ACK / REFUSE** — per-receiver handshake: the
//!   speaker asks for one stream with a codec and playout delay; the
//!   producer grants a session id + group or refuses with a reason.
//! - **KEEPALIVE** — receivers refresh their entry in the producer's
//!   [`SessionTable`]; silence past the timeout expires the session.
//! - **FLUSH** — producer-initiated resync: the speaker re-gates on
//!   the next control packet (the §3.2 catch-up rule, commanded).
//! - **TEARDOWN** — either side ends the session, with a reason.
//! - **PARAM** — in-session parameter updates (volume, metadata).
//!
//! Everything reuses the [`crate::packet`] framing: same magic,
//! version and CRC-32 trailer, one new packet type with a kind byte.
//! The state machines ([`SessionClient`], [`SessionTable`],
//! [`negotiate`]) are pure functions of (time, packets) — no clocks,
//! no randomness — so two runs with the same inputs are bit-identical,
//! which is what lets chaos conformance fingerprint whole handshakes.

use bytes::{Buf, BufMut, BytesMut};

use crate::packet::{StreamInfo, WireError};

/// What kind of playback device a receiver is (capability
/// advertisement; the adaptive-quality ladder will key off this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DeviceClass {
    /// Minimal decoder budget (e.g. the paper's 266 MHz Geode).
    Thin,
    /// Default device.
    #[default]
    Standard,
    /// Full decode budget, prefers the best codec on offer.
    Hifi,
}

impl DeviceClass {
    /// Wire discriminant.
    pub const fn to_wire(self) -> u8 {
        match self {
            DeviceClass::Thin => 0,
            DeviceClass::Standard => 1,
            DeviceClass::Hifi => 2,
        }
    }

    /// Decodes the wire discriminant.
    pub const fn from_wire(v: u8) -> Option<DeviceClass> {
        Some(match v {
            0 => DeviceClass::Thin,
            1 => DeviceClass::Standard,
            2 => DeviceClass::Hifi,
            _ => return None,
        })
    }
}

/// A capability advertisement: what a receiver can play, or what a
/// stream requires. Empty lists mean "unconstrained".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// Codec wire ids supported (see [`es_codec wire ids`]; empty =
    /// any).
    ///
    /// [`es_codec wire ids`]: crate::packet::ControlPacket::codec
    pub codecs: Vec<u8>,
    /// Sample rates supported (empty = any).
    pub sample_rates: Vec<u32>,
    /// Device class.
    pub device_class: DeviceClass,
}

impl Capabilities {
    /// A receiver that plays every codec at any rate.
    pub fn any() -> Self {
        Capabilities::default()
    }

    /// True when `codec` is acceptable under this advertisement.
    pub fn supports_codec(&self, codec: u8) -> bool {
        self.codecs.is_empty() || self.codecs.contains(&codec)
    }

    /// True when `rate` is acceptable under this advertisement.
    pub fn supports_rate(&self, rate: u32) -> bool {
        self.sample_rates.is_empty() || self.sample_rates.contains(&rate)
    }
}

/// Why a SETUP was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// No such stream on the air.
    UnknownStream,
    /// No codec acceptable to both sides.
    CodecMismatch,
    /// The stream's sample rate is outside the receiver's set.
    RateMismatch,
}

impl RefuseReason {
    /// Wire discriminant.
    pub const fn to_wire(self) -> u8 {
        match self {
            RefuseReason::UnknownStream => 0,
            RefuseReason::CodecMismatch => 1,
            RefuseReason::RateMismatch => 2,
        }
    }

    /// Decodes the wire discriminant.
    pub const fn from_wire(v: u8) -> Option<RefuseReason> {
        Some(match v {
            0 => RefuseReason::UnknownStream,
            1 => RefuseReason::CodecMismatch,
            2 => RefuseReason::RateMismatch,
            _ => return None,
        })
    }
}

impl core::fmt::Display for RefuseReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RefuseReason::UnknownStream => f.write_str("unknown stream"),
            RefuseReason::CodecMismatch => f.write_str("codec mismatch"),
            RefuseReason::RateMismatch => f.write_str("sample-rate mismatch"),
        }
    }
}

/// Why a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeardownReason {
    /// The peer asked for it.
    Requested,
    /// The producer expired it (keepalives stopped).
    Expired,
    /// The stream went off the air.
    StreamEnded,
}

impl TeardownReason {
    /// Wire discriminant.
    pub const fn to_wire(self) -> u8 {
        match self {
            TeardownReason::Requested => 0,
            TeardownReason::Expired => 1,
            TeardownReason::StreamEnded => 2,
        }
    }

    /// Decodes the wire discriminant.
    pub const fn from_wire(v: u8) -> Option<TeardownReason> {
        Some(match v {
            0 => TeardownReason::Requested,
            1 => TeardownReason::Expired,
            2 => TeardownReason::StreamEnded,
            _ => return None,
        })
    }
}

impl core::fmt::Display for TeardownReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TeardownReason::Requested => f.write_str("requested"),
            TeardownReason::Expired => f.write_str("expired"),
            TeardownReason::StreamEnded => f.write_str("stream ended"),
        }
    }
}

/// A control-plane packet. All variants ride the standard packet
/// framing (magic, version, CRC) as one wire type with a kind byte;
/// see [`crate::packet::Packet::Session`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionPacket {
    /// A speaker looking for channels, advertising what it can play.
    Discover {
        /// Per-speaker discover sequence number.
        seq: u32,
        /// Speaker name (the logical reply address).
        speaker: String,
        /// What the speaker can play.
        caps: Capabilities,
    },
    /// The producer's channel line-up, with per-stream capabilities.
    Offer {
        /// Producer offer sequence number.
        seq: u32,
        /// Channels on the air.
        streams: Vec<StreamInfo>,
    },
    /// A speaker requests one stream.
    Setup {
        /// Requesting speaker.
        speaker: String,
        /// Stream wanted.
        stream_id: u16,
        /// Codec the speaker chose from the stream's advertisement.
        codec: u8,
        /// Playout delay the speaker wants.
        playout_delay_us: u64,
        /// The speaker's capabilities (revalidated by the producer).
        caps: Capabilities,
    },
    /// The producer grants a session.
    SetupAck {
        /// Granted session id.
        session_id: u32,
        /// The speaker this grant is for.
        speaker: String,
        /// Stream granted.
        stream_id: u16,
        /// Multicast group to join for the data plane.
        group: u16,
        /// Codec the producer confirmed.
        codec: u8,
        /// Playout delay the producer granted (clamped).
        playout_delay_us: u64,
    },
    /// The producer declines a SETUP.
    Refuse {
        /// The speaker refused.
        speaker: String,
        /// Stream that was asked for.
        stream_id: u16,
        /// Why.
        reason: RefuseReason,
    },
    /// A receiver refreshing its session-table entry.
    Keepalive {
        /// Session being refreshed.
        session_id: u32,
    },
    /// Producer-commanded resync: re-gate on the next control packet.
    Flush {
        /// Session being flushed.
        session_id: u32,
    },
    /// Either side ends the session.
    Teardown {
        /// Session being ended.
        session_id: u32,
        /// Why.
        reason: TeardownReason,
    },
    /// In-session parameter update (volume, metadata, FEC level,
    /// NACKed sequence ranges). Either direction: producer→receiver
    /// carries volume/metadata/FEC announcements, receiver→producer
    /// carries NACK ranges asking for retransmission.
    Param {
        /// Session being updated.
        session_id: u32,
        /// Volume gain in thousandths (1000 = unity);
        /// [`PARAM_VOLUME_UNCHANGED`] leaves the volume alone.
        volume_milli: u16,
        /// Free-form metadata (now-playing string and the like).
        metadata: String,
        /// FEC parity-group change: [`PARAM_FEC_UNCHANGED`] (no
        /// change), [`PARAM_FEC_OFF`] (disable parity), or a group
        /// size in `2..=32`.
        fec_group: u8,
        /// Missed sequence ranges as `(first_seq, count)` pairs, at
        /// most [`MAX_NACK_RANGES`] per packet, each count ≥ 1.
        nack: Vec<(u32, u16)>,
    },
}

/// `Param::volume_milli` sentinel: leave the volume unchanged.
pub const PARAM_VOLUME_UNCHANGED: u16 = u16::MAX;
/// `Param::fec_group` sentinel: leave the FEC level unchanged.
pub const PARAM_FEC_UNCHANGED: u8 = 0;
/// `Param::fec_group` sentinel: disable parity emission.
pub const PARAM_FEC_OFF: u8 = 1;
/// Largest parity group expressible in a PARAM (matches
/// [`crate::fec`]'s wire bound).
pub const PARAM_FEC_MAX_GROUP: u8 = 32;
/// Most NACK ranges one PARAM may carry.
pub const MAX_NACK_RANGES: usize = 16;

impl SessionPacket {
    /// A PARAM that only changes the volume/metadata (the original
    /// PR 6 shape).
    pub fn param_volume(session_id: u32, volume_milli: u16, metadata: String) -> SessionPacket {
        SessionPacket::Param {
            session_id,
            volume_milli,
            metadata,
            fec_group: PARAM_FEC_UNCHANGED,
            nack: Vec::new(),
        }
    }

    /// A PARAM announcing an FEC parity-group change (`None` = off).
    pub fn param_fec(session_id: u32, group: Option<u8>) -> SessionPacket {
        SessionPacket::Param {
            session_id,
            volume_milli: PARAM_VOLUME_UNCHANGED,
            metadata: String::new(),
            fec_group: group.unwrap_or(PARAM_FEC_OFF),
            nack: Vec::new(),
        }
    }

    /// A PARAM NACKing missed sequence ranges (receiver→producer).
    pub fn param_nack(session_id: u32, nack: Vec<(u32, u16)>) -> SessionPacket {
        SessionPacket::Param {
            session_id,
            volume_milli: PARAM_VOLUME_UNCHANGED,
            metadata: String::new(),
            fec_group: PARAM_FEC_UNCHANGED,
            nack,
        }
    }
}

impl SessionPacket {
    /// The stream this packet concerns, when it names one.
    pub fn stream_id(&self) -> u16 {
        match self {
            SessionPacket::Setup { stream_id, .. }
            | SessionPacket::SetupAck { stream_id, .. }
            | SessionPacket::Refuse { stream_id, .. } => *stream_id,
            _ => 0,
        }
    }

    /// The session this packet concerns, when one exists yet.
    pub fn session_id(&self) -> Option<u32> {
        match self {
            SessionPacket::SetupAck { session_id, .. }
            | SessionPacket::Keepalive { session_id }
            | SessionPacket::Flush { session_id }
            | SessionPacket::Teardown { session_id, .. }
            | SessionPacket::Param { session_id, .. } => Some(*session_id),
            _ => None,
        }
    }

    /// A short kind label for journals.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionPacket::Discover { .. } => "discover",
            SessionPacket::Offer { .. } => "offer",
            SessionPacket::Setup { .. } => "setup",
            SessionPacket::SetupAck { .. } => "setup-ack",
            SessionPacket::Refuse { .. } => "refuse",
            SessionPacket::Keepalive { .. } => "keepalive",
            SessionPacket::Flush { .. } => "flush",
            SessionPacket::Teardown { .. } => "teardown",
            SessionPacket::Param { .. } => "param",
        }
    }
}

const K_DISCOVER: u8 = 1;
const K_OFFER: u8 = 2;
const K_SETUP: u8 = 3;
const K_ACK: u8 = 4;
const K_REFUSE: u8 = 5;
const K_KEEPALIVE: u8 = 6;
const K_FLUSH: u8 = 7;
const K_TEARDOWN: u8 = 8;
const K_PARAM: u8 = 9;

pub(crate) fn put_caps(buf: &mut BytesMut, caps: &Capabilities) {
    buf.put_u8(caps.codecs.len().min(255) as u8);
    for c in caps.codecs.iter().take(255) {
        buf.put_u8(*c);
    }
    buf.put_u8(caps.sample_rates.len().min(255) as u8);
    for r in caps.sample_rates.iter().take(255) {
        buf.put_u32_le(*r);
    }
    buf.put_u8(caps.device_class.to_wire());
}

pub(crate) fn get_caps(buf: &mut &[u8]) -> Result<Capabilities, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::TooShort);
    }
    let n_codecs = buf.get_u8() as usize;
    if buf.remaining() < n_codecs {
        return Err(WireError::TooShort);
    }
    let codecs = buf[..n_codecs].to_vec();
    buf.advance(n_codecs);
    if buf.remaining() < 1 {
        return Err(WireError::TooShort);
    }
    let n_rates = buf.get_u8() as usize;
    if buf.remaining() < n_rates * 4 {
        return Err(WireError::TooShort);
    }
    let mut sample_rates = Vec::with_capacity(n_rates);
    for _ in 0..n_rates {
        sample_rates.push(buf.get_u32_le());
    }
    if buf.remaining() < 1 {
        return Err(WireError::TooShort);
    }
    let device_class =
        DeviceClass::from_wire(buf.get_u8()).ok_or(WireError::BadField("device class"))?;
    Ok(Capabilities {
        codecs,
        sample_rates,
        device_class,
    })
}

fn put_name(buf: &mut BytesMut, name: &str) {
    let bytes = name.as_bytes();
    let len = bytes.len().min(255);
    buf.put_u8(len as u8);
    buf.put_slice(&bytes[..len]);
}

fn get_name(buf: &mut &[u8]) -> Result<String, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::TooShort);
    }
    let len = buf.get_u8() as usize;
    if buf.remaining() < len {
        return Err(WireError::TooShort);
    }
    let name =
        String::from_utf8(buf[..len].to_vec()).map_err(|_| WireError::BadField("name utf8"))?;
    buf.advance(len);
    Ok(name)
}

/// Serializes a session packet into `buf`, appending to any existing
/// contents with a region CRC (see
/// [`crate::packet::encode_control_into`]).
pub fn encode_session_into(p: &SessionPacket, buf: &mut BytesMut) {
    let start = buf.len();
    buf.reserve(64);
    let (stream_id, seq) = match p {
        SessionPacket::Discover { seq, .. } | SessionPacket::Offer { seq, .. } => (0u16, *seq),
        SessionPacket::Setup { stream_id, .. } | SessionPacket::Refuse { stream_id, .. } => {
            (*stream_id, 0)
        }
        SessionPacket::SetupAck {
            session_id,
            stream_id,
            ..
        } => (*stream_id, *session_id),
        SessionPacket::Keepalive { session_id }
        | SessionPacket::Flush { session_id }
        | SessionPacket::Teardown { session_id, .. }
        | SessionPacket::Param { session_id, .. } => (0, *session_id),
    };
    crate::packet::put_session_header(buf, stream_id, seq);
    match p {
        SessionPacket::Discover { speaker, caps, .. } => {
            buf.put_u8(K_DISCOVER);
            put_name(buf, speaker);
            put_caps(buf, caps);
        }
        SessionPacket::Offer { streams, .. } => {
            buf.put_u8(K_OFFER);
            buf.put_u16_le(streams.len() as u16);
            for s in streams {
                crate::packet::put_stream_info(buf, s);
            }
        }
        SessionPacket::Setup {
            speaker,
            codec,
            playout_delay_us,
            caps,
            ..
        } => {
            buf.put_u8(K_SETUP);
            put_name(buf, speaker);
            buf.put_u8(*codec);
            buf.put_u64_le(*playout_delay_us);
            put_caps(buf, caps);
        }
        SessionPacket::SetupAck {
            speaker,
            group,
            codec,
            playout_delay_us,
            ..
        } => {
            buf.put_u8(K_ACK);
            put_name(buf, speaker);
            buf.put_u16_le(*group);
            buf.put_u8(*codec);
            buf.put_u64_le(*playout_delay_us);
        }
        SessionPacket::Refuse {
            speaker, reason, ..
        } => {
            buf.put_u8(K_REFUSE);
            put_name(buf, speaker);
            buf.put_u8(reason.to_wire());
        }
        SessionPacket::Keepalive { .. } => {
            buf.put_u8(K_KEEPALIVE);
        }
        SessionPacket::Flush { .. } => {
            buf.put_u8(K_FLUSH);
        }
        SessionPacket::Teardown { reason, .. } => {
            buf.put_u8(K_TEARDOWN);
            buf.put_u8(reason.to_wire());
        }
        SessionPacket::Param {
            volume_milli,
            metadata,
            fec_group,
            nack,
            ..
        } => {
            buf.put_u8(K_PARAM);
            buf.put_u16_le(*volume_milli);
            put_name(buf, metadata);
            buf.put_u8(*fec_group);
            buf.put_u8(nack.len().min(MAX_NACK_RANGES) as u8);
            for (first, count) in nack.iter().take(MAX_NACK_RANGES) {
                buf.put_u32_le(*first);
                buf.put_u16_le(*count);
            }
        }
    }
    crate::packet::finish_session(buf, start);
}

/// Serializes a session packet.
pub fn encode_session(p: &SessionPacket) -> bytes::Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_session_into(p, &mut buf);
    buf.freeze()
}

/// Parses a session packet body (after the common header; CRC already
/// verified by [`crate::packet::decode`]).
pub(crate) fn decode_session_body(
    stream_id: u16,
    seq: u32,
    mut buf: &[u8],
) -> Result<SessionPacket, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::TooShort);
    }
    let kind = buf.get_u8();
    let pkt = match kind {
        K_DISCOVER => {
            let speaker = get_name(&mut buf)?;
            let caps = get_caps(&mut buf)?;
            SessionPacket::Discover { seq, speaker, caps }
        }
        K_OFFER => {
            if buf.remaining() < 2 {
                return Err(WireError::TooShort);
            }
            let count = buf.get_u16_le() as usize;
            if count > 512 {
                return Err(WireError::BadField("stream count"));
            }
            let mut streams = Vec::with_capacity(count);
            for _ in 0..count {
                streams.push(crate::packet::get_stream_info(&mut buf)?);
            }
            SessionPacket::Offer { seq, streams }
        }
        K_SETUP => {
            let speaker = get_name(&mut buf)?;
            if buf.remaining() < 9 {
                return Err(WireError::TooShort);
            }
            let codec = buf.get_u8();
            let playout_delay_us = buf.get_u64_le();
            let caps = get_caps(&mut buf)?;
            SessionPacket::Setup {
                speaker,
                stream_id,
                codec,
                playout_delay_us,
                caps,
            }
        }
        K_ACK => {
            let speaker = get_name(&mut buf)?;
            if buf.remaining() < 11 {
                return Err(WireError::TooShort);
            }
            let group = buf.get_u16_le();
            let codec = buf.get_u8();
            let playout_delay_us = buf.get_u64_le();
            SessionPacket::SetupAck {
                session_id: seq,
                speaker,
                stream_id,
                group,
                codec,
                playout_delay_us,
            }
        }
        K_REFUSE => {
            let speaker = get_name(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(WireError::TooShort);
            }
            let reason =
                RefuseReason::from_wire(buf.get_u8()).ok_or(WireError::BadField("reason"))?;
            SessionPacket::Refuse {
                speaker,
                stream_id,
                reason,
            }
        }
        K_KEEPALIVE => SessionPacket::Keepalive { session_id: seq },
        K_FLUSH => SessionPacket::Flush { session_id: seq },
        K_TEARDOWN => {
            if buf.remaining() < 1 {
                return Err(WireError::TooShort);
            }
            let reason =
                TeardownReason::from_wire(buf.get_u8()).ok_or(WireError::BadField("reason"))?;
            SessionPacket::Teardown {
                session_id: seq,
                reason,
            }
        }
        K_PARAM => {
            if buf.remaining() < 2 {
                return Err(WireError::TooShort);
            }
            let volume_milli = buf.get_u16_le();
            let metadata = get_name(&mut buf)?;
            if buf.remaining() < 2 {
                return Err(WireError::TooShort);
            }
            let fec_group = buf.get_u8();
            if fec_group > PARAM_FEC_MAX_GROUP {
                return Err(WireError::BadField("fec group"));
            }
            let n_ranges = buf.get_u8() as usize;
            if n_ranges > MAX_NACK_RANGES {
                return Err(WireError::BadField("nack count"));
            }
            if buf.remaining() < n_ranges * 6 {
                return Err(WireError::TooShort);
            }
            let mut nack = Vec::with_capacity(n_ranges);
            for _ in 0..n_ranges {
                let first = buf.get_u32_le();
                let count = buf.get_u16_le();
                if count == 0 {
                    return Err(WireError::BadField("nack range length"));
                }
                nack.push((first, count));
            }
            SessionPacket::Param {
                session_id: seq,
                volume_milli,
                metadata,
                fec_group,
                nack,
            }
        }
        _ => return Err(WireError::BadField("session kind")),
    };
    if buf.has_remaining() {
        return Err(WireError::BadField("trailing bytes"));
    }
    Ok(pkt)
}

/// What the producer granted in a successful negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Multicast group carrying the stream.
    pub group: u16,
    /// Confirmed codec.
    pub codec: u8,
    /// Granted playout delay (clamped to sane bounds).
    pub playout_delay_us: u64,
}

/// Floor of the granted playout delay.
pub const MIN_PLAYOUT_DELAY_US: u64 = 20_000;
/// Ceiling of the granted playout delay.
pub const MAX_PLAYOUT_DELAY_US: u64 = 2_000_000;

/// Pure capability negotiation: validates a SETUP against a stream's
/// advertisement and both sides' capabilities. Deterministic — same
/// inputs, same grant.
pub fn negotiate(
    info: &StreamInfo,
    speaker_caps: &Capabilities,
    codec: u8,
    requested_delay_us: u64,
) -> Result<Grant, RefuseReason> {
    if !info.caps.supports_codec(codec) || !speaker_caps.supports_codec(codec) {
        return Err(RefuseReason::CodecMismatch);
    }
    if !speaker_caps.supports_rate(info.config.sample_rate) {
        return Err(RefuseReason::RateMismatch);
    }
    Ok(Grant {
        group: info.group,
        codec,
        playout_delay_us: requested_delay_us.clamp(MIN_PLAYOUT_DELAY_US, MAX_PLAYOUT_DELAY_US),
    })
}

/// One granted session, as tracked by the producer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// Session id.
    pub session_id: u32,
    /// Receiver name.
    pub speaker: String,
    /// Stream granted.
    pub stream_id: u16,
    /// Confirmed codec.
    pub codec: u8,
    /// Granted playout delay.
    pub playout_delay_us: u64,
    /// When the session was opened (µs on the tracking clock).
    pub opened_at_us: u64,
    /// Last keepalive (or open) time.
    pub last_seen_us: u64,
}

/// The producer-side session table: granted sessions keyed by id,
/// with timeout-driven expiry. Iteration order is the key order
/// (BTreeMap), so expiry sweeps are deterministic.
#[derive(Debug, Clone, Default)]
pub struct SessionTable {
    entries: std::collections::BTreeMap<u32, SessionEntry>,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions removed by timeout.
    pub expired: u64,
    /// Sessions removed by teardown.
    pub closed: u64,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Records a newly granted session.
    pub fn open(&mut self, entry: SessionEntry) {
        self.opened += 1;
        self.entries.insert(entry.session_id, entry);
    }

    /// Refreshes a session's liveness; false if the id is unknown
    /// (already expired — the receiver will re-discover).
    pub fn touch(&mut self, session_id: u32, now_us: u64) -> bool {
        match self.entries.get_mut(&session_id) {
            Some(e) => {
                e.last_seen_us = e.last_seen_us.max(now_us);
                true
            }
            None => false,
        }
    }

    /// Removes a session by teardown.
    pub fn close(&mut self, session_id: u32) -> Option<SessionEntry> {
        let e = self.entries.remove(&session_id);
        if e.is_some() {
            self.closed += 1;
        }
        e
    }

    /// Removes and returns every session silent for longer than
    /// `timeout_us`, in session-id order.
    pub fn expire(&mut self, now_us: u64, timeout_us: u64) -> Vec<SessionEntry> {
        let dead: Vec<u32> = self
            .entries
            .values()
            .filter(|e| now_us.saturating_sub(e.last_seen_us) > timeout_us)
            .map(|e| e.session_id)
            .collect();
        let mut out = Vec::with_capacity(dead.len());
        for id in dead {
            if let Some(e) = self.entries.remove(&id) {
                self.expired += 1;
                out.push(e);
            }
        }
        out
    }

    /// The entry for `session_id`, if present.
    pub fn get(&self, session_id: u32) -> Option<&SessionEntry> {
        self.entries.get(&session_id)
    }

    /// The live session held by `speaker`, if any (a speaker holds at
    /// most one session per stream; retried SETUPs re-ACK it).
    pub fn find_by_speaker(&self, speaker: &str) -> Option<&SessionEntry> {
        self.entries.values().find(|e| e.speaker == speaker)
    }

    /// Live session count.
    pub fn active(&self) -> usize {
        self.entries.len()
    }

    /// Iterates live sessions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SessionEntry> {
        self.entries.values()
    }
}

/// Client (receiver-side) session state machine configuration. All
/// times are in microseconds on whatever monotone clock the caller
/// drives [`SessionClient::poll`] with.
#[derive(Debug, Clone)]
pub struct SessionClientConfig {
    /// This receiver's name (logical address in the handshake).
    pub speaker: String,
    /// Channel name wanted (matched against [`StreamInfo::name`]).
    pub channel: String,
    /// What this receiver can play.
    pub caps: Capabilities,
    /// Playout delay to request.
    pub requested_playout_delay_us: u64,
    /// DISCOVER period while unattached.
    pub discover_interval_us: u64,
    /// SETUP retransmit period.
    pub setup_retry_us: u64,
    /// SETUP attempts before falling back to discovery.
    pub max_setup_attempts: u32,
    /// KEEPALIVE period while established.
    pub keepalive_interval_us: u64,
    /// Silence (no control-plane or stream traffic) after which the
    /// session is declared lost and discovery restarts.
    pub session_timeout_us: u64,
    /// Re-discover after a TEARDOWN (false: stay down).
    pub auto_rejoin: bool,
}

impl SessionClientConfig {
    /// Defaults tuned for the simulator's timescale: 300 ms discovery,
    /// 400 ms setup retry, 1 s keepalives, 2.5 s session timeout.
    pub fn new(speaker: impl Into<String>, channel: impl Into<String>) -> Self {
        SessionClientConfig {
            speaker: speaker.into(),
            channel: channel.into(),
            caps: Capabilities::any(),
            requested_playout_delay_us: 200_000,
            discover_interval_us: 300_000,
            setup_retry_us: 400_000,
            max_setup_attempts: 4,
            keepalive_interval_us: 1_000_000,
            session_timeout_us: 2_500_000,
            auto_rejoin: true,
        }
    }
}

/// Where a [`SessionClient`] is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPhase {
    /// Multicasting DISCOVER, waiting for an OFFER naming the channel.
    Discovering,
    /// SETUP sent, waiting for the ACK.
    Requesting,
    /// Session granted; streaming.
    Established,
    /// Torn down with `auto_rejoin` off; terminal.
    Done,
}

/// What the surrounding transport must do in response to an event.
/// Actions come back in a deterministic order; the caller applies
/// them in sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// Transmit this packet on the announce group.
    Send(SessionPacket),
    /// Join the granted data group and gate on its control packet.
    JoinData(u16),
    /// Leave the data group (session over or lost).
    LeaveData(u16),
    /// Flush playback and re-gate on the next control packet.
    Resync,
    /// Apply a granted volume (thousandths; 1000 = unity).
    SetVolume(u16),
    /// The producer changed the FEC parity group for this stream
    /// (`None` = parity off). Informational: the decoder adapts to
    /// arriving parity packets on its own; this is the journaling
    /// hook for the healing plane.
    SetFec {
        /// New parity group (`None` disables parity).
        group: Option<u8>,
    },
    /// The handshake completed (journaling hook).
    Established {
        /// Granted session id.
        session_id: u32,
        /// Granted stream.
        stream_id: u16,
        /// Granted group.
        group: u16,
        /// Confirmed codec.
        codec: u8,
        /// Granted playout delay.
        playout_delay_us: u64,
    },
    /// The session timed out; discovery restarts (journaling hook).
    Lost {
        /// The session that died.
        session_id: u32,
    },
    /// The session was torn down by the producer (journaling hook).
    Closed {
        /// The session that ended.
        session_id: u32,
        /// Why.
        reason: TeardownReason,
    },
    /// SETUP attempts exhausted; back to discovery (journaling hook).
    GaveUp,
}

#[derive(Debug)]
enum ClientState {
    Discovering {
        next_discover_at: u64,
    },
    Requesting {
        stream_id: u16,
        codec: u8,
        last_setup_at: u64,
        attempts: u32,
    },
    Established {
        session_id: u32,
        stream_id: u16,
        group: u16,
        last_alive_at: u64,
        next_keepalive_at: u64,
    },
    Done,
}

/// The receiver-side handshake state machine. Pure: consumes time
/// (via [`poll`](Self::poll)) and packets (via
/// [`on_packet`](Self::on_packet)), emits [`ClientAction`]s. The
/// caller owns all transport and timing.
#[derive(Debug)]
pub struct SessionClient {
    cfg: SessionClientConfig,
    state: ClientState,
    discover_seq: u32,
    /// DISCOVERs sent (diagnostics).
    pub discovers_sent: u64,
    /// SETUPs sent (diagnostics).
    pub setups_sent: u64,
    /// Sessions established over this client's lifetime.
    pub sessions_established: u64,
    /// Sessions lost to timeout.
    pub sessions_lost: u64,
}

impl SessionClient {
    /// A client that starts discovering at the first poll.
    pub fn new(cfg: SessionClientConfig) -> Self {
        SessionClient {
            cfg,
            state: ClientState::Discovering {
                next_discover_at: 0,
            },
            discover_seq: 0,
            discovers_sent: 0,
            setups_sent: 0,
            sessions_established: 0,
            sessions_lost: 0,
        }
    }

    /// The configuration this client runs with.
    pub fn config(&self) -> &SessionClientConfig {
        &self.cfg
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> ClientPhase {
        match self.state {
            ClientState::Discovering { .. } => ClientPhase::Discovering,
            ClientState::Requesting { .. } => ClientPhase::Requesting,
            ClientState::Established { .. } => ClientPhase::Established,
            ClientState::Done => ClientPhase::Done,
        }
    }

    /// The granted session id, while established.
    pub fn session_id(&self) -> Option<u32> {
        match self.state {
            ClientState::Established { session_id, .. } => Some(session_id),
            _ => None,
        }
    }

    /// Evidence the stream is alive (e.g. a control packet arrived on
    /// the data group) — defers the session-loss timeout.
    pub fn note_stream_alive(&mut self, now_us: u64) {
        if let ClientState::Established { last_alive_at, .. } = &mut self.state {
            *last_alive_at = (*last_alive_at).max(now_us);
        }
    }

    fn discover(&mut self, now_us: u64) -> SessionPacket {
        let seq = self.discover_seq;
        self.discover_seq += 1;
        self.discovers_sent += 1;
        self.state = ClientState::Discovering {
            next_discover_at: now_us + self.cfg.discover_interval_us,
        };
        SessionPacket::Discover {
            seq,
            speaker: self.cfg.speaker.clone(),
            caps: self.cfg.caps.clone(),
        }
    }

    fn setup(&self, stream_id: u16, codec: u8) -> SessionPacket {
        SessionPacket::Setup {
            speaker: self.cfg.speaker.clone(),
            stream_id,
            codec,
            playout_delay_us: self.cfg.requested_playout_delay_us,
            caps: self.cfg.caps.clone(),
        }
    }

    /// Advances timers to `now_us`. Call periodically (the tick rate
    /// bounds handshake latency, not correctness).
    pub fn poll(&mut self, now_us: u64) -> Vec<ClientAction> {
        let mut out = Vec::new();
        match self.state {
            ClientState::Discovering { next_discover_at } => {
                if now_us >= next_discover_at {
                    let d = self.discover(now_us);
                    out.push(ClientAction::Send(d));
                }
            }
            ClientState::Requesting {
                stream_id,
                codec,
                last_setup_at,
                attempts,
            } => {
                if now_us.saturating_sub(last_setup_at) >= self.cfg.setup_retry_us {
                    if attempts >= self.cfg.max_setup_attempts {
                        out.push(ClientAction::GaveUp);
                        self.state = ClientState::Discovering {
                            next_discover_at: now_us,
                        };
                    } else {
                        self.setups_sent += 1;
                        out.push(ClientAction::Send(self.setup(stream_id, codec)));
                        self.state = ClientState::Requesting {
                            stream_id,
                            codec,
                            last_setup_at: now_us,
                            attempts: attempts + 1,
                        };
                    }
                }
            }
            ClientState::Established {
                session_id,
                group,
                last_alive_at,
                next_keepalive_at,
                stream_id,
            } => {
                if now_us.saturating_sub(last_alive_at) > self.cfg.session_timeout_us {
                    self.sessions_lost += 1;
                    out.push(ClientAction::Lost { session_id });
                    out.push(ClientAction::LeaveData(group));
                    self.state = ClientState::Discovering {
                        next_discover_at: now_us,
                    };
                } else if now_us >= next_keepalive_at {
                    out.push(ClientAction::Send(SessionPacket::Keepalive { session_id }));
                    self.state = ClientState::Established {
                        session_id,
                        stream_id,
                        group,
                        last_alive_at,
                        next_keepalive_at: now_us + self.cfg.keepalive_interval_us,
                    };
                }
            }
            ClientState::Done => {}
        }
        out
    }

    /// Feeds one received control-plane packet.
    pub fn on_packet(&mut self, now_us: u64, pkt: &SessionPacket) -> Vec<ClientAction> {
        let mut out = Vec::new();
        match (&self.state, pkt) {
            (ClientState::Discovering { .. }, SessionPacket::Offer { streams, .. }) => {
                // Pick the wanted channel and the first offered codec
                // this receiver can play (offer order is the
                // producer's preference order).
                let Some(info) = streams.iter().find(|s| s.name == self.cfg.channel) else {
                    return out;
                };
                let codec = info
                    .caps
                    .codecs
                    .iter()
                    .copied()
                    .find(|c| self.cfg.caps.supports_codec(*c))
                    .or_else(|| {
                        // A stream advertising no codec set accepts
                        // whatever its control packets will name; ask
                        // for the primary.
                        info.caps.codecs.is_empty().then_some(info.codec)
                    });
                let Some(codec) = codec else {
                    return out;
                };
                if !self.cfg.caps.supports_rate(info.config.sample_rate) {
                    return out;
                }
                self.setups_sent += 1;
                out.push(ClientAction::Send(self.setup(info.stream_id, codec)));
                self.state = ClientState::Requesting {
                    stream_id: info.stream_id,
                    codec,
                    last_setup_at: now_us,
                    attempts: 1,
                };
            }
            (
                ClientState::Requesting { stream_id, .. },
                SessionPacket::SetupAck {
                    session_id,
                    speaker,
                    stream_id: ack_stream,
                    group,
                    codec,
                    playout_delay_us,
                },
            ) if *speaker == self.cfg.speaker && ack_stream == stream_id => {
                self.sessions_established += 1;
                out.push(ClientAction::JoinData(*group));
                out.push(ClientAction::Established {
                    session_id: *session_id,
                    stream_id: *ack_stream,
                    group: *group,
                    codec: *codec,
                    playout_delay_us: *playout_delay_us,
                });
                self.state = ClientState::Established {
                    session_id: *session_id,
                    stream_id: *ack_stream,
                    group: *group,
                    last_alive_at: now_us,
                    next_keepalive_at: now_us + self.cfg.keepalive_interval_us,
                };
            }
            (ClientState::Requesting { .. }, SessionPacket::Refuse { speaker, .. })
                if *speaker == self.cfg.speaker =>
            {
                self.state = ClientState::Discovering {
                    next_discover_at: now_us + self.cfg.discover_interval_us,
                };
            }
            (
                ClientState::Established { session_id, .. },
                SessionPacket::Flush {
                    session_id: flushed,
                },
            ) if flushed == session_id => {
                out.push(ClientAction::Resync);
                self.note_stream_alive(now_us);
            }
            (
                ClientState::Established {
                    session_id, group, ..
                },
                SessionPacket::Teardown {
                    session_id: torn,
                    reason,
                },
            ) if torn == session_id => {
                out.push(ClientAction::LeaveData(*group));
                out.push(ClientAction::Closed {
                    session_id: *session_id,
                    reason: *reason,
                });
                self.state = if self.cfg.auto_rejoin {
                    ClientState::Discovering {
                        next_discover_at: now_us + self.cfg.discover_interval_us,
                    }
                } else {
                    ClientState::Done
                };
            }
            (
                ClientState::Established { session_id, .. },
                SessionPacket::Param {
                    session_id: target,
                    volume_milli,
                    fec_group,
                    ..
                },
            ) if target == session_id => {
                if *volume_milli != PARAM_VOLUME_UNCHANGED {
                    out.push(ClientAction::SetVolume(*volume_milli));
                }
                match *fec_group {
                    PARAM_FEC_UNCHANGED => {}
                    PARAM_FEC_OFF => out.push(ClientAction::SetFec { group: None }),
                    g => out.push(ClientAction::SetFec { group: Some(g) }),
                }
                self.note_stream_alive(now_us);
            }
            _ => {}
        }
        out
    }
}

/// Errors surfaced by the session layer (wrapped by `es_core::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The producer refused the handshake.
    Refused(RefuseReason),
    /// No channel by this name is on the air.
    NoSuchChannel(String),
    /// The handshake did not complete in time.
    Timeout,
}

impl core::fmt::Display for SessionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionError::Refused(r) => write!(f, "setup refused: {r}"),
            SessionError::NoSuchChannel(n) => write!(f, "no such channel: {n}"),
            SessionError::Timeout => f.write_str("handshake timed out"),
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{decode, Packet};
    use es_audio::AudioConfig;

    fn caps(codecs: &[u8]) -> Capabilities {
        Capabilities {
            codecs: codecs.to_vec(),
            sample_rates: vec![44_100],
            device_class: DeviceClass::Standard,
        }
    }

    fn stream(id: u16, name: &str, codecs: &[u8]) -> StreamInfo {
        StreamInfo {
            stream_id: id,
            group: 10 + id,
            name: name.into(),
            codec: codecs.first().copied().unwrap_or(0),
            config: AudioConfig::CD,
            flags: 0,
            caps: caps(codecs),
        }
    }

    fn roundtrip(p: SessionPacket) {
        let bytes = encode_session(&p);
        match decode(&bytes).unwrap() {
            Packet::Session(q) => assert_eq!(q, p),
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(SessionPacket::Discover {
            seq: 7,
            speaker: "lobby".into(),
            caps: caps(&[0, 3]),
        });
        roundtrip(SessionPacket::Offer {
            seq: 3,
            streams: vec![stream(1, "radio", &[0, 3]), stream(2, "pa", &[0])],
        });
        roundtrip(SessionPacket::Setup {
            speaker: "lobby".into(),
            stream_id: 1,
            codec: 3,
            playout_delay_us: 180_000,
            caps: caps(&[3]),
        });
        roundtrip(SessionPacket::SetupAck {
            session_id: 42,
            speaker: "lobby".into(),
            stream_id: 1,
            group: 11,
            codec: 3,
            playout_delay_us: 200_000,
        });
        roundtrip(SessionPacket::Refuse {
            speaker: "lobby".into(),
            stream_id: 9,
            reason: RefuseReason::UnknownStream,
        });
        roundtrip(SessionPacket::Keepalive { session_id: 42 });
        roundtrip(SessionPacket::Flush { session_id: 42 });
        roundtrip(SessionPacket::Teardown {
            session_id: 42,
            reason: TeardownReason::Expired,
        });
        roundtrip(SessionPacket::Param {
            session_id: 42,
            volume_milli: 750,
            metadata: "now playing: chapter 3".into(),
            fec_group: PARAM_FEC_UNCHANGED,
            nack: vec![],
        });
        roundtrip(SessionPacket::param_fec(42, Some(8)));
        roundtrip(SessionPacket::param_fec(42, None));
        roundtrip(SessionPacket::param_nack(
            42,
            vec![(100, 3), (200, 1), (u32::MAX - 4, 4)],
        ));
    }

    #[test]
    fn param_decode_rejects_bad_fec_and_nack_fields() {
        // Out-of-range FEC group.
        let mut bad = SessionPacket::param_fec(1, Some(8));
        if let SessionPacket::Param { fec_group, .. } = &mut bad {
            *fec_group = PARAM_FEC_MAX_GROUP + 1;
        }
        assert!(decode(&encode_session(&bad)).is_err(), "fec group > 32");
        // Zero-length NACK range.
        let bad = SessionPacket::param_nack(1, vec![(10, 0)]);
        assert!(decode(&encode_session(&bad)).is_err(), "empty nack range");
        // Oversized NACK lists are truncated at encode, never rejected
        // on the way back in.
        let long = SessionPacket::param_nack(1, (0..40u32).map(|i| (i, 1)).collect());
        match decode(&encode_session(&long)).unwrap() {
            Packet::Session(SessionPacket::Param { nack, .. }) => {
                assert_eq!(nack.len(), MAX_NACK_RANGES);
            }
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn empty_offer_and_empty_caps_roundtrip() {
        roundtrip(SessionPacket::Offer {
            seq: 0,
            streams: vec![],
        });
        roundtrip(SessionPacket::Discover {
            seq: 0,
            speaker: String::new(),
            caps: Capabilities::any(),
        });
    }

    #[test]
    fn session_corruption_is_detected_everywhere() {
        let bytes = encode_session(&SessionPacket::Setup {
            speaker: "es1".into(),
            stream_id: 2,
            codec: 3,
            playout_delay_us: 100_000,
            caps: caps(&[0, 2, 3]),
        });
        for i in 0..bytes.len() {
            let mut m = bytes.to_vec();
            m[i] ^= 0x40;
            assert!(decode(&m).is_err(), "undetected corruption at byte {i}");
        }
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "undetected cut at {cut}");
        }
    }

    #[test]
    fn negotiate_validates_both_sides() {
        let info = stream(1, "radio", &[0, 3]);
        let g = negotiate(&info, &caps(&[3]), 3, 150_000).unwrap();
        assert_eq!(g.group, 11);
        assert_eq!(g.codec, 3);
        assert_eq!(g.playout_delay_us, 150_000);
        // Delay clamped at both ends.
        assert_eq!(
            negotiate(&info, &caps(&[3]), 3, 1)
                .unwrap()
                .playout_delay_us,
            MIN_PLAYOUT_DELAY_US
        );
        assert_eq!(
            negotiate(&info, &caps(&[3]), 3, u64::MAX)
                .unwrap()
                .playout_delay_us,
            MAX_PLAYOUT_DELAY_US
        );
        // Codec outside the stream's set.
        assert_eq!(
            negotiate(&info, &caps(&[2]), 2, 0),
            Err(RefuseReason::CodecMismatch)
        );
        // Rate outside the receiver's set.
        let phone_only = Capabilities {
            codecs: vec![],
            sample_rates: vec![8_000],
            device_class: DeviceClass::Thin,
        };
        assert_eq!(
            negotiate(&info, &phone_only, 0, 0),
            Err(RefuseReason::RateMismatch)
        );
    }

    #[test]
    fn table_expires_silent_sessions_in_order() {
        let mut t = SessionTable::new();
        for id in [3u32, 1, 2] {
            t.open(SessionEntry {
                session_id: id,
                speaker: format!("es{id}"),
                stream_id: 1,
                codec: 0,
                playout_delay_us: 200_000,
                opened_at_us: 0,
                last_seen_us: 0,
            });
        }
        assert_eq!(t.active(), 3);
        assert!(t.touch(2, 5_000_000));
        let dead = t.expire(6_000_000, 2_000_000);
        // 1 and 3 silent since t=0; 2 refreshed at t=5s survives.
        assert_eq!(
            dead.iter().map(|e| e.session_id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(t.active(), 1);
        assert_eq!(t.expired, 2);
        assert!(t.get(2).is_some());
        assert!(!t.touch(1, 6_000_000), "expired id is gone");
        assert!(t.close(2).is_some());
        assert_eq!(t.closed, 1);
    }

    /// Regression (PR 7 satellite): a KEEPALIVE landing in the same
    /// epoch as the expiry sweep must never tear down a live session,
    /// in either processing order.
    #[test]
    fn same_epoch_keepalive_never_expires_session() {
        let entry = |id: u32| SessionEntry {
            session_id: id,
            speaker: format!("es{id}"),
            stream_id: 1,
            codec: 0,
            playout_delay_us: 200_000,
            opened_at_us: 0,
            last_seen_us: 0,
        };
        let timeout = 2_000_000;
        let epoch = 2_000_000; // Exactly at the timeout boundary.

        // Order A: touch first, then sweep at the same instant.
        let mut t = SessionTable::new();
        t.open(entry(1));
        assert!(t.touch(1, epoch));
        assert!(t.expire(epoch, timeout).is_empty());

        // Order B: sweep first, then touch at the same instant. The
        // boundary is exclusive (`elapsed > timeout`), so a session
        // exactly `timeout` old is still alive when its keepalive is
        // racing the sweep.
        let mut t = SessionTable::new();
        t.open(entry(1));
        assert!(t.expire(epoch, timeout).is_empty(), "boundary is alive");
        assert!(t.touch(1, epoch));
        assert!(t.expire(epoch + timeout, timeout).is_empty());

        // A late-arriving keepalive with an older stamp never rolls
        // liveness backwards.
        assert!(t.touch(1, 1));
        assert_eq!(t.get(1).unwrap().last_seen_us, epoch);
        assert!(t.expire(epoch + timeout, timeout).is_empty());
    }

    /// Drives a client and a hand-rolled producer loop to completion.
    #[test]
    fn client_happy_path() {
        let mut c = SessionClient::new(SessionClientConfig::new("lobby", "radio"));
        assert_eq!(c.phase(), ClientPhase::Discovering);
        // First poll emits a DISCOVER.
        let a = c.poll(0);
        assert!(matches!(
            a.as_slice(),
            [ClientAction::Send(SessionPacket::Discover { .. })]
        ));
        // Producer answers with an OFFER; client picks the first codec
        // it supports and SETUPs.
        let offer = SessionPacket::Offer {
            seq: 0,
            streams: vec![stream(1, "radio", &[3, 0])],
        };
        let a = c.on_packet(10_000, &offer);
        let Some(ClientAction::Send(SessionPacket::Setup {
            stream_id, codec, ..
        })) = a.first()
        else {
            panic!("expected setup, got {a:?}");
        };
        assert_eq!((*stream_id, *codec), (1, 3));
        assert_eq!(c.phase(), ClientPhase::Requesting);
        // ACK for someone else is ignored.
        let foreign = SessionPacket::SetupAck {
            session_id: 9,
            speaker: "cafeteria".into(),
            stream_id: 1,
            group: 11,
            codec: 3,
            playout_delay_us: 200_000,
        };
        assert!(c.on_packet(20_000, &foreign).is_empty());
        // Our ACK establishes and joins the data group.
        let ack = SessionPacket::SetupAck {
            session_id: 7,
            speaker: "lobby".into(),
            stream_id: 1,
            group: 11,
            codec: 3,
            playout_delay_us: 200_000,
        };
        let a = c.on_packet(30_000, &ack);
        assert!(matches!(a[0], ClientAction::JoinData(11)));
        assert!(matches!(
            a[1],
            ClientAction::Established { session_id: 7, .. }
        ));
        assert_eq!(c.session_id(), Some(7));
        // Keepalives flow on schedule.
        let a = c.poll(30_000 + c.config().keepalive_interval_us);
        assert!(matches!(
            a.as_slice(),
            [ClientAction::Send(SessionPacket::Keepalive {
                session_id: 7
            })]
        ));
        // Flush resyncs; param sets volume; teardown re-discovers.
        assert_eq!(
            c.on_packet(40_000, &SessionPacket::Flush { session_id: 7 }),
            vec![ClientAction::Resync]
        );
        assert_eq!(
            c.on_packet(41_000, &SessionPacket::param_volume(7, 500, String::new())),
            vec![ClientAction::SetVolume(500)]
        );
        // An FEC-only PARAM must not touch the volume, and vice versa.
        assert_eq!(
            c.on_packet(42_000, &SessionPacket::param_fec(7, Some(4))),
            vec![ClientAction::SetFec { group: Some(4) }]
        );
        assert_eq!(
            c.on_packet(43_000, &SessionPacket::param_fec(7, None)),
            vec![ClientAction::SetFec { group: None }]
        );
        let a = c.on_packet(
            50_000,
            &SessionPacket::Teardown {
                session_id: 7,
                reason: TeardownReason::StreamEnded,
            },
        );
        assert!(matches!(a[0], ClientAction::LeaveData(11)));
        assert!(matches!(a[1], ClientAction::Closed { session_id: 7, .. }));
        assert_eq!(c.phase(), ClientPhase::Discovering, "auto_rejoin");
    }

    #[test]
    fn client_retries_setup_then_gives_up_to_discovery() {
        let mut cfg = SessionClientConfig::new("es", "radio");
        cfg.max_setup_attempts = 2;
        let mut c = SessionClient::new(cfg);
        c.poll(0);
        let offer = SessionPacket::Offer {
            seq: 0,
            streams: vec![stream(1, "radio", &[0])],
        };
        c.on_packet(0, &offer); // attempt 1
        let retry = c.config().setup_retry_us;
        let a = c.poll(retry);
        assert!(
            matches!(
                a.as_slice(),
                [ClientAction::Send(SessionPacket::Setup { .. })]
            ),
            "{a:?}"
        );
        // Attempts exhausted: back to discovery.
        let a = c.poll(2 * retry);
        assert_eq!(a, vec![ClientAction::GaveUp]);
        assert_eq!(c.phase(), ClientPhase::Discovering);
        assert_eq!(c.setups_sent, 2);
    }

    #[test]
    fn client_timeout_restarts_discovery() {
        let mut c = SessionClient::new(SessionClientConfig::new("es", "radio"));
        c.poll(0);
        c.on_packet(
            0,
            &SessionPacket::Offer {
                seq: 0,
                streams: vec![stream(1, "radio", &[0])],
            },
        );
        let a = c.on_packet(
            0,
            &SessionPacket::SetupAck {
                session_id: 1,
                speaker: "es".into(),
                stream_id: 1,
                group: 11,
                codec: 0,
                playout_delay_us: 200_000,
            },
        );
        assert!(matches!(a[0], ClientAction::JoinData(11)));
        // Stream traffic defers the timeout…
        c.note_stream_alive(2_000_000);
        assert!(c
            .poll(3_000_000)
            .iter()
            .all(|a| !matches!(a, ClientAction::Lost { .. })));
        // …but silence past the timeout loses the session.
        let a = c.poll(2_000_000 + c.config().session_timeout_us + 1);
        assert!(matches!(a[0], ClientAction::Lost { session_id: 1 }));
        assert!(matches!(a[1], ClientAction::LeaveData(11)));
        assert_eq!(c.phase(), ClientPhase::Discovering);
        assert_eq!(c.sessions_lost, 1);
        // Re-discovery is immediate.
        let a = c.poll(2_000_000 + c.config().session_timeout_us + 2);
        assert!(matches!(
            a.as_slice(),
            [ClientAction::Send(SessionPacket::Discover { .. })]
        ));
    }

    #[test]
    fn incompatible_offer_is_ignored() {
        let mut cfg = SessionClientConfig::new("es", "radio");
        cfg.caps = caps(&[2]); // ADPCM only
        let mut c = SessionClient::new(cfg);
        c.poll(0);
        // Stream offers PCM and OVL only: no overlap, keep discovering.
        let a = c.on_packet(
            0,
            &SessionPacket::Offer {
                seq: 0,
                streams: vec![stream(1, "radio", &[0, 3])],
            },
        );
        assert!(a.is_empty());
        assert_eq!(c.phase(), ClientPhase::Discovering);
    }
}
