//! Single-loss forward error correction (XOR parity).
//!
//! An extension beyond the paper: §2.3's friendly-LAN assumption made
//! loss handling unnecessary in 2005, but the same system on Wi-Fi (the
//! "wireless links" §2.2 worries about) drops packets routinely. One
//! parity packet per group of N data packets recovers any single loss
//! in the group without retransmission — keeping the producer stateless
//! and the speakers receive-only, which is the property the paper's
//! design refuses to give up.
//!
//! The parity packet XORs the payloads (padded to the longest), the
//! play deadlines, the lengths and the codec ids, so a missing packet
//! is reconstructed *fully*, metadata included, by XOR-ing the parity
//! with the group's surviving packets.

use bytes::Bytes;

use crate::packet::DataPacket;

/// A parity packet covering `count` consecutive data sequence numbers
/// starting at `base_seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityPacket {
    /// Stream id.
    pub stream_id: u16,
    /// First covered data sequence number.
    pub base_seq: u32,
    /// Number of covered packets.
    pub count: u8,
    /// XOR of the covered packets' play deadlines.
    pub xor_play_at_us: u64,
    /// XOR of the covered packets' payload lengths.
    pub xor_len: u32,
    /// XOR of the covered packets' codec ids.
    pub xor_codec: u8,
    /// XOR of the covered payloads, each padded to the longest.
    pub payload: Bytes,
}

fn xor_into(acc: &mut Vec<u8>, data: &[u8]) {
    if data.len() > acc.len() {
        acc.resize(data.len(), 0);
    }
    for (a, &b) in acc.iter_mut().zip(data) {
        *a ^= b;
    }
}

/// Producer side: absorbs data packets and emits a parity packet per
/// full group.
#[derive(Debug)]
pub struct ParityAccumulator {
    group: u8,
    base_seq: Option<u32>,
    count: u8,
    xor_play: u64,
    xor_len: u32,
    xor_codec: u8,
    payload: Vec<u8>,
}

impl ParityAccumulator {
    /// Creates an accumulator emitting one parity packet per `group`
    /// data packets.
    ///
    /// # Panics
    ///
    /// Panics if `group` is less than 2.
    pub fn new(group: u8) -> Self {
        assert!(group >= 2, "a parity group needs at least two packets");
        ParityAccumulator {
            group,
            base_seq: None,
            count: 0,
            xor_play: 0,
            xor_len: 0,
            xor_codec: 0,
            payload: Vec::new(),
        }
    }

    /// Absorbs a just-sent data packet; returns the parity packet when
    /// the group completes.
    pub fn absorb(&mut self, pkt: &DataPacket) -> Option<ParityPacket> {
        if self.base_seq.is_none() {
            self.base_seq = Some(pkt.seq);
        }
        self.count += 1;
        self.xor_play ^= pkt.play_at_us;
        self.xor_len ^= pkt.payload.len() as u32;
        self.xor_codec ^= pkt.codec;
        xor_into(&mut self.payload, &pkt.payload);
        if self.count < self.group {
            return None;
        }
        let parity = ParityPacket {
            stream_id: pkt.stream_id,
            base_seq: self.base_seq.expect("set on first absorb"),
            count: self.count,
            xor_play_at_us: self.xor_play,
            xor_len: self.xor_len,
            xor_codec: self.xor_codec,
            payload: Bytes::from(std::mem::take(&mut self.payload)),
        };
        self.base_seq = None;
        self.count = 0;
        self.xor_play = 0;
        self.xor_len = 0;
        self.xor_codec = 0;
        Some(parity)
    }
}

struct GroupState {
    base_seq: u32,
    seen: u32, // Bitmap of received members.
    xor_play: u64,
    xor_len: u32,
    xor_codec: u8,
    payload: Vec<u8>,
    parity: Option<ParityPacket>,
    stream_id: u16,
}

impl GroupState {
    fn new(base_seq: u32, stream_id: u16) -> Self {
        GroupState {
            base_seq,
            seen: 0,
            xor_play: 0,
            xor_len: 0,
            xor_codec: 0,
            payload: Vec::new(),
            parity: None,
            stream_id,
        }
    }

    fn seen_count(&self) -> u32 {
        self.seen.count_ones()
    }

    fn try_recover(&mut self) -> Option<DataPacket> {
        let parity = self.parity.as_ref()?;
        if self.seen_count() != parity.count as u32 - 1 {
            return None;
        }
        // The single missing member index.
        let missing = (0..parity.count as u32).find(|i| self.seen & (1 << i) == 0)?;
        let mut payload = parity.payload.to_vec();
        xor_into(&mut payload, &self.payload);
        let len = (self.xor_len ^ parity.xor_len) as usize;
        if len > payload.len() {
            return None; // Corrupt accounting; refuse.
        }
        payload.truncate(len);
        Some(DataPacket {
            stream_id: self.stream_id,
            seq: self.base_seq + missing,
            play_at_us: self.xor_play ^ parity.xor_play_at_us,
            codec: self.xor_codec ^ parity.xor_codec,
            payload: Bytes::from(payload),
        })
    }
}

/// Speaker side: tracks recent groups and reconstructs single losses.
pub struct FecRecoverer {
    group: u8,
    groups: Vec<GroupState>,
    recovered: u64,
    unrecoverable: u64,
}

impl FecRecoverer {
    /// Creates a recoverer for groups of `group` packets.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not in `2..=32`.
    pub fn new(group: u8) -> Self {
        assert!((2..=32).contains(&group), "group must be 2..=32");
        FecRecoverer {
            group,
            groups: Vec::new(),
            recovered: 0,
            unrecoverable: 0,
        }
    }

    /// The parity-group size this recoverer was built for. The healing
    /// plane compares it against arriving parity packets to notice a
    /// mid-stream FEC level change and rebuild the recoverer.
    pub fn group(&self) -> u8 {
        self.group
    }

    /// Packets reconstructed so far.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Groups abandoned with more than one loss.
    pub fn unrecoverable(&self) -> u64 {
        self.unrecoverable
    }

    fn group_base(&self, seq: u32) -> u32 {
        seq - seq % self.group as u32
    }

    fn state_for(&mut self, base: u32, stream_id: u16) -> &mut GroupState {
        if let Some(i) = self.groups.iter().position(|g| g.base_seq == base) {
            return &mut self.groups[i];
        }
        // Bound memory: retire the oldest groups.
        while self.groups.len() >= 4 {
            let g = self.groups.remove(0);
            if let Some(p) = &g.parity {
                if g.seen_count() < p.count as u32 - 1 {
                    self.unrecoverable += 1;
                }
            }
        }
        self.groups.push(GroupState::new(base, stream_id));
        self.groups.last_mut().expect("just pushed")
    }

    /// Notes a received data packet; may complete a pending recovery.
    pub fn on_data(&mut self, pkt: &DataPacket) -> Option<DataPacket> {
        let base = self.group_base(pkt.seq);
        let idx = pkt.seq - base;
        let state = self.state_for(base, pkt.stream_id);
        if state.seen & (1 << idx) != 0 {
            return None; // Duplicate.
        }
        state.seen |= 1 << idx;
        state.xor_play ^= pkt.play_at_us;
        state.xor_len ^= pkt.payload.len() as u32;
        state.xor_codec ^= pkt.codec;
        xor_into(&mut state.payload, &pkt.payload);
        let rec = state.try_recover();
        if rec.is_some() {
            self.recovered += 1;
            self.groups.retain(|g| g.base_seq != base);
        }
        rec
    }

    /// Notes a parity packet; may complete a pending recovery.
    pub fn on_parity(&mut self, pkt: &ParityPacket) -> Option<DataPacket> {
        let base = pkt.base_seq;
        let state = self.state_for(base, pkt.stream_id);
        state.parity = Some(pkt.clone());
        let rec = state.try_recover();
        if rec.is_some() {
            self.recovered += 1;
            self.groups.retain(|g| g.base_seq != base);
        } else if state.seen_count() == pkt.count as u32 {
            // Nothing was lost; the group is done.
            self.groups.retain(|g| g.base_seq != base);
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u32, body: &[u8]) -> DataPacket {
        DataPacket {
            stream_id: 1,
            seq,
            play_at_us: 1_000 * seq as u64 + 7,
            codec: 3,
            payload: Bytes::copy_from_slice(body),
        }
    }

    #[test]
    fn accumulator_emits_once_per_group() {
        let mut acc = ParityAccumulator::new(4);
        assert!(acc.absorb(&pkt(0, b"aaaa")).is_none());
        assert!(acc.absorb(&pkt(1, b"bb")).is_none());
        assert!(acc.absorb(&pkt(2, b"cccccc")).is_none());
        let p = acc.absorb(&pkt(3, b"d")).expect("group complete");
        assert_eq!(p.base_seq, 0);
        assert_eq!(p.count, 4);
        assert_eq!(p.payload.len(), 6, "padded to the longest member");
        // Next group starts clean.
        assert!(acc.absorb(&pkt(4, b"x")).is_none());
    }

    #[test]
    fn recovers_each_possible_single_loss() {
        let bodies: [&[u8]; 4] = [b"alpha", b"bravo-long", b"c", b"delta9"];
        for missing in 0..4u32 {
            let mut acc = ParityAccumulator::new(4);
            let packets: Vec<DataPacket> = (0..4u32).map(|i| pkt(i, bodies[i as usize])).collect();
            let mut parity = None;
            for p in &packets {
                parity = acc.absorb(p).or(parity);
            }
            let parity = parity.expect("parity emitted");
            let mut rec = FecRecoverer::new(4);
            let mut recovered = None;
            for p in packets.iter().filter(|p| p.seq != missing) {
                recovered = rec.on_data(p).or(recovered);
            }
            recovered = rec.on_parity(&parity).or(recovered);
            let got = recovered.expect("single loss recovered");
            assert_eq!(got, packets[missing as usize], "missing = {missing}");
            assert_eq!(rec.recovered(), 1);
        }
    }

    #[test]
    fn recovery_order_independent() {
        // Parity may arrive before the last data packet.
        let mut acc = ParityAccumulator::new(3);
        let packets: Vec<DataPacket> = (0..3u32).map(|i| pkt(i, b"xyzw")).collect();
        let mut parity = None;
        for p in &packets {
            parity = acc.absorb(p).or(parity);
        }
        let parity = parity.unwrap();
        let mut rec = FecRecoverer::new(3);
        assert!(rec.on_parity(&parity).is_none());
        assert!(rec.on_data(&packets[0]).is_none());
        let got = rec.on_data(&packets[2]).expect("completes on second data");
        assert_eq!(got, packets[1]);
    }

    #[test]
    fn double_loss_is_not_recovered() {
        let mut acc = ParityAccumulator::new(4);
        let packets: Vec<DataPacket> = (0..4u32).map(|i| pkt(i, b"qq")).collect();
        let mut parity = None;
        for p in &packets {
            parity = acc.absorb(p).or(parity);
        }
        let mut rec = FecRecoverer::new(4);
        assert!(rec.on_data(&packets[0]).is_none());
        assert!(rec.on_data(&packets[3]).is_none());
        assert!(rec.on_parity(&parity.unwrap()).is_none());
        assert_eq!(rec.recovered(), 0);
    }

    #[test]
    fn no_loss_no_recovery_and_memory_bounded() {
        let mut rec = FecRecoverer::new(4);
        let mut acc = ParityAccumulator::new(4);
        for g in 0..20u32 {
            let packets: Vec<DataPacket> = (0..4u32).map(|i| pkt(g * 4 + i, b"data")).collect();
            let mut parity = None;
            for p in &packets {
                parity = acc.absorb(p).or(parity);
                assert!(rec.on_data(p).is_none());
            }
            assert!(rec.on_parity(&parity.unwrap()).is_none());
        }
        assert_eq!(rec.recovered(), 0);
        assert!(rec.groups.len() <= 4, "groups leak: {}", rec.groups.len());
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut rec = FecRecoverer::new(4);
        let p = pkt(0, b"dup");
        assert!(rec.on_data(&p).is_none());
        assert!(rec.on_data(&p).is_none());
        // The XOR state must not have been corrupted by the duplicate:
        // complete the group and verify recovery still works.
        let mut acc = ParityAccumulator::new(4);
        let packets: Vec<DataPacket> = (0..4u32).map(|i| pkt(i, b"dup!")).collect();
        let mut parity = None;
        for q in &packets {
            parity = acc.absorb(q).or(parity);
        }
        let _ = rec.on_data(&packets[1]);
        let _ = rec.on_data(&packets[2]);
        let got = rec.on_parity(&parity.unwrap()).expect("recover seq 3");
        assert_eq!(got.seq, 3);
    }

    proptest::proptest! {
        #[test]
        fn prop_any_single_loss_recovers(
            bodies in proptest::collection::vec(
                proptest::collection::vec(proptest::num::u8::ANY, 0..200), 2..9),
            missing_idx in 0usize..8,
        ) {
            let n = bodies.len() as u8;
            let missing = (missing_idx % bodies.len()) as u32;
            let mut acc = ParityAccumulator::new(n);
            let packets: Vec<DataPacket> = bodies
                .iter()
                .enumerate()
                .map(|(i, b)| pkt(i as u32, b))
                .collect();
            let mut parity = None;
            for p in &packets {
                parity = acc.absorb(p).or(parity);
            }
            let parity = parity.expect("parity");
            let mut rec = FecRecoverer::new(n);
            let mut got = None;
            for p in packets.iter().filter(|p| p.seq != missing) {
                got = rec.on_data(p).or(got);
            }
            got = rec.on_parity(&parity).or(got);
            proptest::prop_assert_eq!(got.expect("recovered"), packets[missing as usize].clone());
        }
    }
}
