//! CRC-32 (IEEE 802.3) for packet integrity.
//!
//! §5.1: "we want to prevent malicious hosts from injecting packets
//! into an audio stream. We do this by allowing the ES to perform
//! integrity checks on the incoming packets." The CRC is the
//! *accidental-corruption* layer of that defence (the cryptographic
//! layer lives in [`crate::auth`]); it also catches torn packets from
//! the fragmentation path.

/// Computes the IEEE CRC-32 of `data` (reflected, init all-ones,
/// final xor all-ones — the Ethernet FCS polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streams additional bytes into a running CRC state (pass
/// `0xFFFF_FFFF` to start; xor the result with `0xFFFF_FFFF` to
/// finish).
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the ethernet speaker system";
        let one = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, one);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"audio block payload".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), good, "missed flip at {byte}.{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
