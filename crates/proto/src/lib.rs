//! # es-proto — the Ethernet Speaker wire protocol
//!
//! Everything that crosses the LAN, plus its integrity and
//! authentication layers:
//!
//! - [`packet`]: control / data / announce packets (§2.3, §3.2, §4.3),
//!   CRC-32 framed, stateless-producer semantics.
//! - [`crc`]: IEEE CRC-32.
//! - [`sha256`]: SHA-256 + HMAC-SHA-256 (FIPS/RFC test-vector
//!   validated), the primitive under the auth scheme.
//! - [`auth`]: TESLA-style delayed-key-disclosure stream
//!   authentication with a cheap, DoS-bounded verification path (§5.1).
//! - [`fec`]: XOR-parity single-loss recovery (extension for lossy
//!   links, keeping the producer stateless and speakers receive-only).
//! - [`monitor`]: RFC 3550-style reception quality (jitter, loss,
//!   reorder) — the numbers §5.3's management MIB would export.
//! - [`session`]: the negotiated control plane — discovery, capability
//!   negotiation, per-receiver sessions with keepalive/flush/teardown —
//!   as pure, deterministic state machines over the same framing.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod auth;
pub mod crc;
pub mod fec;
pub mod monitor;
pub mod packet;
pub mod session;
pub mod sha256;

pub use auth::{AuthTrailer, StreamSigner, StreamVerifier, TRAILER_LEN};
pub use fec::{FecRecoverer, ParityAccumulator, ParityPacket};
pub use monitor::{QualityReport, StreamMonitor};
pub use packet::{
    decode, encode_announce, encode_announce_into, encode_control, encode_control_into,
    encode_data, encode_data_into, encode_parity, encode_parity_into, AnnouncePacket,
    ControlPacket, DataPacket, Packet, StreamInfo, WireError, FLAG_AUTHENTICATED, FLAG_PRIORITY,
    RECOMMENDED_MAX_PAYLOAD,
};
pub use session::{
    encode_session, encode_session_into, negotiate, Capabilities, ClientAction, ClientPhase,
    DeviceClass, Grant, RefuseReason, SessionClient, SessionClientConfig, SessionEntry,
    SessionError, SessionPacket, SessionTable, TeardownReason, MAX_NACK_RANGES,
    PARAM_FEC_MAX_GROUP, PARAM_FEC_OFF, PARAM_FEC_UNCHANGED, PARAM_VOLUME_UNCHANGED,
};
