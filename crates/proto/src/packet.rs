//! The Ethernet Speaker wire format.
//!
//! §2.3's protocol in full:
//!
//! - **Control packets** are multicast "at regular intervals with the
//!   configuration of the audio driver" plus "a timestamp that serves
//!   as a wall clock for the ESs" (§3.2). A speaker must hold playback
//!   until it has one.
//! - **Data packets** carry the audio payload and "a timestamp within
//!   each audio data packet that instructs the ES when it should play
//!   the data", relative to the producer wall clock.
//! - **Announce packets** implement the MFTP-inspired out-of-band
//!   catalog the paper plans in §4.3: a well-known group lists the
//!   active channels so speakers can browse without tuning in.
//!
//! The producer keeps no per-client state; everything a late joiner
//! needs is in the periodic control packet. All integers are
//! little-endian; every packet ends with a CRC-32 of everything before
//! it.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use es_audio::{AudioConfig, Encoding};

use crate::crc::crc32;
use crate::fec::ParityPacket;
use crate::session::{Capabilities, SessionPacket};

/// Wire magic ("ES").
pub const MAGIC: u16 = 0xE5AB;

/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Flag: stream is a priority announcement that overrides music
/// channels (§5.3's crew-announcement use case).
pub const FLAG_PRIORITY: u16 = 0x0001;

/// Flag: packets of this stream carry an authentication trailer
/// (§5.1).
pub const FLAG_AUTHENTICATED: u16 = 0x0002;

/// Largest data-packet payload that still fits one Ethernet frame
/// (1472-byte UDP MTU minus the data-packet envelope).
pub const RECOMMENDED_MAX_PAYLOAD: usize = 1_472 - DATA_ENVELOPE;

/// Bytes of envelope around a data payload (header 10 + timestamp 8 +
/// codec 1 + length 4 + crc 4).
pub const DATA_ENVELOPE: usize = 10 + 8 + 1 + 4 + 4;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than any valid packet.
    TooShort,
    /// Wrong magic number.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// CRC mismatch (corruption or truncation).
    BadCrc,
    /// Unknown packet type.
    BadType(u8),
    /// A field failed validation.
    BadField(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::TooShort => f.write_str("packet too short"),
            WireError::BadMagic => f.write_str("bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadCrc => f.write_str("crc mismatch"),
            WireError::BadType(t) => write!(f, "unknown packet type {t}"),
            WireError::BadField(w) => write!(f, "invalid field: {w}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The periodic control packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlPacket {
    /// Stream (channel) identifier.
    pub stream_id: u16,
    /// Monotone control sequence number.
    pub seq: u32,
    /// Producer wall clock in microseconds at send time (§3.2).
    pub producer_time_us: u64,
    /// The `audio(4)` configuration forwarded from the VAD.
    pub config: AudioConfig,
    /// Codec id data packets of this stream use.
    pub codec: u8,
    /// Codec quality index.
    pub quality: u8,
    /// How often control packets are sent, so speakers can detect a
    /// dead stream.
    pub control_interval_ms: u16,
    /// Stream flags ([`FLAG_PRIORITY`], [`FLAG_AUTHENTICATED`]).
    pub flags: u16,
}

/// An audio data packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Stream (channel) identifier.
    pub stream_id: u16,
    /// Monotone data sequence number.
    pub seq: u32,
    /// When to play this payload, on the producer timeline (§3.2).
    pub play_at_us: u64,
    /// Codec id of the payload.
    pub codec: u8,
    /// Encoded audio payload.
    pub payload: Bytes,
}

/// One catalog entry in an announce packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// Stream identifier.
    pub stream_id: u16,
    /// Multicast group carrying the stream.
    pub group: u16,
    /// Human-readable channel name.
    pub name: String,
    /// Codec id in use.
    pub codec: u8,
    /// Stream configuration.
    pub config: AudioConfig,
    /// Stream flags.
    pub flags: u16,
    /// Capability advertisement: the codec set this stream may put on
    /// the wire, its rate, and the device class it targets. Session
    /// negotiation validates SETUPs against this.
    pub caps: Capabilities,
}

/// The out-of-band catalog packet (§4.3's MFTP-style announcement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnouncePacket {
    /// Monotone announce sequence number.
    pub seq: u32,
    /// Producer wall clock at send time.
    pub producer_time_us: u64,
    /// Channels currently on the air.
    pub streams: Vec<StreamInfo>,
}

/// Any parsed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Periodic stream control.
    Control(ControlPacket),
    /// Audio data.
    Data(DataPacket),
    /// Channel catalog.
    Announce(AnnouncePacket),
    /// FEC parity (extension; see [`crate::fec`]).
    Parity(ParityPacket),
    /// Session control plane (extension; see [`crate::session`]).
    Session(SessionPacket),
}

impl Packet {
    /// The packet's stream id (announce packets use stream id 0).
    pub fn stream_id(&self) -> u16 {
        match self {
            Packet::Control(c) => c.stream_id,
            Packet::Data(d) => d.stream_id,
            Packet::Announce(_) => 0,
            Packet::Parity(p) => p.stream_id,
            Packet::Session(s) => s.stream_id(),
        }
    }
}

const TYPE_CONTROL: u8 = 1;
const TYPE_DATA: u8 = 2;
const TYPE_ANNOUNCE: u8 = 3;
const TYPE_PARITY: u8 = 4;
const TYPE_SESSION: u8 = 5;

fn put_header(buf: &mut BytesMut, ptype: u8, stream_id: u16, seq: u32) {
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(ptype);
    buf.put_u16_le(stream_id);
    buf.put_u32_le(seq);
}

fn put_config(buf: &mut BytesMut, cfg: &AudioConfig) {
    buf.put_u32_le(cfg.sample_rate);
    buf.put_u8(cfg.channels);
    buf.put_u8(cfg.encoding.to_wire());
}

fn get_config(buf: &mut impl Buf) -> Result<AudioConfig, WireError> {
    if buf.remaining() < 6 {
        return Err(WireError::TooShort);
    }
    let sample_rate = buf.get_u32_le();
    let channels = buf.get_u8();
    let encoding = Encoding::from_wire(buf.get_u8()).ok_or(WireError::BadField("encoding"))?;
    let cfg = AudioConfig {
        sample_rate,
        channels,
        encoding,
    };
    cfg.validate().map_err(|_| WireError::BadField("config"))?;
    Ok(cfg)
}

/// Appends the CRC of everything written since `start`. The `_into`
/// encoders compute the checksum over their own region only, so a
/// caller may serialize into a buffer that already holds other bytes.
fn finish_into(buf: &mut BytesMut, start: usize) {
    // es-allow(panic-path): start is a caller-recorded len() of this very buffer, which only grows afterwards
    let crc = crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

/// Writes the common header for a session packet (the session module
/// shares this framing rather than inventing its own).
pub(crate) fn put_session_header(buf: &mut BytesMut, stream_id: u16, seq: u32) {
    put_header(buf, TYPE_SESSION, stream_id, seq);
}

/// Appends the region CRC for a session packet.
pub(crate) fn finish_session(buf: &mut BytesMut, start: usize) {
    finish_into(buf, start);
}

/// Writes one catalog entry (shared by announce and session OFFER).
pub(crate) fn put_stream_info(buf: &mut BytesMut, s: &StreamInfo) {
    buf.put_u16_le(s.stream_id);
    buf.put_u16_le(s.group);
    let name = s.name.as_bytes();
    let len = name.len().min(255);
    buf.put_u8(len as u8);
    buf.put_slice(&name[..len]);
    buf.put_u8(s.codec);
    put_config(buf, &s.config);
    buf.put_u16_le(s.flags);
    crate::session::put_caps(buf, &s.caps);
}

/// Reads one catalog entry (shared by announce and session OFFER).
pub(crate) fn get_stream_info(buf: &mut &[u8]) -> Result<StreamInfo, WireError> {
    if buf.remaining() < 5 {
        return Err(WireError::TooShort);
    }
    let stream_id = buf.get_u16_le();
    let group = buf.get_u16_le();
    let name_len = buf.get_u8() as usize;
    if buf.remaining() < name_len {
        return Err(WireError::TooShort);
    }
    let name = String::from_utf8(buf[..name_len].to_vec())
        .map_err(|_| WireError::BadField("stream name"))?;
    buf.advance(name_len);
    if buf.remaining() < 1 {
        return Err(WireError::TooShort);
    }
    let codec = buf.get_u8();
    let config = get_config(buf)?;
    if buf.remaining() < 2 {
        return Err(WireError::TooShort);
    }
    let flags = buf.get_u16_le();
    let caps = crate::session::get_caps(buf)?;
    Ok(StreamInfo {
        stream_id,
        group,
        name,
        codec,
        config,
        flags,
        caps,
    })
}

/// Serializes a control packet into `buf`, appending to any existing
/// contents. The allocation-free sibling of [`encode_control`]; hot
/// paths hand in a reusable scratch buffer.
pub fn encode_control_into(p: &ControlPacket, buf: &mut BytesMut) {
    let start = buf.len();
    buf.reserve(40);
    put_header(buf, TYPE_CONTROL, p.stream_id, p.seq);
    buf.put_u64_le(p.producer_time_us);
    put_config(buf, &p.config);
    buf.put_u8(p.codec);
    buf.put_u8(p.quality);
    buf.put_u16_le(p.control_interval_ms);
    buf.put_u16_le(p.flags);
    finish_into(buf, start);
}

/// Serializes a control packet.
pub fn encode_control(p: &ControlPacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(40);
    encode_control_into(p, &mut buf);
    buf.freeze()
}

/// Serializes a data packet into `buf`, appending to any existing
/// contents. See [`encode_control_into`].
pub fn encode_data_into(p: &DataPacket, buf: &mut BytesMut) {
    let start = buf.len();
    buf.reserve(DATA_ENVELOPE + p.payload.len());
    put_header(buf, TYPE_DATA, p.stream_id, p.seq);
    buf.put_u64_le(p.play_at_us);
    buf.put_u8(p.codec);
    buf.put_u32_le(p.payload.len() as u32);
    buf.put_slice(&p.payload);
    finish_into(buf, start);
}

/// Serializes a data packet.
pub fn encode_data(p: &DataPacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(DATA_ENVELOPE + p.payload.len());
    encode_data_into(p, &mut buf);
    buf.freeze()
}

/// Serializes an announce packet into `buf`, appending to any existing
/// contents. See [`encode_control_into`].
pub fn encode_announce_into(p: &AnnouncePacket, buf: &mut BytesMut) {
    let start = buf.len();
    buf.reserve(64 + p.streams.len() * 32);
    put_header(buf, TYPE_ANNOUNCE, 0, p.seq);
    buf.put_u64_le(p.producer_time_us);
    buf.put_u16_le(p.streams.len() as u16);
    for s in &p.streams {
        put_stream_info(buf, s);
    }
    finish_into(buf, start);
}

/// Serializes an announce packet.
pub fn encode_announce(p: &AnnouncePacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + p.streams.len() * 32);
    encode_announce_into(p, &mut buf);
    buf.freeze()
}

/// Serializes a parity packet into `buf`, appending to any existing
/// contents. See [`encode_control_into`].
pub fn encode_parity_into(p: &ParityPacket, buf: &mut BytesMut) {
    let start = buf.len();
    buf.reserve(32 + p.payload.len());
    put_header(buf, TYPE_PARITY, p.stream_id, p.base_seq);
    buf.put_u8(p.count);
    buf.put_u64_le(p.xor_play_at_us);
    buf.put_u32_le(p.xor_len);
    buf.put_u8(p.xor_codec);
    buf.put_u32_le(p.payload.len() as u32);
    buf.put_slice(&p.payload);
    finish_into(buf, start);
}

/// Serializes a parity packet.
pub fn encode_parity(p: &ParityPacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + p.payload.len());
    encode_parity_into(p, &mut buf);
    buf.freeze()
}

/// Parses any packet, verifying magic, version and CRC.
pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
    if bytes.len() < 14 {
        return Err(WireError::TooShort);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != want {
        return Err(WireError::BadCrc);
    }
    let mut buf = body;
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ptype = buf.get_u8();
    let stream_id = buf.get_u16_le();
    let seq = buf.get_u32_le();
    match ptype {
        TYPE_CONTROL => {
            if buf.remaining() < 8 + 6 + 6 {
                return Err(WireError::TooShort);
            }
            let producer_time_us = buf.get_u64_le();
            let config = get_config(&mut buf)?;
            let codec = buf.get_u8();
            let quality = buf.get_u8();
            let control_interval_ms = buf.get_u16_le();
            let flags = buf.get_u16_le();
            Ok(Packet::Control(ControlPacket {
                stream_id,
                seq,
                producer_time_us,
                config,
                codec,
                quality,
                control_interval_ms,
                flags,
            }))
        }
        TYPE_DATA => {
            if buf.remaining() < 8 + 1 + 4 {
                return Err(WireError::TooShort);
            }
            let play_at_us = buf.get_u64_le();
            let codec = buf.get_u8();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() != len {
                return Err(WireError::BadField("payload length"));
            }
            let payload = Bytes::copy_from_slice(buf);
            Ok(Packet::Data(DataPacket {
                stream_id,
                seq,
                play_at_us,
                codec,
                payload,
            }))
        }
        TYPE_ANNOUNCE => {
            if buf.remaining() < 8 + 2 {
                return Err(WireError::TooShort);
            }
            let producer_time_us = buf.get_u64_le();
            let count = buf.get_u16_le() as usize;
            if count > 512 {
                return Err(WireError::BadField("stream count"));
            }
            let mut streams = Vec::with_capacity(count);
            for _ in 0..count {
                streams.push(get_stream_info(&mut buf)?);
            }
            if buf.has_remaining() {
                return Err(WireError::BadField("trailing bytes"));
            }
            Ok(Packet::Announce(AnnouncePacket {
                seq,
                producer_time_us,
                streams,
            }))
        }
        TYPE_PARITY => {
            if buf.remaining() < 1 + 8 + 4 + 1 + 4 {
                return Err(WireError::TooShort);
            }
            let count = buf.get_u8();
            if !(2..=32).contains(&count) {
                return Err(WireError::BadField("parity count"));
            }
            let xor_play_at_us = buf.get_u64_le();
            let xor_len = buf.get_u32_le();
            let xor_codec = buf.get_u8();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() != len {
                return Err(WireError::BadField("payload length"));
            }
            Ok(Packet::Parity(ParityPacket {
                stream_id,
                base_seq: seq,
                count,
                xor_play_at_us,
                xor_len,
                xor_codec,
                payload: Bytes::copy_from_slice(buf),
            }))
        }
        TYPE_SESSION => Ok(Packet::Session(crate::session::decode_session_body(
            stream_id, seq, buf,
        )?)),
        t => Err(WireError::BadType(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control() -> ControlPacket {
        ControlPacket {
            stream_id: 3,
            seq: 42,
            producer_time_us: 1_234_567,
            config: AudioConfig::CD,
            codec: 3,
            quality: 10,
            control_interval_ms: 500,
            flags: FLAG_PRIORITY,
        }
    }

    #[test]
    fn control_roundtrip() {
        let p = control();
        let bytes = encode_control(&p);
        match decode(&bytes).unwrap() {
            Packet::Control(c) => assert_eq!(c, p),
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn data_roundtrip() {
        let p = DataPacket {
            stream_id: 1,
            seq: 7,
            play_at_us: 999_000,
            codec: 0,
            payload: Bytes::from(vec![9u8; 1_000]),
        };
        let bytes = encode_data(&p);
        assert_eq!(bytes.len(), DATA_ENVELOPE + 1_000);
        match decode(&bytes).unwrap() {
            Packet::Data(d) => assert_eq!(d, p),
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn empty_payload_data_roundtrip() {
        let p = DataPacket {
            stream_id: 0,
            seq: 0,
            play_at_us: 0,
            codec: 3,
            payload: Bytes::new(),
        };
        let bytes = encode_data(&p);
        assert!(matches!(decode(&bytes).unwrap(), Packet::Data(d) if d == p));
    }

    #[test]
    fn announce_roundtrip() {
        let p = AnnouncePacket {
            seq: 5,
            producer_time_us: 88,
            streams: vec![
                StreamInfo {
                    stream_id: 1,
                    group: 10,
                    name: "campus radio".into(),
                    codec: 3,
                    config: AudioConfig::CD,
                    flags: 0,
                    caps: Capabilities {
                        codecs: vec![0, 3],
                        sample_rates: vec![44_100],
                        device_class: crate::session::DeviceClass::Hifi,
                    },
                },
                StreamInfo {
                    stream_id: 2,
                    group: 11,
                    name: "pa-announcements".into(),
                    codec: 0,
                    config: AudioConfig::PHONE,
                    flags: FLAG_PRIORITY,
                    caps: Capabilities::any(),
                },
            ],
        };
        let bytes = encode_announce(&p);
        match decode(&bytes).unwrap() {
            Packet::Announce(a) => assert_eq!(a, p),
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn empty_announce_roundtrips() {
        let p = AnnouncePacket {
            seq: 0,
            producer_time_us: 0,
            streams: vec![],
        };
        let bytes = encode_announce(&p);
        assert!(matches!(decode(&bytes).unwrap(), Packet::Announce(a) if a == p));
    }

    #[test]
    fn parity_roundtrip() {
        let p = ParityPacket {
            stream_id: 3,
            base_seq: 40,
            count: 8,
            xor_play_at_us: 0xDEAD_BEEF,
            xor_len: 777,
            xor_codec: 2,
            payload: Bytes::from(vec![0xAA; 512]),
        };
        let bytes = encode_parity(&p);
        match decode(&bytes).unwrap() {
            Packet::Parity(q) => assert_eq!(q, p),
            other => panic!("wrong type: {other:?}"),
        }
        // Bad count rejected.
        let mut q = p.clone();
        q.count = 1;
        assert_eq!(
            decode(&encode_parity(&q)),
            Err(WireError::BadField("parity count"))
        );
    }

    #[test]
    fn corruption_is_detected_everywhere() {
        let bytes = encode_control(&control());
        for i in 0..bytes.len() {
            let mut m = bytes.to_vec();
            m[i] ^= 0x40;
            assert!(decode(&m).is_err(), "undetected corruption at byte {i}");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_data(&DataPacket {
            stream_id: 1,
            seq: 1,
            play_at_us: 1,
            codec: 0,
            payload: Bytes::from(vec![1u8; 100]),
        });
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "undetected cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_version_type() {
        let good = encode_control(&control()).to_vec();
        // Magic.
        let mut m = good.clone();
        m[0] = 0;
        let body_len = m.len() - 4;
        let crc = crate::crc::crc32(&m[..body_len]).to_le_bytes();
        m[body_len..].copy_from_slice(&crc);
        assert_eq!(decode(&m), Err(WireError::BadMagic));
        // Version.
        let mut m = good.clone();
        m[2] = 9;
        let crc = crate::crc::crc32(&m[..body_len]).to_le_bytes();
        m[body_len..].copy_from_slice(&crc);
        assert_eq!(decode(&m), Err(WireError::BadVersion(9)));
        // Type.
        let mut m = good;
        m[3] = 77;
        let crc = crate::crc::crc32(&m[..body_len]).to_le_bytes();
        m[body_len..].copy_from_slice(&crc);
        assert_eq!(decode(&m), Err(WireError::BadType(77)));
    }

    #[test]
    fn bad_config_rejected() {
        let mut p = control();
        p.config.channels = 0;
        let bytes = encode_control(&p).to_vec();
        assert_eq!(decode(&bytes), Err(WireError::BadField("config")));
    }

    #[test]
    fn recommended_payload_fits_mtu() {
        let p = DataPacket {
            stream_id: 1,
            seq: 1,
            play_at_us: 1,
            codec: 0,
            payload: Bytes::from(vec![0u8; RECOMMENDED_MAX_PAYLOAD]),
        };
        assert_eq!(encode_data(&p).len(), 1_472);
    }

    #[test]
    fn encode_into_appends_with_region_crc() {
        // The _into encoders must checksum only their own region, so a
        // reused scratch buffer with leftover contents still yields a
        // byte-identical, decodable packet.
        let c = control();
        let d = DataPacket {
            stream_id: 2,
            seq: 9,
            play_at_us: 44,
            codec: 1,
            payload: Bytes::from(vec![7u8; 64]),
        };
        let mut buf = BytesMut::with_capacity(256);
        buf.put_slice(b"junk-prefix");
        let start = buf.len();
        encode_control_into(&c, &mut buf);
        let mid = buf.len();
        encode_data_into(&d, &mut buf);
        assert_eq!(&buf[start..mid], &encode_control(&c)[..]);
        assert_eq!(&buf[mid..], &encode_data(&d)[..]);
        assert!(matches!(decode(&buf[mid..]).unwrap(), Packet::Data(p) if p == d));
    }

    #[test]
    fn encode_into_matches_allocating_encoders() {
        let a = AnnouncePacket {
            seq: 1,
            producer_time_us: 2,
            streams: vec![StreamInfo {
                stream_id: 1,
                group: 10,
                name: "ch".into(),
                codec: 3,
                config: AudioConfig::CD,
                flags: 0,
                caps: Capabilities {
                    codecs: vec![3],
                    sample_rates: vec![44_100],
                    device_class: crate::session::DeviceClass::Standard,
                },
            }],
        };
        let p = ParityPacket {
            stream_id: 3,
            base_seq: 40,
            count: 4,
            xor_play_at_us: 5,
            xor_len: 6,
            xor_codec: 2,
            payload: Bytes::from(vec![0x55; 32]),
        };
        let mut buf = BytesMut::new();
        encode_announce_into(&a, &mut buf);
        assert_eq!(&buf[..], &encode_announce(&a)[..]);
        buf.clear();
        encode_parity_into(&p, &mut buf);
        assert_eq!(&buf[..], &encode_parity(&p)[..]);
    }

    proptest::proptest! {
        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn prop_data_roundtrip(
            stream_id in 0u16..100,
            seq in 0u32..1_000_000,
            play_at in 0u64..u64::MAX / 2,
            codec in 0u8..4,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..2000),
        ) {
            let p = DataPacket {
                stream_id,
                seq,
                play_at_us: play_at,
                codec,
                payload: Bytes::from(payload),
            };
            let bytes = encode_data(&p);
            proptest::prop_assert_eq!(decode(&bytes).unwrap(), Packet::Data(p));
        }
    }
}
