//! Stream authentication with delayed key disclosure.
//!
//! §5.1 sets two requirements: "(a) the ES should not play audio from
//! an unauthorized source, and (b) the machine should be resistant to
//! denial of service attacks", and explicitly rejects per-packet
//! digital signatures because "it allows an attacker to overwhelm an ES
//! by simply feeding it garbage", pointing at fast-verification schemes
//! (Reyzin & Reyzin, Karlof et al.) instead.
//!
//! The implemented scheme is TESLA-shaped, built from the one-way
//! SHA-256 chain + HMAC primitives in this crate:
//!
//! - The producer generates a key chain `k_0 ← H(k_1) ← ... ← H(k_n)`
//!   and distributes the *anchor* `k_0` out-of-band — the paper's plan
//!   of storing a verification key in each speaker's non-volatile RAM
//!   via the boot configuration (`es-boot`).
//! - Time is sliced into intervals. Packets sent during interval `i`
//!   carry `HMAC(k_i, packet)`; `k_i` itself is only *disclosed* `d`
//!   intervals later.
//! - A receiver buffers packets until their key is disclosed, verifies
//!   the disclosed key against the anchor with a handful of hash
//!   applications (cheap, bounded — this is the DoS resistance), and
//!   only then checks the MACs.
//!
//! A packet whose interval's key is already public is rejected
//! outright: an attacker who waited for the disclosure learned the key
//! too late to forge with it.

use std::collections::VecDeque;

use crate::sha256::{ct_eq, hmac_sha256, sha256, Sha256};

/// Wire size of an [`AuthTrailer`].
pub const TRAILER_LEN: usize = 4 + 32 + 4 + 32;

/// Default disclosure delay in intervals.
pub const DEFAULT_DISCLOSURE_DELAY: u32 = 2;

/// The per-packet authentication trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthTrailer {
    /// Interval whose (still secret) key MAC'd this packet.
    pub interval: u32,
    /// `HMAC(k_interval, message)`.
    pub mac: [u8; 32],
    /// Interval of the key being disclosed in this packet (0 = none
    /// yet).
    pub disclosed_interval: u32,
    /// The disclosed key bytes.
    pub disclosed_key: [u8; 32],
}

impl AuthTrailer {
    /// Serializes to the fixed wire layout.
    pub fn encode(&self) -> [u8; TRAILER_LEN] {
        let mut out = [0u8; TRAILER_LEN];
        // es-allow(panic-path): fixed wire layout — every range is a constant within TRAILER_LEN = 72
        out[0..4].copy_from_slice(&self.interval.to_le_bytes());
        out[4..36].copy_from_slice(&self.mac);
        out[36..40].copy_from_slice(&self.disclosed_interval.to_le_bytes());
        out[40..72].copy_from_slice(&self.disclosed_key);
        out
    }

    /// Parses the fixed wire layout.
    pub fn decode(bytes: &[u8]) -> Option<AuthTrailer> {
        if bytes.len() != TRAILER_LEN {
            return None;
        }
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[4..36]);
        let mut disclosed_key = [0u8; 32];
        disclosed_key.copy_from_slice(&bytes[40..72]);
        Some(AuthTrailer {
            interval: u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            mac,
            disclosed_interval: u32::from_le_bytes([bytes[36], bytes[37], bytes[38], bytes[39]]),
            disclosed_key,
        })
    }
}

/// The producer side: owns the key chain and signs outgoing packets.
pub struct StreamSigner {
    /// `keys[i]` is `k_i`; `keys[0]` is the public anchor.
    keys: Vec<[u8; 32]>,
    delay: u32,
}

impl StreamSigner {
    /// Generates a chain of `intervals` keys from a seed. The seed
    /// stands in for the producer's secret; determinism keeps the
    /// experiments reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is 0 or `delay` is 0.
    pub fn new(seed: &[u8], intervals: u32, delay: u32) -> Self {
        assert!(intervals > 0, "need at least one interval");
        assert!(delay > 0, "disclosure delay must be at least one interval");
        let n = intervals as usize;
        let mut keys = vec![[0u8; 32]; n + 1];
        let mut h = Sha256::new();
        h.update(b"es-keychain-tip");
        h.update(seed);
        keys[n] = h.finalize();
        for i in (0..n).rev() {
            keys[i] = sha256(&keys[i + 1]);
        }
        StreamSigner { keys, delay }
    }

    /// The public anchor `k_0`, to be provisioned into speakers
    /// out-of-band.
    pub fn anchor(&self) -> [u8; 32] {
        self.keys[0]
    }

    /// Number of usable signing intervals.
    pub fn intervals(&self) -> u32 {
        (self.keys.len() - 1) as u32
    }

    /// The configured disclosure delay.
    pub fn delay(&self) -> u32 {
        self.delay
    }

    /// Signs `message` as sent during `interval` (1-based) and embeds
    /// the newest key that may be disclosed.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is 0 or beyond the chain length.
    pub fn sign(&self, interval: u32, message: &[u8]) -> AuthTrailer {
        assert!(
            (1..=self.intervals()).contains(&interval),
            "interval {interval} outside chain"
        );
        // es-allow(panic-path): interval is asserted within 1..=intervals() and keys holds intervals()+1 entries
        let mac = hmac_sha256(&self.keys[interval as usize], message);
        let (disclosed_interval, disclosed_key) = if interval > self.delay {
            let di = interval - self.delay;
            (di, self.keys[di as usize])
        } else {
            (0, [0u8; 32])
        };
        AuthTrailer {
            interval,
            mac,
            disclosed_interval,
            disclosed_key,
        }
    }
}

/// Why a packet was not (yet) authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// Claimed interval's key is already public — possible replay or
    /// post-disclosure forgery.
    KeyAlreadyDisclosed,
    /// The pending buffer is full; oldest entries were evicted.
    BufferFull,
}

/// Verification statistics — the E-AUTH experiment's raw numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifierStats {
    /// Packets authenticated successfully.
    pub authenticated: u64,
    /// Packets whose MAC failed once the key arrived.
    pub forged: u64,
    /// Packets rejected before buffering.
    pub rejected_early: u64,
    /// Disclosed keys that did not verify against the anchor.
    pub bad_keys: u64,
    /// Total SHA-256 compression-scale operations spent on *key*
    /// verification (the cheap pre-check).
    pub key_check_hashes: u64,
    /// Total HMAC operations spent verifying buffered packets.
    pub mac_checks: u64,
}

struct Pending {
    interval: u32,
    mac: [u8; 32],
    message: Vec<u8>,
}

/// The receiver side: anchors trust in `k_0` and releases packets as
/// keys disclose.
pub struct StreamVerifier {
    anchor_interval: u32,
    anchor_key: [u8; 32],
    pending: VecDeque<Pending>,
    max_pending: usize,
    stats: VerifierStats,
}

impl StreamVerifier {
    /// Creates a verifier trusting `anchor` as `k_0`.
    pub fn new(anchor: [u8; 32]) -> Self {
        Self::with_buffer(anchor, 4_096)
    }

    /// Creates a verifier with an explicit pending-buffer bound (the
    /// DoS backstop: garbage can occupy at most this much memory).
    pub fn with_buffer(anchor: [u8; 32], max_pending: usize) -> Self {
        StreamVerifier {
            anchor_interval: 0,
            anchor_key: anchor,
            pending: VecDeque::new(),
            max_pending,
            stats: VerifierStats::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> VerifierStats {
        self.stats
    }

    /// Verifies a disclosed key against the anchor by hashing forward.
    /// On success the anchor advances (so future checks get cheaper).
    /// Cost is `interval - anchor_interval` hashes — the bounded,
    /// garbage-resistant pre-check.
    pub fn accept_key(&mut self, interval: u32, key: [u8; 32]) -> bool {
        if interval <= self.anchor_interval {
            // Already known or stale; nothing to do. Accept silently if
            // it matches what we know for the anchor itself.
            return interval == self.anchor_interval && ct_eq(&key, &self.anchor_key);
        }
        // Refuse absurd jumps (an attacker could otherwise buy a huge
        // hash loop with four forged bytes).
        let gap = interval - self.anchor_interval;
        if gap > 1_024 {
            self.stats.bad_keys += 1;
            return false;
        }
        let mut walked = key;
        for _ in 0..gap {
            walked = sha256(&walked);
            self.stats.key_check_hashes += 1;
        }
        if !ct_eq(&walked, &self.anchor_key) {
            self.stats.bad_keys += 1;
            return false;
        }
        self.anchor_interval = interval;
        self.anchor_key = key;
        true
    }

    /// Offers a packet with its trailer. Returns the messages newly
    /// authenticated by this call (the offered one and/or earlier
    /// buffered ones released by the disclosed key).
    pub fn offer(
        &mut self,
        message: &[u8],
        trailer: &AuthTrailer,
    ) -> (Vec<Vec<u8>>, Option<Reject>) {
        // Packets MAC'd with an already-public key prove nothing.
        let mut reject = None;
        if trailer.interval <= self.anchor_interval {
            self.stats.rejected_early += 1;
            reject = Some(Reject::KeyAlreadyDisclosed);
        } else {
            if self.pending.len() >= self.max_pending {
                self.pending.pop_front();
                reject = Some(Reject::BufferFull);
            }
            self.pending.push_back(Pending {
                interval: trailer.interval,
                mac: trailer.mac,
                message: message.to_vec(),
            });
        }
        // Process the disclosure, possibly releasing buffered packets.
        let mut released = Vec::new();
        if trailer.disclosed_interval > 0
            && self.accept_key(trailer.disclosed_interval, trailer.disclosed_key)
        {
            released = self.release();
        }
        (released, reject)
    }

    /// Verifies every buffered packet whose interval key can now be
    /// derived (interval ≤ anchor). Keys for intermediate intervals are
    /// recovered by walking the chain from the anchor.
    fn release(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let anchor_interval = self.anchor_interval;
        let anchor_key = self.anchor_key;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].interval > anchor_interval {
                i += 1;
                continue;
            }
            let p = self.pending.remove(i).expect("index checked");
            // Derive k_{p.interval} from the anchor by hashing down.
            let mut key = anchor_key;
            for _ in 0..(anchor_interval - p.interval) {
                key = sha256(&key);
                self.stats.key_check_hashes += 1;
            }
            self.stats.mac_checks += 1;
            let mac = hmac_sha256(&key, &p.message);
            if ct_eq(&mac, &p.mac) {
                self.stats.authenticated += 1;
                out.push(p.message);
            } else {
                self.stats.forged += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signer() -> StreamSigner {
        StreamSigner::new(b"test-seed", 64, DEFAULT_DISCLOSURE_DELAY)
    }

    #[test]
    fn chain_is_one_way() {
        let s = signer();
        // k_0 = H(k_1): verify a couple of links via the signer's own data.
        let t3 = s.sign(3, b"m");
        let t1_key_from_t3 = sha256(&sha256(&t3.disclosed_key));
        // t3 disclosed k_1 (delay 2); hashing twice from k_1 lands
        // below the chain start — instead verify H(k_1) == k_0.
        assert_eq!(t3.disclosed_interval, 1);
        assert_eq!(sha256(&t3.disclosed_key), s.anchor());
        let _ = t1_key_from_t3;
    }

    #[test]
    fn trailer_wire_roundtrip() {
        let s = signer();
        let t = s.sign(5, b"payload");
        let bytes = t.encode();
        assert_eq!(AuthTrailer::decode(&bytes), Some(t));
        assert_eq!(AuthTrailer::decode(&bytes[..10]), None);
    }

    #[test]
    fn honest_stream_authenticates_everything() {
        let s = signer();
        let mut v = StreamVerifier::new(s.anchor());
        let mut got = Vec::new();
        for i in 1..=20u32 {
            let msg = format!("packet {i}");
            let t = s.sign(i, msg.as_bytes());
            let (released, reject) = v.offer(msg.as_bytes(), &t);
            assert_eq!(reject, None, "interval {i}");
            got.extend(released);
        }
        // Everything up to interval 18 (disclosed by packet 20) is out.
        assert_eq!(got.len(), 18);
        assert_eq!(got[0], b"packet 1");
        assert_eq!(v.stats().authenticated, 18);
        assert_eq!(v.stats().forged, 0);
    }

    #[test]
    fn forged_packets_are_detected_not_played() {
        let s = signer();
        let mut v = StreamVerifier::new(s.anchor());
        // Attacker injects garbage claiming interval 5.
        let forged = AuthTrailer {
            interval: 5,
            mac: [0xAB; 32],
            disclosed_interval: 0,
            disclosed_key: [0; 32],
        };
        let (released, reject) = v.offer(b"evil audio", &forged);
        assert!(released.is_empty());
        assert_eq!(reject, None, "buffered, not played");
        // Honest traffic continues; disclosure of k_5 exposes the fake.
        let mut got = Vec::new();
        for i in 1..=10u32 {
            let msg = format!("good {i}");
            let t = s.sign(i, msg.as_bytes());
            got.extend(v.offer(msg.as_bytes(), &t).0);
        }
        assert!(got.iter().all(|m| m.starts_with(b"good")));
        assert_eq!(v.stats().forged, 1);
    }

    #[test]
    fn post_disclosure_forgery_rejected_cheaply() {
        let s = signer();
        let mut v = StreamVerifier::new(s.anchor());
        for i in 1..=10u32 {
            let msg = [i as u8];
            let t = s.sign(i, &msg);
            v.offer(&msg, &t);
        }
        // k_8 is now public (disclosed by packet 10). An attacker who
        // learned it signs garbage for interval 8.
        let key_8 = s.sign(10, b"x").disclosed_key;
        let forged = AuthTrailer {
            interval: 8,
            mac: hmac_sha256(&key_8, b"late forgery"),
            disclosed_interval: 0,
            disclosed_key: [0; 32],
        };
        let before = v.stats().mac_checks;
        let (released, reject) = v.offer(b"late forgery", &forged);
        assert!(released.is_empty());
        assert_eq!(reject, Some(Reject::KeyAlreadyDisclosed));
        assert_eq!(v.stats().mac_checks, before, "no MAC work spent");
    }

    #[test]
    fn bad_disclosed_keys_cost_bounded_hashes() {
        let s = signer();
        let mut v = StreamVerifier::new(s.anchor());
        let garbage = AuthTrailer {
            interval: 3,
            mac: [0; 32],
            disclosed_interval: 1,
            disclosed_key: [0x55; 32], // Not the real k_1.
        };
        let (released, _) = v.offer(b"x", &garbage);
        assert!(released.is_empty());
        assert_eq!(v.stats().bad_keys, 1);
        assert_eq!(v.stats().key_check_hashes, 1, "exactly one hash spent");
        // Absurd interval jumps are refused without hashing 4 billion
        // times.
        assert!(!v.accept_key(2_000_000, [1; 32]));
        assert_eq!(v.stats().bad_keys, 2);
    }

    #[test]
    fn buffer_bound_evicts_oldest() {
        let s = signer();
        let mut v = StreamVerifier::with_buffer(s.anchor(), 4);
        for i in 0..10 {
            let forged = AuthTrailer {
                interval: 30,
                mac: [i as u8; 32],
                disclosed_interval: 0,
                disclosed_key: [0; 32],
            };
            let (_, reject) = v.offer(&[i as u8], &forged);
            if i >= 4 {
                assert_eq!(reject, Some(Reject::BufferFull));
            }
        }
    }

    #[test]
    fn anchor_advances_and_replays_rejected() {
        let s = signer();
        let mut v = StreamVerifier::new(s.anchor());
        for i in 1..=6u32 {
            let msg = [i as u8];
            let t = s.sign(i, &msg);
            v.offer(&msg, &t);
        }
        // Replaying packet 2 (key long public) is rejected early.
        let t2 = s.sign(2, &[2u8]);
        let (rel, rej) = v.offer(&[2u8], &t2);
        assert!(rel.is_empty());
        assert_eq!(rej, Some(Reject::KeyAlreadyDisclosed));
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn signing_interval_zero_panics() {
        let s = signer();
        let _ = s.sign(0, b"x");
    }
}
