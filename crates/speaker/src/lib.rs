//! # es-speaker — the Ethernet Speaker (consumer side)
//!
//! The receive-only playback device of §2.3/§3.2:
//!
//! - [`sync`]: producer wall-clock tracking and the sleep/play/discard
//!   rule with its epsilon leeway.
//! - [`speaker`]: the full receive → verify → decode → play pipeline,
//!   including control-packet gating, channel tuning, ring-overflow
//!   accounting and optional CPU-model billing (§3.4).
//! - [`autovol`]: the §5.2 ambient-noise automatic volume control with
//!   a simulated microphone.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod autovol;
pub mod speaker;
pub mod sync;

pub use autovol::{AmbientProfile, AutoVolume, AutoVolumeConfig, ContentKind};
pub use speaker::{EthernetSpeaker, SpeakerConfig, SpeakerStats};
pub use sync::{decide, ClockSync, PlayDecision};

/// Converts decode work units to Geode-class CPU cycles (same
/// calibration as the encode path; see `es-bench::calib`).
pub fn decode_work_to_cycles(work_units: u64) -> u64 {
    work_units * 21 / 100
}
