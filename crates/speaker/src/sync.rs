//! Playback synchronization (§3.2).
//!
//! "Inside each periodic stream control packet we place a timestamp
//! that serves as a wall clock for the ESs. In addition to this
//! 'producer time', we send a timestamp within each audio data packet
//! that instructs the ES when it should play the data." The speaker
//! learns the producer/local clock offset from control packets —
//! assuming, as the paper does, that "everybody receives a multicast
//! packet at the same time" — and then sleeps or discards per packet:
//! "either sleeping until it is time to play or throwing away data up
//! until the current wall time", with "an epsilon value that provides
//! the ES with some leeway".

use es_sim::{SimDuration, SimTime};

/// Producer-to-local clock mapping learned from control packets.
#[derive(Debug, Clone, Default)]
pub struct ClockSync {
    /// `local - producer`, in microseconds (signed; the producer's
    /// clock may be "ahead" of a speaker that booted later).
    offset_us: Option<i64>,
    samples: u64,
}

impl ClockSync {
    /// Creates an unsynchronized clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once at least one control packet has been absorbed.
    pub fn is_synced(&self) -> bool {
        self.offset_us.is_some()
    }

    /// Number of control packets absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Absorbs a control packet received at local time `local_now`
    /// carrying `producer_time_us`.
    ///
    /// Transit and queueing can only make a control packet *late*, so
    /// the observed `local - producer` difference is always the true
    /// offset plus a non-negative delay. The estimator therefore keeps
    /// the minimum observation ever seen (the NTP lower-bound filter):
    /// the fastest control packet so far is the tightest bound on the
    /// true offset, and a delayed one — even the very first, if the
    /// network held it back — is corrected by the next packet that
    /// arrives on time and can never yank playback later again.
    pub fn on_control(&mut self, local_now: SimTime, producer_time_us: u64) {
        let observed = local_now.as_micros() as i64 - producer_time_us as i64;
        self.samples += 1;
        self.offset_us = Some(match self.offset_us {
            None => observed,
            Some(prev) => prev.min(observed),
        });
    }

    /// The current offset estimate in microseconds (`local -
    /// producer`).
    pub fn offset_us(&self) -> Option<i64> {
        self.offset_us
    }

    /// Maps a producer-timeline deadline to local time. `None` until
    /// synchronized. Deadlines that would land before the local epoch
    /// clamp to zero.
    pub fn to_local(&self, producer_us: u64) -> Option<SimTime> {
        let off = self.offset_us?;
        let local = producer_us as i64 + off;
        Some(SimTime::from_micros(local.max(0) as u64))
    }
}

/// What to do with a packet whose (local) play deadline is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayDecision {
    /// The deadline is in the future: hold the data until then.
    Sleep(SimDuration),
    /// The deadline just passed, within epsilon: play immediately.
    PlayNow,
    /// Too late even with leeway: discard ("throwing away data up
    /// until the current wall time").
    Discard {
        /// How far past the deadline the packet was.
        late_by: SimDuration,
    },
}

/// Applies the paper's sleep/play/discard rule.
pub fn decide(deadline: SimTime, now: SimTime, epsilon: SimDuration) -> PlayDecision {
    if deadline > now {
        PlayDecision::Sleep(deadline - now)
    } else {
        let late = now - deadline;
        if late <= epsilon {
            PlayDecision::PlayNow
        } else {
            PlayDecision::Discard { late_by: late }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_maps_nothing() {
        let cs = ClockSync::new();
        assert!(!cs.is_synced());
        assert_eq!(cs.to_local(1_000), None);
        assert_eq!(cs.offset_us(), None);
    }

    #[test]
    fn first_control_snaps_offset() {
        let mut cs = ClockSync::new();
        // Local 10s, producer clock says 3s: offset = +7s.
        cs.on_control(SimTime::from_secs(10), 3_000_000);
        assert_eq!(cs.offset_us(), Some(7_000_000));
        assert_eq!(
            cs.to_local(4_000_000),
            Some(SimTime::from_secs(11)),
            "producer 4s plays at local 11s"
        );
    }

    #[test]
    fn delayed_control_cannot_raise_the_offset() {
        let mut cs = ClockSync::new();
        cs.on_control(SimTime::from_secs(10), 3_000_000);
        // An outlier control packet delayed by 80 ms observes a larger
        // offset; the minimum filter ignores it outright.
        cs.on_control(SimTime::from_micros(10_580_000), 3_500_000);
        assert_eq!(cs.offset_us(), Some(7_000_000));
        assert_eq!(cs.samples(), 2);
    }

    #[test]
    fn delayed_first_control_is_corrected_by_a_faster_one() {
        let mut cs = ClockSync::new();
        // First control held back 70 ms by the network: the snap is
        // 70 ms too high.
        cs.on_control(SimTime::from_micros(10_070_000), 3_000_000);
        assert_eq!(cs.offset_us(), Some(7_070_000));
        // The next on-time control tightens the bound to the truth.
        cs.on_control(SimTime::from_micros(10_500_000), 3_500_000);
        assert_eq!(cs.offset_us(), Some(7_000_000));
    }

    #[test]
    fn negative_offset_speaker_booted_late() {
        let mut cs = ClockSync::new();
        // Speaker local clock 1s, producer has been up 60s.
        cs.on_control(SimTime::from_secs(1), 60_000_000);
        assert_eq!(cs.offset_us(), Some(-59_000_000));
        // A deadline at producer 61s is local 2s.
        assert_eq!(cs.to_local(61_000_000), Some(SimTime::from_secs(2)));
        // A deadline before the local epoch clamps.
        assert_eq!(cs.to_local(1_000_000), Some(SimTime::ZERO));
    }

    #[test]
    fn decision_rules() {
        let eps = SimDuration::from_millis(20);
        let now = SimTime::from_secs(5);
        assert_eq!(
            decide(SimTime::from_millis(5_100), now, eps),
            PlayDecision::Sleep(SimDuration::from_millis(100))
        );
        assert_eq!(decide(now, now, eps), PlayDecision::PlayNow);
        assert_eq!(
            decide(SimTime::from_millis(4_990), now, eps),
            PlayDecision::PlayNow,
            "10 ms late is within epsilon"
        );
        assert_eq!(
            decide(SimTime::from_millis(4_900), now, eps),
            PlayDecision::Discard {
                late_by: SimDuration::from_millis(100)
            }
        );
    }

    #[test]
    fn zero_epsilon_discards_everything_late() {
        // The paper's warning: without leeway "data will be
        // unnecessarily thrown out".
        let now = SimTime::from_secs(5);
        let just_late = SimTime::from_nanos(now.as_nanos() - 1);
        assert!(matches!(
            decide(just_late, now, SimDuration::ZERO),
            PlayDecision::Discard { .. }
        ));
    }

    #[test]
    fn two_speakers_same_control_same_mapping() {
        // §3.2's uniformity assumption: identical arrival time gives
        // identical offsets, hence identical local deadlines.
        let mut a = ClockSync::new();
        let mut b = ClockSync::new();
        a.on_control(SimTime::from_millis(1_234), 1_000_000);
        b.on_control(SimTime::from_millis(1_234), 1_000_000);
        assert_eq!(a.to_local(2_000_000), b.to_local(2_000_000));
    }
}
