//! The Ethernet Speaker — the receive-only playback device (§2.3, §2.4).
//!
//! "Our Ethernet Speakers function like radios, i.e., receive-only
//! devices": the speaker joins a multicast group, *waits for a control
//! packet* ("The Ethernet Speaker has to wait till it receives a
//! control packet before it can start playing the audio stream"),
//! learns the producer wall clock, and then plays each data packet at
//! its deadline — sleeping, playing, or discarding per §3.2's rule.
//!
//! The playback path is the full §3.4 pipeline: receive → (verify) →
//! decode (billable to a Geode-class CPU model) → write to the audio
//! device, whose ring and DMA pacing supply the final rate limiting.
//! Receiver-side buffer overflow (the §3.1 pathology: an unpaced
//! producer blasts a song at wire speed and "you will only hear the
//! first few seconds") shows up here as ring-full drops.

use std::rc::Rc;

use es_audio::mix::apply_gain;
use es_audio::AudioConfig;
use es_codec::{CodecId, Codecs};
use es_net::{Datagram, Lan, McastGroup, NodeId};
use es_proto::auth::{StreamVerifier, VerifierStats};
use es_proto::{Packet, TRAILER_LEN};
use es_sim::{shared, Shared, Sim, SimCpu, SimDuration, SimTime};
use es_telemetry::{Histogram, Journal, Registry, Severity, Stamp, Telemetry};
use es_vad::{AudioDevice, HwDriver, Ioctl, OutputTap};

use crate::autovol::{AmbientProfile, AutoVolume, AutoVolumeConfig};
use crate::sync::{decide, ClockSync, PlayDecision};

/// Speaker tuning knobs.
pub struct SpeakerConfig {
    /// Display name (also the LAN node name).
    pub name: String,
    /// Channel group to tune at startup.
    pub group: McastGroup,
    /// §3.2's epsilon: lateness tolerated before data is discarded.
    pub epsilon: SimDuration,
    /// Audio device ring capacity in bytes (§3.4's buffer budget).
    pub device_ring_capacity: usize,
    /// Audio device block length in milliseconds (§3.4's knob: "by
    /// reducing the buffer size, each of the stages ... finishes
    /// faster").
    pub device_block_ms: u64,
    /// Optional CPU model billed for decode work (the slow-Geode
    /// pipeline of §3.4).
    pub cpu: Option<Shared<SimCpu>>,
    /// Optional trust anchor enabling stream authentication (§5.1).
    pub auth_anchor: Option<[u8; 32]>,
    /// Fixed volume gain (linear).
    pub volume: f64,
    /// Optional ambient-tracking automatic volume (§5.2).
    pub auto_volume: Option<(AutoVolumeConfig, AmbientProfile)>,
    /// When set, the playback path runs as the paper's single-threaded
    /// player (§3.4): receive, decode, then a *blocking* write to the
    /// device, one packet at a time, with at most this many packets
    /// queued behind the busy thread (the socket receive buffer).
    /// Packets arriving beyond that are lost — the "skipped audio" of
    /// §3.4. `None` (default) is the fully pipelined mode.
    pub serial_queue_depth: Option<usize>,
    /// Play packets as soon as they are decoded, ignoring the §3.2
    /// deadlines — the behaviour of the paper's *early* Ethernet
    /// Speaker, whose only buffering was the audio device ring. Used by
    /// the §3.4 buffer-size experiment: blocks larger than the ring
    /// overflow and audibly skip.
    pub asap_playback: bool,
    /// Conceal lost packets by replaying the previous block with a
    /// fade instead of letting the device insert silence — an extension
    /// beyond the paper (its LAN never lost packets, §2.3); the E-LOSS
    /// ablation measures what it buys.
    pub conceal_loss: bool,
    /// How transform decode work is billed to the CPU model: FFT
    /// accounting by default, [`es_codec::CostModel::Direct`] for the
    /// paper's O(N²)-codec load figures.
    pub cost_model: es_codec::CostModel,
}

impl SpeakerConfig {
    /// Defaults: 20 ms epsilon, stock ring geometry, no CPU model, no
    /// auth, unit volume.
    pub fn new(name: impl Into<String>, group: McastGroup) -> Self {
        SpeakerConfig {
            name: name.into(),
            group,
            epsilon: SimDuration::from_millis(20),
            device_ring_capacity: es_vad::device::DEFAULT_RING_CAPACITY,
            device_block_ms: es_vad::device::DEFAULT_BLOCK_MS,
            cpu: None,
            auth_anchor: None,
            volume: 1.0,
            auto_volume: None,
            serial_queue_depth: None,
            asap_playback: false,
            conceal_loss: false,
            cost_model: es_codec::CostModel::default(),
        }
    }
}

/// Observable speaker counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpeakerStats {
    /// Datagrams received on the tuned group.
    pub datagrams: u64,
    /// Packets that failed CRC/parse.
    pub bad_packets: u64,
    /// Control packets absorbed.
    pub control_packets: u64,
    /// Data packets accepted for playback.
    pub data_packets: u64,
    /// Data packets that arrived before any control packet and were
    /// dropped (the §2.3 gating rule).
    pub dropped_waiting_control: u64,
    /// Data packets discarded as too late (§3.2).
    pub dropped_late: u64,
    /// Bytes dropped because the device ring was full (§3.1 overflow).
    pub dropped_overflow_bytes: u64,
    /// Payloads that failed codec decode.
    pub decode_errors: u64,
    /// Decode work units billed.
    pub decode_work_units: u64,
    /// Samples written to the audio device.
    pub samples_played: u64,
    /// Packets lost because the single-threaded player was busy and its
    /// receive queue was full (§3.4 serial mode only).
    pub dropped_busy: u64,
    /// Gap packets concealed by replaying faded audio (PLC extension).
    pub concealed_packets: u64,
    /// Packets reconstructed from XOR parity (FEC extension).
    pub fec_recovered: u64,
    /// Data packets suppressed because their sequence number already
    /// played — LAN duplicates, or an FEC copy of a packet that also
    /// arrived on its own.
    pub dropped_duplicate: u64,
    /// Times the device playback grid was flushed and re-anchored to
    /// the stream clock (§3.2's "throwing away data up until the
    /// current wall time").
    pub playback_resyncs: u64,
    /// Times a control-plane FLUSH re-gated playback (session mode).
    pub session_resyncs: u64,
    /// NACK retransmissions that landed in a hole this speaker
    /// reported missing (healing-plane refills).
    pub refills_received: u64,
    /// Refills that arrived past their original play deadline. Kept
    /// apart from `dropped_late`: the underlying loss was already
    /// counted when the gap was detected, so a late refill is a
    /// repair that missed its window, not a second failure — folding
    /// it into `deadline_misses` made each loss burst cost the heal
    /// detector an extra sick epoch (the "refill echo").
    pub refill_late: u64,
}

impl Telemetry for SpeakerStats {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("speaker");
        s.counter("datagrams", self.datagrams)
            .counter("bad_packets", self.bad_packets)
            .counter("control_packets", self.control_packets)
            .counter("data_packets", self.data_packets)
            .counter("dropped_waiting_control", self.dropped_waiting_control)
            .counter("deadline_misses", self.dropped_late)
            .counter("dropped_overflow_bytes", self.dropped_overflow_bytes)
            .counter("decode_errors", self.decode_errors)
            .counter("decode_work_units", self.decode_work_units)
            .counter("samples_played", self.samples_played)
            .counter("dropped_busy", self.dropped_busy)
            .counter("concealed_packets", self.concealed_packets)
            .counter("fec_recovered", self.fec_recovered)
            .counter("dropped_duplicate", self.dropped_duplicate)
            .counter("playback_resyncs", self.playback_resyncs)
            .counter("session_resyncs", self.session_resyncs)
            .counter("refills_received", self.refills_received)
            .counter("refill_late", self.refill_late);
    }
}

enum Phase {
    /// §2.3: no control packet yet; data cannot be interpreted.
    WaitingForControl,
    /// Stream description known; playing.
    Playing,
}

/// A payload decoded ahead of time on a fleet-executor lane: the
/// `(codec, channels)` snapshot the worker used, plus the result. The
/// consumer only trusts it when the snapshot still matches the
/// speaker's live stream state; otherwise it re-decodes serially, so
/// the parallel path can never produce different audio than the
/// serial one.
type PreDecoded = (CodecId, u8, Result<(Vec<i16>, u64), es_codec::CodecError>);

/// What a speaker's prepare job hands back through the LAN's staging
/// slot: the parse (with CRC check) of the raw datagram, the decoded
/// payload for data packets, and a token tying the result to the
/// datagram it came from.
struct PreparedRx {
    /// Address of the source payload's backing buffer; guards against
    /// a stale staged result being applied to the wrong datagram.
    token: usize,
    parsed: Result<Packet, es_proto::WireError>,
    decoded: Option<PreDecoded>,
}

// es-hot-path
/// Per-worker-lane codec engines — the "per-speaker scratch
/// workspaces" of the fleet design. `OvlCodec` keeps its MDCT scratch
/// in a `RefCell`, so engines cannot be shared across lanes; each lane
/// lazily builds one per cost model and reuses it for every batch
/// (the fleet pool keeps its threads alive between batches).
fn lane_decode(
    model: es_codec::CostModel,
    codec: CodecId,
    bytes: &[u8],
    channels: u8,
) -> Result<(Vec<i16>, u64), es_codec::CodecError> {
    thread_local! {
        static LANE_CODECS: std::cell::RefCell<Vec<(es_codec::CostModel, Codecs)>> =
            // es-allow(hot-path-alloc): one-time thread-local init, not per-packet
            const { std::cell::RefCell::new(Vec::new()) };
    }
    LANE_CODECS.with(|cell| {
        let mut engines = cell.borrow_mut();
        if !engines.iter().any(|(m, _)| *m == model) {
            engines.push((model, Codecs::with_cost_model(model)));
        }
        let (_, c) = engines
            .iter()
            .find(|(m, _)| *m == model)
            // es-allow(panic-path): the branch above inserts the model if absent, so find() always succeeds
            .expect("just inserted");
        let mut out = take_sample_buf();
        match c.decode_into(codec, bytes, channels, &mut out) {
            Ok(work) => Ok((out, work)),
            Err(e) => {
                recycle_sample_buf(out);
                Err(e)
            }
        }
    })
}

/// How many spent buffers each per-thread free list retains. Steady
/// state needs one or two (decode output in flight plus the block the
/// device is draining); the headroom covers serial-queue bursts.
const BUF_POOL_CAP: usize = 16;

thread_local! {
    /// Free list of decoded-sample buffers. Packets flow decode →
    /// schedule → device write; recycling the spent `Vec` at the write
    /// end closes the loop, so after warm-up the per-packet decode
    /// path performs no heap allocation at all. Per-thread because
    /// fleet lanes decode concurrently; a buffer drained on the
    /// consumer thread simply joins that thread's list (the lists need
    /// not balance — each is capped at [`BUF_POOL_CAP`]).
    static SAMPLE_BUFS: std::cell::RefCell<Vec<Vec<i16>>> =
        // es-allow(hot-path-alloc): one-time thread-local init, not per-packet
        const { std::cell::RefCell::new(Vec::new()) };
    /// Free list of encoded-byte buffers for the device-write side.
    static BYTE_BUFS: std::cell::RefCell<Vec<Vec<u8>>> =
        // es-allow(hot-path-alloc): one-time thread-local init, not per-packet
        const { std::cell::RefCell::new(Vec::new()) };
}

fn take_sample_buf() -> Vec<i16> {
    SAMPLE_BUFS
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

fn recycle_sample_buf(mut v: Vec<i16>) {
    v.clear();
    SAMPLE_BUFS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < BUF_POOL_CAP {
            pool.push(v);
        }
    });
}

fn take_byte_buf() -> Vec<u8> {
    BYTE_BUFS.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

fn recycle_byte_buf(mut v: Vec<u8>) {
    v.clear();
    BYTE_BUFS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < BUF_POOL_CAP {
            pool.push(v);
        }
    });
}

// es-hot-path-end

struct Pending {
    payload: bytes::Bytes,
    codec_wire: u8,
    deadline: es_sim::SimTime,
    /// Result of the parallel pre-decode, when one ran for this packet.
    pre: Option<PreDecoded>,
    /// This packet is a healing-plane refill of a reported gap; a late
    /// arrival counts as `refill_late`, not a fresh deadline miss.
    refill: bool,
}

struct SpkState {
    cfg: SpeakerConfig,
    serial_busy: bool,
    serial_queue: std::collections::VecDeque<Pending>,
    /// Highest data sequence number seen (gap detection for PLC).
    last_seq: Option<u32>,
    /// Sequence ranges `(first, count)` detected missing and not yet
    /// naturally filled — the healing plane drains these into NACK
    /// retransmit requests. Bounded; oldest ranges fall off the front.
    missing_ranges: Vec<(u32, u16)>,
    /// Ranges already handed to the healing plane via
    /// [`EthernetSpeaker::take_missing_ranges`]; a data packet landing
    /// inside one is a NACK refill, and its lateness is accounted as
    /// `refill_late` rather than a fresh deadline miss. Bounded like
    /// `missing_ranges`; cleared on tune and resync.
    refill_expected: Vec<(u32, u16)>,
    /// Recently accepted sequence numbers (bounded window) — the
    /// duplicate-suppression filter.
    seen_seqs: std::collections::BTreeSet<u32>,
    /// FEC recovery state, created lazily on the first parity packet.
    fec: Option<es_proto::FecRecoverer>,
    /// Reception-quality monitor (the §5.3 management numbers).
    monitor: es_proto::StreamMonitor,
    /// The most recent decoded block, kept for concealment.
    last_block: Vec<i16>,
    phase: Phase,
    stream_cfg: AudioConfig,
    codec: CodecId,
    clock: ClockSync,
    stats: SpeakerStats,
    /// How early decoded blocks reach the §3.2 play decision, in
    /// microseconds (0 = at or past the deadline).
    deadline_slack_us: Histogram,
    journal: Option<Journal>,
    verifier: Option<StreamVerifier>,
    autovol: Option<AutoVolume>,
    dev_configured: bool,
    tuned: McastGroup,
    /// Control-plane delegate: session packets arriving on any group
    /// this node listens to are handed up here (the negotiated-mode
    /// wrapper owns the handshake; the speaker stays a §2.3 radio).
    session_hook: Option<SessionHook>,
}

/// Most missing-range entries a speaker holds pending retransmission.
const MAX_MISSING_RANGES: usize = 32;
/// Longest single missing range worth reporting (a jump bigger than
/// this is a stream restart, not a loss burst).
const MAX_MISSING_RANGE_LEN: u32 = 1_024;

impl SpkState {
    /// Notes a freshly detected sequence gap for the NACK ledger.
    fn note_missing_range(&mut self, first: u32, count: u32) {
        if count == 0 || count > MAX_MISSING_RANGE_LEN {
            return;
        }
        self.missing_ranges
            .push((first, count.min(u16::MAX as u32) as u16));
        while self.missing_ranges.len() > MAX_MISSING_RANGES {
            self.missing_ranges.remove(0);
        }
    }

    /// A previously-missing sequence number arrived after all (reorder,
    /// FEC recovery, or a retransmission): shrink or split its range so
    /// it is not NACKed again.
    fn clear_missing(&mut self, seq: u32) {
        let mut out: Vec<(u32, u16)> = Vec::with_capacity(self.missing_ranges.len());
        for &(first, count) in &self.missing_ranges {
            let end = first + count as u32; // exclusive
            if seq < first || seq >= end {
                out.push((first, count));
                continue;
            }
            if seq > first {
                out.push((first, (seq - first) as u16));
            }
            if seq + 1 < end {
                out.push((seq + 1, (end - seq - 1) as u16));
            }
        }
        self.missing_ranges = out;
    }

    /// Checks whether `seq` falls inside a range the healing plane is
    /// refilling, consuming that sequence from the expectation ledger
    /// so a LAN duplicate of the refill is not classified twice.
    fn consume_refill(&mut self, seq: u32) -> bool {
        let mut hit = false;
        let mut out: Vec<(u32, u16)> = Vec::with_capacity(self.refill_expected.len());
        for &(first, count) in &self.refill_expected {
            let end = first + count as u32; // exclusive
            if hit || seq < first || seq >= end {
                out.push((first, count));
                continue;
            }
            hit = true;
            if seq > first {
                out.push((first, (seq - first) as u16));
            }
            if seq + 1 < end {
                out.push((seq + 1, (end - seq - 1) as u16));
            }
        }
        self.refill_expected = out;
        hit
    }
}

/// Callback receiving control-plane packets (see
/// [`EthernetSpeaker::set_session_handler`]).
type SessionHook = Box<dyn FnMut(&mut Sim, es_proto::SessionPacket)>;

/// A running Ethernet Speaker.
#[derive(Clone)]
pub struct EthernetSpeaker {
    state: Shared<SpkState>,
    codecs: Rc<Codecs>,
    lan: Lan,
    node: NodeId,
    dev: Rc<AudioDevice>,
    tap: Shared<OutputTap>,
}

impl EthernetSpeaker {
    /// Attaches the speaker to the LAN, joins its channel and starts
    /// listening.
    pub fn start(sim: &mut Sim, lan: &Lan, cfg: SpeakerConfig) -> EthernetSpeaker {
        let node = lan.attach(cfg.name.clone());
        lan.join(node, cfg.group);
        let (drv, tap) = HwDriver::new();
        let dev = Rc::new(AudioDevice::with_geometry(
            shared(drv),
            cfg.device_ring_capacity,
            cfg.device_block_ms,
        ));
        dev.open().expect("fresh device opens");
        let verifier = cfg.auth_anchor.map(StreamVerifier::new);
        let autovol = cfg
            .auto_volume
            .as_ref()
            .map(|(avc, _)| AutoVolume::new(*avc));
        let tuned = cfg.group;
        let cost_model = cfg.cost_model;
        let state = shared(SpkState {
            serial_busy: false,
            serial_queue: std::collections::VecDeque::new(),
            last_seq: None,
            missing_ranges: Vec::new(),
            refill_expected: Vec::new(),
            seen_seqs: std::collections::BTreeSet::new(),
            fec: None,
            monitor: es_proto::StreamMonitor::new(),
            last_block: Vec::new(),
            phase: Phase::WaitingForControl,
            stream_cfg: AudioConfig::default(),
            codec: CodecId::Pcm,
            clock: ClockSync::new(),
            stats: SpeakerStats::default(),
            deadline_slack_us: Histogram::default(),
            journal: None,
            verifier,
            autovol,
            dev_configured: false,
            tuned,
            session_hook: None,
            cfg,
        });
        let spk = EthernetSpeaker {
            state,
            codecs: Rc::new(Codecs::with_cost_model(cost_model)),
            lan: lan.clone(),
            node,
            dev,
            tap,
        };
        let s2 = spk.clone();
        lan.set_handler(node, move |sim, dg| s2.on_datagram(sim, dg));
        let s4 = spk.clone();
        lan.set_preparer(node, move |dg| s4.prepare(dg));
        // Auto-volume control loop, 4 Hz.
        if spk.state.borrow().autovol.is_some() {
            let s3 = spk.clone();
            let timer =
                es_sim::RepeatingTimer::start(sim, SimDuration::from_millis(250), move |sim| {
                    s3.autovol_tick(sim)
                });
            std::mem::forget(timer);
        }
        spk
    }

    /// Switches channels ("the ability to receive input from the user
    /// (e.g., some remote control device)", §5.3): leaves the old
    /// group, joins the new one, and waits for that stream's control
    /// packet before playing again.
    pub fn tune(&self, sim: &mut Sim, group: McastGroup) {
        let old = {
            let mut st = self.state.borrow_mut();
            let old = st.tuned;
            st.tuned = group;
            st.phase = Phase::WaitingForControl;
            st.clock = ClockSync::new();
            st.dev_configured = false;
            st.last_seq = None;
            st.missing_ranges.clear();
            st.refill_expected.clear();
            st.seen_seqs.clear();
            st.fec = None;
            if let Some(j) = st.journal.clone() {
                j.emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Info,
                    "speaker",
                    "tuned to new channel",
                    &[
                        ("speaker", st.cfg.name.clone()),
                        ("from_group", old.0.to_string()),
                        ("to_group", group.0.to_string()),
                    ],
                );
            }
            old
        };
        self.lan.leave(self.node, old);
        self.lan.join(self.node, group);
    }

    /// The group currently tuned.
    pub fn tuned(&self) -> McastGroup {
        self.state.borrow().tuned
    }

    /// The speaker's configured name.
    pub fn name(&self) -> String {
        self.state.borrow().cfg.name.clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SpeakerStats {
        self.state.borrow().stats
    }

    /// Authentication counters, when auth is enabled.
    pub fn auth_stats(&self) -> Option<VerifierStats> {
        self.state.borrow().verifier.as_ref().map(|v| v.stats())
    }

    /// Reception-quality snapshot (jitter/loss/reorder) — what a §5.3
    /// management console would poll.
    pub fn quality(&self) -> es_proto::QualityReport {
        self.state.borrow().monitor.report()
    }

    /// Drains the missing-sequence ledger: ranges `(first, count)` the
    /// speaker detected as lost and which no late arrival has filled.
    /// The healing plane turns these into NACK retransmit requests;
    /// taking them resets the ledger so a range is reported once.
    pub fn take_missing_ranges(&self) -> Vec<(u32, u16)> {
        let mut st = self.state.borrow_mut();
        let ranges = std::mem::take(&mut st.missing_ranges);
        // The caller will NACK these; remember them so the refills,
        // when they land, are billed as repairs rather than fresh
        // deadline misses (the "refill echo").
        st.refill_expected.extend_from_slice(&ranges);
        while st.refill_expected.len() > MAX_MISSING_RANGES {
            st.refill_expected.remove(0);
        }
        ranges
    }

    /// The DAC output tap (what actually played, with timestamps).
    pub fn tap(&self) -> Shared<OutputTap> {
        self.tap.clone()
    }

    /// The speaker's audio device (ring stats, underruns).
    pub fn device(&self) -> Rc<AudioDevice> {
        self.dev.clone()
    }

    /// The LAN node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current clock offset estimate versus the producer.
    pub fn clock_offset_us(&self) -> Option<i64> {
        self.state.borrow().clock.offset_us()
    }

    /// Current auto-volume gain, if enabled.
    pub fn auto_gain(&self) -> Option<f64> {
        self.state.borrow().autovol.as_ref().map(|a| a.gain())
    }

    /// Attaches a journal for structured diagnostics (tuning, late
    /// packets and the like).
    pub fn set_journal(&self, journal: Journal) {
        self.state.borrow_mut().journal = Some(journal);
    }

    /// Installs the control-plane delegate: session packets received
    /// on any group this node listens to are handed to `f` instead of
    /// being dropped. Used by the negotiated-session wrapper in
    /// `es-core`; the speaker itself stays a stateless radio.
    pub fn set_session_handler(&self, f: impl FnMut(&mut Sim, es_proto::SessionPacket) + 'static) {
        self.state.borrow_mut().session_hook = Some(Box::new(f));
    }

    /// Control-plane FLUSH: drop playback state and re-gate on the
    /// next control packet, exactly as a fresh tune-in would. The
    /// producer uses this to resynchronize a fleet after a seek or a
    /// stream restart.
    pub fn resync(&self, sim: &mut Sim) {
        let mut st = self.state.borrow_mut();
        st.phase = Phase::WaitingForControl;
        st.clock = ClockSync::new();
        st.last_seq = None;
        st.missing_ranges.clear();
        st.refill_expected.clear();
        st.seen_seqs.clear();
        st.stats.session_resyncs += 1;
        if let Some(j) = st.journal.clone() {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "speaker",
                "session flush resync",
                &[("speaker", st.cfg.name.clone())],
            );
        }
    }

    /// Sets the fixed volume gain (the control plane's PARAM update;
    /// auto-volume, when enabled, still multiplies on top).
    pub fn set_volume(&self, volume: f64) {
        self.state.borrow_mut().cfg.volume = volume;
    }

    /// Distribution of deadline slack seen by the §3.2 play decision.
    pub fn deadline_slack(&self) -> Histogram {
        self.state.borrow().deadline_slack_us.clone()
    }

    /// Records speaker counters, the deadline-slack histogram, the
    /// jitter-buffer depth, the producer-clock sync offset and the
    /// [`es_proto::StreamMonitor`] quality numbers into `registry`
    /// under component `speaker`.
    pub fn record_telemetry(&self, registry: &mut Registry) {
        let (stats, slack, offset, report) = {
            let st = self.state.borrow();
            (
                st.stats,
                st.deadline_slack_us.clone(),
                st.clock.offset_us(),
                st.monitor.report(),
            )
        };
        stats.record(registry);
        let depth = self.dev.stats().ring_occupancy;
        let mut s = registry.component("speaker");
        s.histogram("deadline_slack_us", &slack)
            .gauge("jitter_buffer_bytes", depth as f64)
            .gauge("sync_offset_us", offset.unwrap_or(0) as f64)
            .gauge("quality_loss_fraction", report.loss_fraction)
            .gauge("quality_jitter_us", report.jitter_us)
            .counter("quality_received", report.received)
            .counter("quality_lost", report.lost)
            .counter("quality_reordered", report.reordered)
            .counter("quality_duplicates", report.duplicates);
    }

    /// Builds this delivery's pure prepare job for the fleet executor:
    /// packet parse + CRC, and for data packets during playback the
    /// codec decode, all against a `(codec, channels)` snapshot taken
    /// now on the simulation thread. Declines (fully serial delivery)
    /// when stream authentication is active — the verifier must see
    /// packets in order before anything may be parsed as trusted.
    fn prepare(&self, dg: &Datagram) -> Option<es_net::PrepareJob> {
        let (codec, channels, playing, model, name) = {
            let st = self.state.borrow();
            if st.verifier.is_some() {
                return None;
            }
            (
                st.codec,
                st.stream_cfg.channels,
                matches!(st.phase, Phase::Playing),
                st.cfg.cost_model,
                st.cfg.name.clone(),
            )
        };
        let payload = dg.payload.clone();
        let token = payload.as_ptr() as usize;
        Some(Box::new(move |shard: &mut es_telemetry::ShardBuffer| {
            let parsed = es_proto::decode(&payload);
            let decoded = match &parsed {
                Ok(Packet::Data(d)) if playing => {
                    let wire = CodecId::from_wire(d.codec).unwrap_or(codec);
                    let result = lane_decode(model, wire, &d.payload, channels);
                    // Deterministic lane telemetry only — counts and
                    // work units, never wall-clock — so the drained
                    // registry is identical at any lane count.
                    shard.set_instance(&name);
                    let mut scope = shard.component("speaker");
                    scope.counter("lane_decodes", 1);
                    if let Ok((_, work)) = &result {
                        scope.counter("lane_decode_work", *work);
                    }
                    Some((codec, channels, result))
                }
                _ => None,
            };
            Box::new(PreparedRx {
                token,
                parsed,
                decoded,
            }) as Box<dyn std::any::Any + Send>
        }))
    }

    fn on_datagram(&self, sim: &mut Sim, dg: Datagram) {
        self.state.borrow_mut().stats.datagrams += 1;
        // Pick up this delivery's pre-computed parse/decode, if the
        // batch path ran one for us.
        let pre = self
            .lan
            .take_prepared(self.node)
            .and_then(|b| b.downcast::<PreparedRx>().ok())
            .filter(|p| p.token == dg.payload.as_ptr() as usize);
        let raw = dg.payload.as_ref();
        let has_verifier = self.state.borrow().verifier.is_some();
        if has_verifier {
            // Authenticated channel: every packet carries a trailer;
            // nothing plays until its key interval is disclosed.
            if raw.len() <= TRAILER_LEN {
                self.state.borrow_mut().stats.bad_packets += 1;
                return;
            }
            let (body, tbytes) = raw.split_at(raw.len() - TRAILER_LEN);
            let Some(trailer) = es_proto::AuthTrailer::decode(tbytes) else {
                self.state.borrow_mut().stats.bad_packets += 1;
                return;
            };
            let released = {
                let mut st = self.state.borrow_mut();
                let verifier = st.verifier.as_mut().expect("checked above");
                let (released, _reject) = verifier.offer(body, &trailer);
                released
            };
            for msg in released {
                self.handle_packet(sim, &msg);
            }
        } else if let Some(pre) = pre {
            match pre.parsed {
                Ok(pkt) => self.handle_packet_parsed(sim, pkt, pre.decoded),
                Err(_) => self.state.borrow_mut().stats.bad_packets += 1,
            }
        } else {
            self.handle_packet(sim, raw);
        }
    }

    fn handle_packet(&self, sim: &mut Sim, bytes: &[u8]) {
        match es_proto::decode(bytes) {
            Ok(pkt) => self.handle_packet_parsed(sim, pkt, None),
            Err(_) => self.state.borrow_mut().stats.bad_packets += 1,
        }
    }

    fn handle_packet_parsed(&self, sim: &mut Sim, pkt: Packet, pre: Option<PreDecoded>) {
        match pkt {
            Packet::Control(c) => self.on_control(sim, c),
            Packet::Data(d) => {
                self.state.borrow_mut().monitor.on_packet(
                    d.seq,
                    d.play_at_us,
                    sim.now().as_micros(),
                );
                // Feed the FEC tracker first: a recovered packet from an
                // earlier group plays like any other.
                let recovered = self
                    .state
                    .borrow_mut()
                    .fec
                    .as_mut()
                    .and_then(|f| f.on_data(&d));
                self.on_data(sim, d, pre);
                if let Some(r) = recovered {
                    self.state.borrow_mut().stats.fec_recovered += 1;
                    self.on_data(sim, r, None);
                }
            }
            Packet::Parity(p) => {
                let recovered = {
                    let mut st = self.state.borrow_mut();
                    // The healing plane can change the FEC level mid-stream;
                    // a parity packet with a different group size means the
                    // old recoverer's partial state is for a dead layout.
                    if let Some(old) = st.fec.as_ref().map(|f| f.group()) {
                        if old != p.count {
                            st.fec = Some(es_proto::FecRecoverer::new(p.count));
                            if let Some(j) = st.journal.clone() {
                                j.emit(
                                    Stamp::virtual_ns(sim.now().as_nanos()),
                                    Severity::Info,
                                    "speaker",
                                    "fec parity group changed",
                                    &[
                                        ("speaker", st.cfg.name.clone()),
                                        ("from", old.to_string()),
                                        ("to", p.count.to_string()),
                                    ],
                                );
                            }
                        }
                    }
                    let fec = st
                        .fec
                        .get_or_insert_with(|| es_proto::FecRecoverer::new(p.count));
                    fec.on_parity(&p)
                };
                if let Some(r) = recovered {
                    self.state.borrow_mut().stats.fec_recovered += 1;
                    self.on_data(sim, r, None);
                }
            }
            Packet::Announce(_) => { /* catalog handled by es-core's browser */ }
            Packet::Session(sp) => {
                // Take the hook out while calling it so the callback
                // may re-enter speaker methods (tune, resync).
                let hook = self.state.borrow_mut().session_hook.take();
                if let Some(mut hook) = hook {
                    hook(sim, sp);
                    let mut st = self.state.borrow_mut();
                    if st.session_hook.is_none() {
                        st.session_hook = Some(hook);
                    }
                }
            }
        }
    }

    fn on_control(&self, sim: &mut Sim, c: es_proto::ControlPacket) {
        let reconfigure = {
            let mut st = self.state.borrow_mut();
            st.stats.control_packets += 1;
            st.clock.on_control(sim.now(), c.producer_time_us);
            let codec = CodecId::from_wire(c.codec).unwrap_or(CodecId::Pcm);
            let changed = !st.dev_configured || st.stream_cfg != c.config;
            st.stream_cfg = c.config;
            st.codec = codec;
            st.phase = Phase::Playing;
            changed
        };
        if reconfigure {
            // Program the local audio hardware with the stream format
            // the control packet carries (§2.3: the configuration block
            // needed to decode the stream).
            if self.dev.ioctl(sim, Ioctl::SetInfo(c.config)).is_ok() {
                self.state.borrow_mut().dev_configured = true;
            }
        }
    }

    fn on_data(&self, sim: &mut Sim, d: es_proto::DataPacket, pre: Option<PreDecoded>) {
        // §2.3: no control packet yet means the stream cannot be
        // decoded — wait, do not guess.
        let deadline = {
            let mut st = self.state.borrow_mut();
            match st.phase {
                Phase::WaitingForControl => {
                    st.stats.dropped_waiting_control += 1;
                    return;
                }
                Phase::Playing => {}
            }
            let Some(deadline) = st.clock.to_local(d.play_at_us) else {
                st.stats.dropped_waiting_control += 1;
                return;
            };
            deadline
        };
        // Duplicate suppression: a sequence number that already went to
        // playback must never play twice, whether the copy came from
        // the LAN's duplication impairment or from FEC recovering a
        // packet that also arrived on its own.
        {
            let mut st = self.state.borrow_mut();
            if !st.seen_seqs.insert(d.seq) {
                st.stats.dropped_duplicate += 1;
                return;
            }
            // Bounded window: old sequence numbers fall off the front.
            while st.seen_seqs.len() > 512 {
                let oldest = *st.seen_seqs.iter().next().expect("non-empty");
                st.seen_seqs.remove(&oldest);
            }
        }
        // PLC: a jump in the sequence numbers means packets were lost
        // on the wire. Conceal up to three of them by replaying the
        // previous block, faded, at the deadlines the missing packets
        // would have had.
        let (conceal, refill) = {
            let mut st = self.state.borrow_mut();
            // A sequence number inside a range we handed to the healing
            // plane is its NACK retransmission coming back.
            let refill = st.consume_refill(d.seq);
            if refill {
                st.stats.refills_received += 1;
            }
            let gap = match st.last_seq {
                Some(last) if d.seq > last + 1 => {
                    let raw = d.seq - last - 1;
                    st.note_missing_range(last + 1, raw);
                    raw.min(3)
                }
                _ => 0,
            };
            if d.seq >= st.last_seq.unwrap_or(0) {
                st.last_seq = Some(d.seq);
            } else {
                // A late arrival (reorder, FEC recovery or a healing-plane
                // retransmission) fills a hole we may have NACKed.
                st.clear_missing(d.seq);
            }
            let conceal = if gap > 0 && st.cfg.conceal_loss && !st.last_block.is_empty() {
                Some((gap, st.last_block.clone()))
            } else {
                None
            };
            (conceal, refill)
        };
        if let Some((gap, block)) = conceal {
            let dur_ns = {
                let st = self.state.borrow();
                st.stream_cfg.nanos_for_bytes(
                    (block.len() * st.stream_cfg.encoding.bytes_per_sample() as usize) as u64,
                )
            };
            for k in 1..=gap {
                // The k-th missing packet before this one.
                let back = (gap - k + 1) as u64 * dur_ns;
                let gap_deadline =
                    es_sim::SimTime::from_nanos(deadline.as_nanos().saturating_sub(back));
                let mut faded = block.clone();
                let fade = 0.6f64.powi(k as i32);
                es_audio::mix::apply_gain(&mut faded, fade);
                self.state.borrow_mut().stats.concealed_packets += 1;
                self.schedule_play(sim, faded, gap_deadline, false);
            }
        }
        let pending = Pending {
            payload: d.payload,
            codec_wire: d.codec,
            deadline,
            pre,
            refill,
        };
        let serial_depth = self.state.borrow().cfg.serial_queue_depth;
        match serial_depth {
            None => self.process_pipelined(sim, pending),
            Some(depth) => {
                let start = {
                    let mut st = self.state.borrow_mut();
                    if st.serial_busy {
                        if st.serial_queue.len() >= depth {
                            // The player thread is wedged and the
                            // receive buffer is full: §3.4's lost audio.
                            st.stats.dropped_busy += 1;
                            None
                        } else {
                            st.serial_queue.push_back(pending);
                            None
                        }
                    } else {
                        st.serial_busy = true;
                        Some(pending)
                    }
                };
                if let Some(p) = start {
                    self.process_serial(sim, p);
                }
            }
        }
    }

    // es-hot-path
    /// Decodes a pending packet, billing the CPU model; returns the
    /// samples and the (possibly future) completion time. A parallel
    /// pre-decode is consumed only while its `(codec, channels)`
    /// snapshot still matches the live stream state (a control packet
    /// can reconfigure the stream while a packet sits in the serial
    /// queue); otherwise the payload is re-decoded here.
    fn decode_pending(
        &self,
        sim: &mut Sim,
        p: &mut Pending,
    ) -> Option<(Vec<i16>, es_sim::SimTime)> {
        let (codec, channels) = {
            let st = self.state.borrow();
            (st.codec, st.stream_cfg.channels)
        };
        let decoded = match p.pre.take() {
            Some((snap_codec, snap_channels, result))
                if snap_codec == codec && snap_channels == channels =>
            {
                result
            }
            stale => {
                if let Some((_, _, Ok((buf, _)))) = stale {
                    // A reconfiguration invalidated the lane's work;
                    // at least reclaim its buffer.
                    recycle_sample_buf(buf);
                }
                let wire_codec = CodecId::from_wire(p.codec_wire).unwrap_or(codec);
                let mut out = take_sample_buf();
                match self
                    .codecs
                    .decode_into(wire_codec, &p.payload, channels, &mut out)
                {
                    Ok(work) => Ok((out, work)),
                    Err(e) => {
                        recycle_sample_buf(out);
                        Err(e)
                    }
                }
            }
        };
        let (samples, work) = match decoded {
            Ok(x) => x,
            Err(_) => {
                self.state.borrow_mut().stats.decode_errors += 1;
                return None;
            }
        };
        let decoded_at = {
            let mut st = self.state.borrow_mut();
            st.stats.decode_work_units += work;
            match &st.cfg.cpu {
                Some(cpu) => cpu
                    .borrow_mut()
                    .submit(sim.now(), crate::decode_work_to_cycles(work)),
                None => sim.now(),
            }
        };
        Some((samples, decoded_at))
    }

    /// The default pipelined path: every packet decodes independently
    /// and is scheduled at its deadline.
    fn process_pipelined(&self, sim: &mut Sim, mut p: Pending) {
        let Some((samples, decoded_at)) = self.decode_pending(sim, &mut p) else {
            return;
        };
        {
            let mut st = self.state.borrow_mut();
            if st.cfg.conceal_loss {
                // Reuse the standing concealment buffer instead of
                // cloning into a fresh allocation per packet.
                st.last_block.clear();
                st.last_block.extend_from_slice(&samples);
            }
        }
        let deadline = p.deadline;
        let refill = p.refill;
        let spk = self.clone();
        sim.schedule_at(decoded_at, move |sim| {
            spk.schedule_play(sim, samples, deadline, refill);
        });
    }

    /// The §3.4 single-threaded path: decode, sleep to the deadline,
    /// then a blocking write; only then is the next packet considered.
    fn process_serial(&self, sim: &mut Sim, mut p: Pending) {
        let Some((samples, decoded_at)) = self.decode_pending(sim, &mut p) else {
            self.finish_serial(sim);
            return;
        };
        let deadline = p.deadline;
        let refill = p.refill;
        let spk = self.clone();
        sim.schedule_at(decoded_at, move |sim| {
            let epsilon = spk.state.borrow().cfg.epsilon;
            spk.observe_slack(sim, deadline);
            match decide(deadline, sim.now(), epsilon) {
                PlayDecision::Sleep(d) => {
                    let spk2 = spk.clone();
                    sim.schedule_in(d, move |sim| spk2.serial_write(sim, samples));
                }
                PlayDecision::PlayNow => spk.serial_write(sim, samples),
                PlayDecision::Discard { .. } => {
                    recycle_sample_buf(samples);
                    spk.note_late_drop(sim, deadline, refill);
                    spk.finish_serial(sim);
                }
            }
        });
    }

    fn serial_write(&self, sim: &mut Sim, mut samples: Vec<i16>) {
        {
            let mut st = self.state.borrow_mut();
            st.stats.data_packets += 1;
            let gain = st.cfg.volume * st.autovol.as_ref().map_or(1.0, |a| a.gain());
            if (gain - 1.0).abs() > 1e-9 {
                apply_gain(&mut samples, gain);
            }
        }
        let cfg = self.state.borrow().stream_cfg;
        let mut bytes = take_byte_buf();
        es_audio::convert::encode_samples_into(&samples, cfg.encoding, &mut bytes);
        recycle_sample_buf(samples);
        self.serial_write_bytes(sim, bytes, 0, cfg);
    }

    /// A blocking `write(2)`: short writes park the player thread on
    /// the device's writable wakeup.
    fn serial_write_bytes(&self, sim: &mut Sim, bytes: Vec<u8>, offset: usize, cfg: AudioConfig) {
        // es-allow(panic-path): offset only advances by accepted byte counts and re-arming checks next < bytes.len()
        let n = self.dev.write(sim, &bytes[offset..]).unwrap_or(0);
        {
            let mut st = self.state.borrow_mut();
            st.stats.samples_played += (n / cfg.encoding.bytes_per_sample() as usize) as u64;
        }
        let next = offset + n;
        if next < bytes.len() {
            let spk = self.clone();
            self.dev.on_writable(move |sim| {
                spk.serial_write_bytes(sim, bytes, next, cfg);
            });
        } else {
            recycle_byte_buf(bytes);
            self.finish_serial(sim);
        }
    }

    /// The player thread finished a packet: take the next one or go
    /// idle.
    fn finish_serial(&self, sim: &mut Sim) {
        let next = {
            let mut st = self.state.borrow_mut();
            match st.serial_queue.pop_front() {
                Some(p) => Some(p),
                None => {
                    st.serial_busy = false;
                    None
                }
            }
        };
        if let Some(p) = next {
            self.process_serial(sim, p);
        }
    }

    /// Applies §3.2's sleep/play/discard rule to a decoded block.
    fn schedule_play(&self, sim: &mut Sim, samples: Vec<i16>, deadline: SimTime, refill: bool) {
        if self.state.borrow().cfg.asap_playback {
            // The early-ES pipeline: straight to the device.
            self.write_out(sim, samples);
            return;
        }
        let epsilon = self.state.borrow().cfg.epsilon;
        self.observe_slack(sim, deadline);
        match decide(deadline, sim.now(), epsilon) {
            PlayDecision::Sleep(d) => {
                let spk = self.clone();
                sim.schedule_in(d, move |sim| spk.write_out_resync(sim, samples));
            }
            PlayDecision::PlayNow => self.write_out(sim, samples),
            PlayDecision::Discard { .. } => {
                recycle_sample_buf(samples);
                self.note_late_drop(sim, deadline, refill);
            }
        }
    }

    /// §3.2's catch-up rule applied to the device timeline: "throwing
    /// away data up until the current wall time".
    ///
    /// The card block-quantizes writes onto a DMA grid whose phase is
    /// fixed at the first `trigger_output` — which the speaker issued
    /// using its *initial* clock snap. If that first control packet
    /// was itself delayed, the grid is permanently late: once the
    /// clock estimate improves, deadline-paced writes merely wait
    /// longer for the next boundary while the audible timeline stays
    /// exactly as late as the anchor was. So when a block has slept to
    /// its deadline and would still start more than epsilon late on
    /// the current grid, flush and re-trigger the device so the grid
    /// re-anchors at this deadline. The audio between the old and new
    /// anchors is thrown away — the paper's catch-up rule. (The
    /// unpaced PlayNow path keeps §3.1 overflow semantics: blocks
    /// arriving in a burst drop at the full ring, not here.)
    fn write_out_resync(&self, sim: &mut Sim, samples: Vec<i16>) {
        let epsilon = self.state.borrow().cfg.epsilon;
        // This block's projected start: wait for the next DMA boundary,
        // then behind whatever the ring already holds.
        let boundary_wait = self
            .dev
            .next_block_start(sim.now())
            .map_or(SimDuration::ZERO, |b| b.saturating_since(sim.now()));
        let queued = SimDuration::from_nanos(
            self.dev
                .config()
                .nanos_for_bytes(self.dev.stats().ring_occupancy as u64),
        );
        let lateness = boundary_wait + queued;
        if lateness > epsilon {
            self.dev.restart_output(sim);
            let mut st = self.state.borrow_mut();
            st.stats.playback_resyncs += 1;
            if let Some(j) = st.journal.clone() {
                j.emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Debug,
                    "speaker",
                    "playback grid resynced to stream clock",
                    &[
                        ("speaker", st.cfg.name.clone()),
                        ("late_us", lateness.as_micros().to_string()),
                    ],
                );
            }
        }
        self.write_out(sim, samples);
    }

    /// Records how early (or late: slack 0) a block reached the play
    /// decision.
    fn observe_slack(&self, sim: &mut Sim, deadline: SimTime) {
        let slack = deadline.saturating_since(sim.now());
        self.state
            .borrow_mut()
            .deadline_slack_us
            .observe(slack.as_micros());
    }

    /// Counts a §3.2 deadline miss and journals it. A late NACK refill
    /// is billed to `refill_late` instead: the gap it repaired was
    /// already counted as lost when detected, and classifying the
    /// repair itself as a miss made every loss burst cost the healing
    /// detector a second sick epoch (the "refill echo").
    fn note_late_drop(&self, sim: &mut Sim, deadline: SimTime, refill: bool) {
        let mut st = self.state.borrow_mut();
        if refill {
            st.stats.refill_late += 1;
        } else {
            st.stats.dropped_late += 1;
        }
        if let Some(j) = st.journal.clone() {
            let late = sim.now().saturating_since(deadline);
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Debug,
                "speaker",
                if refill {
                    "nack refill arrived past deadline"
                } else {
                    "data packet discarded past deadline"
                },
                &[
                    ("speaker", st.cfg.name.clone()),
                    ("late_us", late.as_micros().to_string()),
                ],
            );
        }
    }

    /// Writes a decoded block to the device, applying volume; a full
    /// ring drops the excess (receiver-side overflow, §3.1).
    fn write_out(&self, sim: &mut Sim, mut samples: Vec<i16>) {
        {
            let mut st = self.state.borrow_mut();
            st.stats.data_packets += 1;
            let gain = st.cfg.volume * st.autovol.as_ref().map_or(1.0, |a| a.gain());
            if (gain - 1.0).abs() > 1e-9 {
                apply_gain(&mut samples, gain);
            }
        }
        let cfg = self.state.borrow().stream_cfg;
        let mut bytes = take_byte_buf();
        es_audio::convert::encode_samples_into(&samples, cfg.encoding, &mut bytes);
        recycle_sample_buf(samples);
        let written = self.dev.write(sim, &bytes).unwrap_or(0);
        {
            let mut st = self.state.borrow_mut();
            st.stats.samples_played += (written / cfg.encoding.bytes_per_sample() as usize) as u64;
            if written < bytes.len() {
                st.stats.dropped_overflow_bytes += (bytes.len() - written) as u64;
            }
        }
        recycle_byte_buf(bytes);
    }

    // es-hot-path-end

    /// One auto-volume control period: sample the simulated microphone
    /// and update the gain.
    fn autovol_tick(&self, sim: &mut Sim) {
        let now_s = sim.now().as_secs_f64();
        let (ambient, coupling) = {
            let st = self.state.borrow();
            let Some((avc, profile)) = st.cfg.auto_volume.as_ref() else {
                return;
            };
            (profile.level_at(now_s), avc.self_coupling)
        };
        // What the speaker itself is putting out right now: the RMS of
        // the most recent ~250 ms of tap output.
        let out_rms = {
            let tap = self.tap.borrow();
            let recent = tap.samples_since(SimTime::from_nanos(
                sim.now().as_nanos().saturating_sub(250_000_000),
            ));
            es_audio::analysis::rms(&recent)
        };
        let mic = crate::autovol::microphone_rms(ambient, out_rms, coupling);
        if let Some(av) = self.state.borrow_mut().autovol.as_mut() {
            av.update(mic, out_rms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use es_net::LanConfig;
    use es_proto::{encode_control, encode_data, ControlPacket, DataPacket};

    fn lan() -> (Sim, Lan, NodeId) {
        let sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer");
        (sim, lan, producer)
    }

    fn control_packet(seq: u32, t_us: u64) -> Bytes {
        encode_control(&ControlPacket {
            stream_id: 1,
            seq,
            producer_time_us: t_us,
            config: AudioConfig::CD,
            codec: CodecId::Pcm.to_wire(),
            quality: 0,
            control_interval_ms: 500,
            flags: 0,
        })
    }

    fn data_packet(seq: u32, play_at_us: u64, frames: usize) -> Bytes {
        let samples = vec![1_000i16; frames * 2];
        encode_data(&DataPacket {
            stream_id: 1,
            seq,
            play_at_us,
            codec: CodecId::Pcm.to_wire(),
            payload: Bytes::from(es_audio::convert::encode_samples(
                &samples,
                es_audio::Encoding::Slinear16Le,
            )),
        })
    }

    #[test]
    fn data_before_control_is_dropped() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, data_packet(0, 1_000, 2_205));
        sim.run();
        assert_eq!(spk.stats().dropped_waiting_control, 1);
        assert_eq!(spk.stats().data_packets, 0);
        // Control arrives; subsequent data plays.
        let now_us = sim.now().as_micros();
        lan.multicast(&mut sim, producer, g, control_packet(0, now_us));
        sim.run();
        let play_at = sim.now().as_micros() + 100_000;
        lan.multicast(&mut sim, producer, g, data_packet(1, play_at, 2_205));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(spk.stats().data_packets, 1);
        assert!(spk.stats().samples_played > 0);
    }

    #[test]
    fn late_data_is_discarded_within_epsilon_rules() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let mut cfg = SpeakerConfig::new("es1", g);
        cfg.epsilon = SimDuration::from_millis(20);
        let spk = EthernetSpeaker::start(&mut sim, &lan, cfg);
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        // Now is ~0.0002s; a deadline 100 ms in the past is too late…
        lan.multicast(&mut sim, producer, g, data_packet(0, 0, 2_205));
        sim.run_for(SimDuration::from_millis(200));
        // …wait: deadline 0 arrives at ~200 us: within epsilon, plays.
        assert_eq!(spk.stats().data_packets, 1);
        // A deadline epsilon+ in the past discards.
        let past = sim.now().as_micros().saturating_sub(50_000);
        lan.multicast(&mut sim, producer, g, data_packet(1, past, 2_205));
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(spk.stats().dropped_late, 1);
    }

    #[test]
    fn future_deadline_delays_playback() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        let deadline_us = 500_000u64;
        lan.multicast(&mut sim, producer, g, data_packet(0, deadline_us, 2_205));
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(spk.stats().samples_played, 0, "must still be sleeping");
        sim.run_until(SimTime::from_millis(700));
        assert!(spk.stats().samples_played > 0);
        let t0 = spk.tap().borrow().first_block_time().unwrap();
        // Written at ~500 ms (clock offset ≈ transmission delay).
        assert!(
            (t0.as_millis() as i64 - 500).abs() <= 60,
            "first audio at {t0}"
        );
    }

    #[test]
    fn ring_overflow_drops_bytes() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let mut cfg = SpeakerConfig::new("es1", g);
        cfg.device_ring_capacity = 16_384;
        let spk = EthernetSpeaker::start(&mut sim, &lan, cfg);
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        // Blast 10 packets of 50 ms each, all due "now" — the §3.1
        // no-rate-limit pathology.
        for seq in 0..10 {
            lan.multicast(&mut sim, producer, g, data_packet(seq, 1_000, 2_205));
        }
        sim.run_for(SimDuration::from_millis(100));
        let st = spk.stats();
        assert!(st.dropped_overflow_bytes > 0, "{st:?}");
    }

    #[test]
    fn tune_switches_groups_and_regates() {
        let (mut sim, lan, producer) = lan();
        let g1 = McastGroup(1);
        let g2 = McastGroup(2);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g1));
        lan.multicast(&mut sim, producer, g1, control_packet(0, 0));
        sim.run();
        assert_eq!(spk.stats().control_packets, 1);
        spk.tune(&mut sim, g2);
        assert_eq!(spk.tuned(), g2);
        assert!(!lan.is_member(spk.node(), g1));
        assert!(lan.is_member(spk.node(), g2));
        // Old channel's packets no longer arrive; new channel gates on
        // control again.
        lan.multicast(&mut sim, producer, g1, data_packet(5, 1_000, 100));
        lan.multicast(&mut sim, producer, g2, data_packet(0, 1_000, 100));
        sim.run();
        let st = spk.stats();
        assert_eq!(st.dropped_waiting_control, 1, "g2 data gated");
        assert_eq!(st.data_packets, 0);
    }

    #[test]
    fn corrupt_packets_are_counted_not_played() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        let mut bytes = control_packet(0, 0).to_vec();
        bytes[5] ^= 0xFF;
        lan.multicast(&mut sim, producer, g, Bytes::from(bytes));
        sim.run();
        assert_eq!(spk.stats().bad_packets, 1);
        assert_eq!(spk.stats().control_packets, 0);
    }

    #[test]
    fn quality_monitor_reports_health() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        for seq in [0u32, 1, 2, 4, 5] {
            lan.multicast(
                &mut sim,
                producer,
                g,
                data_packet(seq, 500_000 + seq as u64 * 50_000, 2_205),
            );
        }
        sim.run_for(SimDuration::from_secs(1));
        let q = spk.quality();
        assert_eq!(q.received, 5);
        assert_eq!(q.lost, 1, "seq 3 missing");
        assert!(q.loss_fraction > 0.1);
        assert_ne!(q.grade(), "good");
    }

    #[test]
    fn gap_is_concealed_when_enabled() {
        let (mut sim, net, producer) = lan();
        let g = McastGroup(1);
        let mut cfg = SpeakerConfig::new("plc", g);
        cfg.conceal_loss = true;
        let spk = EthernetSpeaker::start(&mut sim, &net, cfg);
        net.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        // Packets 0, 1, then 4 (2 and 3 lost on the wire).
        for (seq, ms) in [(0u32, 300u64), (1, 350), (4, 500)] {
            net.multicast(&mut sim, producer, g, data_packet(seq, ms * 1_000, 2_205));
        }
        sim.run_for(SimDuration::from_secs(1));
        let st = spk.stats();
        assert_eq!(st.concealed_packets, 2, "{st:?}");
        // Concealed audio is faded copies of packet 1's constant 1000s.
        let played = spk.tap().borrow().samples();
        let nonzero = played.iter().filter(|&&s| s != 0).count();
        // 5 packets' worth of audio (3 real + 2 concealed), not 3.
        assert!(
            nonzero > 4 * 4_410 - 500,
            "concealment should fill the gap: {nonzero} non-zero samples"
        );
        // And without PLC the same run leaves the gap silent.
        let (mut sim2, lan2, producer2) = lan();
        let spk2 = EthernetSpeaker::start(&mut sim2, &lan2, SpeakerConfig::new("raw", g));
        lan2.multicast(&mut sim2, producer2, g, control_packet(0, 0));
        sim2.run();
        for (seq, ms) in [(0u32, 300u64), (1, 350), (4, 500)] {
            lan2.multicast(&mut sim2, producer2, g, data_packet(seq, ms * 1_000, 2_205));
        }
        sim2.run_for(SimDuration::from_secs(1));
        assert_eq!(spk2.stats().concealed_packets, 0);
        let played2 = spk2.tap().borrow().samples();
        let nonzero2 = played2.iter().filter(|&&s| s != 0).count();
        assert!(nonzero2 < nonzero, "{nonzero2} vs {nonzero}");
    }

    #[test]
    fn volume_scales_output() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let mut cfg = SpeakerConfig::new("quiet", g);
        cfg.volume = 0.5;
        let spk = EthernetSpeaker::start(&mut sim, &lan, cfg);
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        lan.multicast(&mut sim, producer, g, data_packet(0, 10_000, 2_205));
        sim.run_for(SimDuration::from_millis(200));
        let played = spk.tap().borrow().samples();
        let peak = played.iter().map(|&s| s.abs()).max().unwrap_or(0);
        assert_eq!(peak, 500, "1000 * 0.5");
    }

    #[test]
    fn duplicate_data_packets_play_once() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        // Each packet sent twice — the LAN duplication impairment seen
        // from the receiver side.
        for seq in 0..5u32 {
            let play_at = 300_000 + seq as u64 * 50_000;
            lan.multicast(&mut sim, producer, g, data_packet(seq, play_at, 2_205));
            lan.multicast(&mut sim, producer, g, data_packet(seq, play_at, 2_205));
        }
        sim.run_for(SimDuration::from_secs(1));
        let st = spk.stats();
        assert_eq!(st.dropped_duplicate, 5, "{st:?}");
        assert_eq!(st.data_packets, 5, "each timestamp plays exactly once");
        assert_eq!(st.samples_played, 5 * 4_410, "no doubled audio");
        // The monitor still sees the duplicates (management numbers).
        assert_eq!(spk.quality().duplicates, 5);
    }

    #[test]
    fn tune_resets_duplicate_window() {
        let (mut sim, lan, producer) = lan();
        let g1 = McastGroup(1);
        let g2 = McastGroup(2);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g1));
        lan.multicast(&mut sim, producer, g1, control_packet(0, 0));
        sim.run();
        lan.multicast(&mut sim, producer, g1, data_packet(0, 300_000, 100));
        sim.run_for(SimDuration::from_millis(400));
        assert_eq!(spk.stats().data_packets, 1);
        // New channel reuses sequence number 0: it must not be filtered
        // as a duplicate of the old stream's packet 0.
        spk.tune(&mut sim, g2);
        let now_us = sim.now().as_micros();
        lan.multicast(&mut sim, producer, g2, control_packet(0, now_us));
        sim.run();
        lan.multicast(
            &mut sim,
            producer,
            g2,
            data_packet(0, now_us + 300_000, 100),
        );
        sim.run_for(SimDuration::from_secs(1));
        let st = spk.stats();
        assert_eq!(st.dropped_duplicate, 0, "{st:?}");
        assert_eq!(st.data_packets, 2);
    }

    #[test]
    fn missing_ranges_noted_and_pruned_on_late_fill() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        let base = sim.now().as_micros() + 400_000;
        // Sequences 0 then 5: a four-packet hole [1, 4].
        lan.multicast(&mut sim, producer, g, data_packet(0, base, 100));
        sim.run();
        lan.multicast(&mut sim, producer, g, data_packet(5, base + 50_000, 100));
        sim.run();
        // Sequence 2 arrives late (a retransmission): the hole splits.
        lan.multicast(&mut sim, producer, g, data_packet(2, base + 20_000, 100));
        sim.run();
        let ranges = spk.take_missing_ranges();
        assert_eq!(ranges, vec![(1, 1), (3, 2)], "split around the late fill");
        // The ledger drains on take.
        assert!(spk.take_missing_ranges().is_empty());
        sim.run_for(SimDuration::from_secs(1));
    }

    #[test]
    fn resync_clears_missing_ranges() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        let base = sim.now().as_micros() + 400_000;
        lan.multicast(&mut sim, producer, g, data_packet(0, base, 100));
        sim.run();
        lan.multicast(&mut sim, producer, g, data_packet(3, base + 30_000, 100));
        sim.run();
        spk.resync(&mut sim);
        assert!(
            spk.take_missing_ranges().is_empty(),
            "flush must forget pre-resync gaps"
        );
        sim.run_for(SimDuration::from_secs(1));
    }

    #[test]
    fn late_refill_is_billed_as_repair_not_deadline_miss() {
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        let base = sim.now().as_micros() + 200_000;
        // Sequences 0 then 3: a two-packet hole [1, 2].
        lan.multicast(&mut sim, producer, g, data_packet(0, base, 100));
        sim.run();
        lan.multicast(&mut sim, producer, g, data_packet(3, base + 30_000, 100));
        sim.run();
        // The healing plane drains the ledger into a NACK…
        assert_eq!(spk.take_missing_ranges(), vec![(1, 2)]);
        // …and the retransmission lands long after the original
        // deadlines (base + 10/20 ms, epsilon 20 ms).
        sim.run_until(SimTime::from_millis(800));
        lan.multicast(&mut sim, producer, g, data_packet(1, base + 10_000, 100));
        lan.multicast(&mut sim, producer, g, data_packet(2, base + 20_000, 100));
        sim.run_for(SimDuration::from_millis(100));
        let st = spk.stats();
        assert_eq!(st.refills_received, 2, "{st:?}");
        assert_eq!(st.refill_late, 2, "{st:?}");
        assert_eq!(
            st.dropped_late, 0,
            "a late refill must not echo as a fresh deadline miss: {st:?}"
        );
        // A late packet that is NOT a refill still counts as a miss.
        lan.multicast(&mut sim, producer, g, data_packet(4, base + 40_000, 100));
        sim.run_for(SimDuration::from_millis(100));
        let st = spk.stats();
        assert_eq!(st.dropped_late, 1, "{st:?}");
        assert_eq!(st.refill_late, 2, "{st:?}");
    }

    #[test]
    fn parity_group_change_rebuilds_recoverer() {
        use es_proto::{encode_parity, ParityAccumulator};
        let (mut sim, lan, producer) = lan();
        let g = McastGroup(1);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("es1", g));
        lan.multicast(&mut sim, producer, g, control_packet(0, 0));
        sim.run();
        let base = sim.now().as_micros() + 400_000;
        let raw = |seq: u32| data_packet(seq, base + seq as u64 * 10_000, 100);
        let data_of = |bytes: &Bytes| {
            let es_proto::Packet::Data(d) = es_proto::decode(bytes).unwrap() else {
                unreachable!()
            };
            d
        };
        // Priming group [0, 4): fully delivered. Its parity instantiates
        // the recoverer (it is created lazily on first parity).
        let mut acc = ParityAccumulator::new(4);
        let mut parity = None;
        for seq in 0..4u32 {
            let b = raw(seq);
            parity = acc.absorb(&data_of(&b)).or(parity);
            lan.multicast(&mut sim, producer, g, b);
            sim.run();
        }
        lan.multicast(&mut sim, producer, g, encode_parity(&parity.unwrap()));
        sim.run();
        // Lossy group [4, 8): seq 6 withheld — parity rebuilds it.
        let mut parity = None;
        for seq in 4..8u32 {
            let b = raw(seq);
            parity = acc.absorb(&data_of(&b)).or(parity);
            if seq != 6 {
                lan.multicast(&mut sim, producer, g, b);
                sim.run();
            }
        }
        lan.multicast(&mut sim, producer, g, encode_parity(&parity.unwrap()));
        sim.run();
        assert_eq!(spk.stats().fec_recovered, 1, "{:?}", spk.stats());
        // The healing plane tightens FEC to groups of 2: the first
        // count=2 parity must rebuild the recoverer, which then still
        // recovers a loss at the new level (parity-first ordering).
        let mut acc2 = ParityAccumulator::new(2);
        let mut parity2 = None;
        for seq in 8..10u32 {
            parity2 = acc2.absorb(&data_of(&raw(seq))).or(parity2);
        }
        lan.multicast(&mut sim, producer, g, encode_parity(&parity2.unwrap()));
        sim.run();
        lan.multicast(&mut sim, producer, g, raw(8)); // seq 9 withheld
        sim.run();
        assert_eq!(spk.stats().fec_recovered, 2, "{:?}", spk.stats());
        sim.run_for(SimDuration::from_secs(1));
    }
}
