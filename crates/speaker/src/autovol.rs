//! Automatic volume control from ambient noise (§5.2).
//!
//! "One example will be to set the volume level automatically depending
//! on the ambient noise level and the type of audio stream. So for
//! background music the ES would lower the volume if the area is quiet
//! ... if an announcement is being made, then the volume should be
//! increased if there is a lot of background noise." The speaker uses
//! its microphone input, which "allows the ES to compare its own output
//! against the ambient levels".
//!
//! The microphone is simulated: it hears the room's ambient noise
//! profile plus a coupling fraction of the speaker's own output, and
//! the control loop estimates the ambient level by subtracting the
//! known output power — exactly the comparison the paper describes.

use es_audio::mix::db_to_gain;
#[cfg(test)]
use es_audio::mix::gain_to_db;

/// What kind of content the channel carries, which flips the control
/// law's direction for quiet rooms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentKind {
    /// Background music: follow the room down — quiet room, quiet
    /// music.
    BackgroundMusic,
    /// Announcements: fight the room — noisy room, louder speech.
    Announcement,
}

/// Auto-volume configuration.
#[derive(Debug, Clone, Copy)]
pub struct AutoVolumeConfig {
    /// Content type driving the control law.
    pub kind: ContentKind,
    /// Gain applied at the reference ambient level, in dB.
    pub base_gain_db: f64,
    /// Ambient RMS regarded as a "normal" room.
    pub reference_ambient: f64,
    /// dB of gain change per dB of ambient change (positive; the sign
    /// comes from [`ContentKind`]).
    pub slope: f64,
    /// Gain bounds in dB.
    pub min_gain_db: f64,
    /// Upper gain bound in dB.
    pub max_gain_db: f64,
    /// Per-update smoothing factor in `(0, 1]`.
    pub smoothing: f64,
    /// Fraction of the speaker's own output power the microphone picks
    /// up.
    pub self_coupling: f64,
}

impl AutoVolumeConfig {
    /// Defaults for background music.
    pub fn music() -> Self {
        AutoVolumeConfig {
            kind: ContentKind::BackgroundMusic,
            base_gain_db: 0.0,
            reference_ambient: 0.05,
            slope: 0.8,
            min_gain_db: -30.0,
            max_gain_db: 6.0,
            smoothing: 0.25,
            self_coupling: 0.1,
        }
    }

    /// Defaults for announcements.
    pub fn announcement() -> Self {
        AutoVolumeConfig {
            kind: ContentKind::Announcement,
            base_gain_db: 0.0,
            reference_ambient: 0.05,
            slope: 1.0,
            min_gain_db: -6.0,
            max_gain_db: 18.0,
            smoothing: 0.5,
            self_coupling: 0.1,
        }
    }
}

/// The ambient-tracking gain controller.
#[derive(Debug, Clone)]
pub struct AutoVolume {
    cfg: AutoVolumeConfig,
    gain_db: f64,
    last_ambient_estimate: f64,
}

impl AutoVolume {
    /// Creates a controller at its base gain.
    pub fn new(cfg: AutoVolumeConfig) -> Self {
        AutoVolume {
            gain_db: cfg.base_gain_db,
            last_ambient_estimate: cfg.reference_ambient,
            cfg,
        }
    }

    /// The current gain as a linear factor.
    pub fn gain(&self) -> f64 {
        db_to_gain(self.gain_db)
    }

    /// The current gain in dB.
    pub fn gain_db(&self) -> f64 {
        self.gain_db
    }

    /// The most recent ambient estimate (RMS, full scale).
    pub fn ambient_estimate(&self) -> f64 {
        self.last_ambient_estimate
    }

    /// Feeds one control period: `mic_rms` is what the microphone
    /// heard, `output_rms` what the speaker was playing (post-gain).
    /// Updates and returns the linear gain.
    pub fn update(&mut self, mic_rms: f64, output_rms: f64) -> f64 {
        // Powers add; subtract our own contribution to estimate the
        // room ("compare its own output against the ambient levels").
        let self_power = (output_rms * self.cfg.self_coupling).powi(2);
        let ambient_power = (mic_rms * mic_rms - self_power).max(0.0);
        let ambient = ambient_power.sqrt().max(1e-4);
        self.last_ambient_estimate = ambient;

        let ambient_db_rel = 20.0 * (ambient / self.cfg.reference_ambient).log10();
        let direction = match self.cfg.kind {
            // Louder room -> louder announcements.
            ContentKind::Announcement => 1.0,
            // Quieter room -> quieter music (equivalently: louder room,
            // somewhat louder music, but tracking downward matters
            // most).
            ContentKind::BackgroundMusic => 1.0,
        };
        let target = (self.cfg.base_gain_db + direction * self.cfg.slope * ambient_db_rel)
            .clamp(self.cfg.min_gain_db, self.cfg.max_gain_db);
        self.gain_db += (target - self.gain_db) * self.cfg.smoothing;
        self.gain_db = self
            .gain_db
            .clamp(self.cfg.min_gain_db, self.cfg.max_gain_db);
        db_to_gain(self.gain_db)
    }
}

/// A piecewise-constant ambient noise profile for scenarios: "the
/// factory floor goes loud at 9:00".
#[derive(Debug, Clone, Default)]
pub struct AmbientProfile {
    /// `(from_second, rms_level)` steps, sorted by time.
    steps: Vec<(f64, f64)>,
}

impl AmbientProfile {
    /// A constant ambient level.
    pub fn constant(rms: f64) -> Self {
        AmbientProfile {
            steps: vec![(0.0, rms)],
        }
    }

    /// Builds a profile from `(from_second, rms)` steps (sorted
    /// internally).
    pub fn steps(mut steps: Vec<(f64, f64)>) -> Self {
        steps.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN times"));
        AmbientProfile { steps }
    }

    /// The ambient RMS at `t` seconds.
    pub fn level_at(&self, t: f64) -> f64 {
        let mut level = 0.0;
        for &(from, rms) in &self.steps {
            if t >= from {
                level = rms;
            } else {
                break;
            }
        }
        level
    }
}

/// Simulates the microphone: ambient plus coupled self-output, powers
/// added.
pub fn microphone_rms(ambient_rms: f64, output_rms: f64, self_coupling: f64) -> f64 {
    (ambient_rms * ambient_rms + (output_rms * self_coupling).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(av: &mut AutoVolume, ambient: f64, output: f64, rounds: usize) -> f64 {
        let mut g = av.gain();
        for _ in 0..rounds {
            let mic = microphone_rms(ambient, output * g, av.cfg.self_coupling);
            g = av.update(mic, output * g);
        }
        g
    }

    #[test]
    fn announcements_get_louder_in_noise() {
        let mut av = AutoVolume::new(AutoVolumeConfig::announcement());
        let quiet = settle(&mut av, 0.05, 0.2, 50);
        let mut av = AutoVolume::new(AutoVolumeConfig::announcement());
        let noisy = settle(&mut av, 0.4, 0.2, 50);
        assert!(
            noisy > quiet * 2.0,
            "noisy room must raise announcement gain: {quiet} -> {noisy}"
        );
    }

    #[test]
    fn music_gets_quieter_in_quiet_rooms() {
        let mut av = AutoVolume::new(AutoVolumeConfig::music());
        let normal = settle(&mut av, 0.05, 0.2, 50);
        let mut av = AutoVolume::new(AutoVolumeConfig::music());
        let silent = settle(&mut av, 0.005, 0.2, 50);
        assert!(
            silent < normal / 2.0,
            "quiet room must lower music gain: {normal} -> {silent}"
        );
    }

    #[test]
    fn gain_respects_bounds() {
        let mut av = AutoVolume::new(AutoVolumeConfig::announcement());
        let g = settle(&mut av, 0.99, 0.2, 200);
        assert!(gain_to_db(g) <= 18.0 + 1e-9);
        let mut av = AutoVolume::new(AutoVolumeConfig::music());
        let g = settle(&mut av, 1e-6, 0.2, 200);
        assert!(gain_to_db(g) >= -30.0 - 1e-9);
    }

    #[test]
    fn self_output_is_subtracted() {
        // A speaker alone in a silent room must not chase its own
        // output upward.
        let mut av = AutoVolume::new(AutoVolumeConfig::announcement());
        let g0 = av.gain();
        for _ in 0..50 {
            let out = 0.5 * av.gain();
            let mic = microphone_rms(0.0, out, av.cfg.self_coupling);
            av.update(mic, out);
        }
        assert!(
            av.gain() <= g0,
            "gain crept up on self-noise: {} -> {}",
            g0,
            av.gain()
        );
        assert!(av.ambient_estimate() < 0.01);
    }

    #[test]
    fn ambient_profile_steps() {
        let p = AmbientProfile::steps(vec![(10.0, 0.3), (0.0, 0.05), (20.0, 0.1)]);
        assert_eq!(p.level_at(0.0), 0.05);
        assert_eq!(p.level_at(9.9), 0.05);
        assert_eq!(p.level_at(10.0), 0.3);
        assert_eq!(p.level_at(19.9), 0.3);
        assert_eq!(p.level_at(25.0), 0.1);
        assert_eq!(AmbientProfile::default().level_at(5.0), 0.0);
        assert_eq!(AmbientProfile::constant(0.2).level_at(99.0), 0.2);
    }

    #[test]
    fn microphone_adds_powers() {
        let m = microphone_rms(0.3, 0.4, 1.0);
        assert!((m - 0.5).abs() < 1e-9);
        assert_eq!(microphone_rms(0.3, 0.4, 0.0), 0.3);
    }
}
