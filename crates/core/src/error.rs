//! The single error type fallible `es-core` entry points return.
//!
//! Before this existed, failures surfaced as a mix of panics, `bool`
//! returns and raw `io::Error`s. Everything now funnels through
//! [`Error`], which wraps the protocol layer's [`WireError`], the
//! auth layer's [`Reject`], the control plane's [`SessionError`] and
//! plain I/O, plus [`Error::Config`] for invalid builder input caught
//! by [`crate::SystemBuilder::try_build`].

use es_proto::auth::Reject;
use es_proto::{SessionError, WireError};

/// Any failure an `es-core` public entry point can report.
#[derive(Debug)]
pub enum Error {
    /// A packet failed to parse or validate.
    Wire(WireError),
    /// The stream authenticator rejected input.
    Auth(Reject),
    /// The session control plane failed (refused, timed out, unknown
    /// channel).
    Session(SessionError),
    /// Invalid builder/spec configuration, caught before anything
    /// runs.
    Config(String),
    /// An operating-system I/O failure (live UDP paths).
    Io(std::io::Error),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Wire(e) => write!(f, "wire error: {e}"),
            Error::Auth(r) => write!(f, "authentication rejected: {r:?}"),
            Error::Session(e) => write!(f, "session error: {e}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Wire(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Auth(_) | Error::Config(_) => None,
        }
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<Reject> for Error {
    fn from(r: Reject) -> Self {
        Error::Auth(r)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_and_displays() {
        let cases: Vec<Error> = vec![
            WireError::BadCrc.into(),
            Reject::BufferFull.into(),
            SessionError::Timeout.into(),
            Error::Config("no such channel".into()),
            std::io::Error::other("boom").into(),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        // Sources chain where an inner std error exists.
        let wire: Error = WireError::BadMagic.into();
        assert!(std::error::Error::source(&wire).is_some());
        let cfg = Error::Config("x".into());
        assert!(std::error::Error::source(&cfg).is_none());
    }
}
