//! Live mode: the same protocol over real UDP multicast.
//!
//! The simulator proves properties; this module proves the system runs
//! on an actual network. A producer thread paces a generated signal in
//! *real* time (the §3.1 rate limiter against the wall clock) and
//! multicasts control + data packets; a speaker loop joins the group,
//! gates on the first control packet, decodes and collects the audio.
//! `examples/real_udp.rs` wires both over the loopback interface and
//! writes what the speaker heard to a WAV file.
//!
//! Live mode decodes inline on the receive thread: a real Ethernet
//! Speaker is one node with one stream, so the fleet executor
//! (`es_sim::fleet`, sized by [`SystemBuilder::fleet_threads`] or
//! `ES_FLEET_THREADS`) only shards work when the *simulator* hosts
//! many speakers in one process.
//!
//! [`SystemBuilder::fleet_threads`]: crate::builder::SystemBuilder::fleet_threads

use std::time::{Duration, Instant};

use bytes::Bytes;

use es_audio::gen::{f32_to_i16, Signal};
use es_audio::AudioConfig;
use es_codec::{CodecId, Codecs};
use es_net::udp::{McastReceiver, McastSender};
use es_proto::{encode_control, encode_data, ControlPacket, DataPacket, Packet};
use es_telemetry::{Journal, Registry, Severity, Stamp, Telemetry};

/// Producer-side settings for a live run.
pub struct LiveProducerConfig {
    /// Multicast channel number (maps to `239.77.83.<n>`).
    pub channel: u8,
    /// UDP port.
    pub port: u16,
    /// Stream id in packets.
    pub stream_id: u16,
    /// Audio format.
    pub config: AudioConfig,
    /// Codec for data payloads.
    pub codec: CodecId,
    /// OVL quality.
    pub quality: u8,
    /// Control packet period.
    pub control_interval: Duration,
    /// Audio per data packet.
    pub chunk: Duration,
    /// Playout delay granted to receivers.
    pub playout_delay: Duration,
    /// Structured diagnostics sink (wall-clock stamps).
    pub journal: Option<Journal>,
}

impl LiveProducerConfig {
    /// Defaults: CD audio, OVL max quality, 500 ms control interval,
    /// 50 ms chunks.
    pub fn new(channel: u8, port: u16) -> Self {
        LiveProducerConfig {
            channel,
            port,
            stream_id: 1,
            config: AudioConfig::CD,
            codec: CodecId::Ovl,
            quality: es_codec::MAX_QUALITY,
            control_interval: Duration::from_millis(500),
            chunk: Duration::from_millis(50),
            playout_delay: Duration::from_millis(200),
            journal: None,
        }
    }

    /// Attaches a journal for structured diagnostics.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }
}

/// What a live producer run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveProducerReport {
    /// Data packets sent.
    pub data_packets: u64,
    /// Control packets sent.
    pub control_packets: u64,
    /// Payload bytes sent.
    pub payload_bytes: u64,
    /// Wall time the run took (should approximate the clip length:
    /// the 5-minute-song property).
    pub elapsed: Duration,
}

impl Telemetry for LiveProducerReport {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("rebroadcast");
        s.counter("data_packets", self.data_packets)
            .counter("control_packets", self.control_packets)
            .counter("payload_bytes_out", self.payload_bytes)
            .gauge("elapsed_ms", self.elapsed.as_millis() as f64);
    }
}

/// Streams `signal` for `duration`, pacing against the wall clock.
/// Blocking; spawn a thread for concurrent producer/speaker runs.
// es-allow(wall-clock): the live producer paces real playback against the host clock
#[allow(clippy::disallowed_methods)]
pub fn run_live_producer(
    cfg: &LiveProducerConfig,
    signal: &mut dyn Signal,
    duration: Duration,
) -> Result<LiveProducerReport, crate::Error> {
    let tx = McastSender::new(cfg.channel, cfg.port)?;
    let codecs = Codecs::new();
    let start = Instant::now();
    if let Some(j) = &cfg.journal {
        j.emit(
            Stamp::wall_now(),
            Severity::Info,
            "rebroadcast",
            "live producer started",
            &[
                ("channel", cfg.channel.to_string()),
                ("port", cfg.port.to_string()),
                ("codec", format!("{:?}", cfg.codec)),
                ("duration_ms", duration.as_millis().to_string()),
            ],
        );
    }
    let mut report = LiveProducerReport::default();
    let frames_per_chunk =
        (cfg.config.sample_rate as u128 * cfg.chunk.as_nanos() / 1_000_000_000) as usize;
    let total_chunks = (duration.as_nanos() / cfg.chunk.as_nanos().max(1)) as u64;
    let mut next_control = Instant::now();
    let mut control_seq = 0u32;

    for chunk_idx in 0..total_chunks {
        let now = Instant::now();
        if now >= next_control {
            let pkt = ControlPacket {
                stream_id: cfg.stream_id,
                seq: control_seq,
                producer_time_us: start.elapsed().as_micros() as u64,
                config: cfg.config,
                codec: cfg.codec.to_wire(),
                quality: cfg.quality,
                control_interval_ms: cfg.control_interval.as_millis() as u16,
                flags: 0,
            };
            tx.send(&encode_control(&pkt))?;
            control_seq += 1;
            report.control_packets += 1;
            next_control = now + cfg.control_interval;
        }

        // Generate and encode one chunk.
        let mut mono = vec![0.0f32; frames_per_chunk];
        signal.fill(&mut mono);
        let mut interleaved = Vec::with_capacity(frames_per_chunk * cfg.config.channels as usize);
        for v in mono {
            let s = f32_to_i16(v);
            for _ in 0..cfg.config.channels {
                interleaved.push(s);
            }
        }
        let enc = codecs.encode(cfg.codec, &interleaved, cfg.config.channels, cfg.quality);
        let play_at =
            (chunk_idx as u128 * cfg.chunk.as_nanos() + cfg.playout_delay.as_nanos()) / 1_000;
        let pkt = DataPacket {
            stream_id: cfg.stream_id,
            seq: chunk_idx as u32,
            play_at_us: play_at as u64,
            codec: cfg.codec.to_wire(),
            payload: Bytes::from(enc.bytes),
        };
        tx.send(&encode_data(&pkt))?;
        report.data_packets += 1;
        report.payload_bytes += pkt.payload.len() as u64;

        // The rate limiter: sleep until this chunk's stream deadline.
        let deadline = start + cfg.chunk * (chunk_idx as u32 + 1);
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
    report.elapsed = start.elapsed();
    if let Some(j) = &cfg.journal {
        j.emit(
            Stamp::wall_now(),
            Severity::Info,
            "rebroadcast",
            "live producer finished",
            &[
                ("data_packets", report.data_packets.to_string()),
                ("elapsed_ms", report.elapsed.as_millis().to_string()),
            ],
        );
    }
    Ok(report)
}

/// What a live speaker heard.
#[derive(Debug, Clone, Default)]
pub struct LiveSpeakerReport {
    /// Stream configuration learned from the control packet.
    pub config: Option<AudioConfig>,
    /// Decoded interleaved samples, in arrival order.
    pub samples: Vec<i16>,
    /// Control packets seen.
    pub control_packets: u64,
    /// Data packets decoded.
    pub data_packets: u64,
    /// Data packets dropped while waiting for the first control packet.
    pub dropped_waiting_control: u64,
    /// Packets that failed to parse.
    pub bad_packets: u64,
}

impl Telemetry for LiveSpeakerReport {
    fn record(&self, registry: &mut Registry) {
        let mut s = registry.component("speaker");
        s.counter("control_packets", self.control_packets)
            .counter("data_packets", self.data_packets)
            .counter("dropped_waiting_control", self.dropped_waiting_control)
            .counter("bad_packets", self.bad_packets)
            .counter("samples_played", self.samples.len() as u64);
    }
}

/// Listens on a channel for `run_for`, collecting decoded audio.
/// Blocking. Diagnostics go to `journal` (wall-clock stamps) when one
/// is supplied.
// es-allow(wall-clock): the live speaker paces real playback against the host clock
#[allow(clippy::disallowed_methods)]
pub fn run_live_speaker(
    channel: u8,
    port: u16,
    run_for: Duration,
    journal: Option<Journal>,
) -> Result<LiveSpeakerReport, crate::Error> {
    let rx = McastReceiver::join(channel, port, Duration::from_millis(100))?;
    let codecs = Codecs::new();
    let start = Instant::now();
    if let Some(j) = &journal {
        j.emit(
            Stamp::wall_now(),
            Severity::Info,
            "speaker",
            "live speaker joined group",
            &[("channel", channel.to_string()), ("port", port.to_string())],
        );
    }
    let mut report = LiveSpeakerReport::default();
    let mut buf = vec![0u8; 65_536];
    while start.elapsed() < run_for {
        let Some(n) = rx.recv(&mut buf)? else {
            continue;
        };
        match es_proto::decode(&buf[..n]) {
            Ok(Packet::Control(c)) => {
                report.control_packets += 1;
                report.config = Some(c.config);
            }
            Ok(Packet::Data(d)) => {
                let Some(cfg) = report.config else {
                    report.dropped_waiting_control += 1;
                    continue;
                };
                match codecs.decode_wire(d.codec, &d.payload, cfg.channels) {
                    Ok((samples, _)) => {
                        report.data_packets += 1;
                        report.samples.extend_from_slice(&samples);
                    }
                    Err(_) => report.bad_packets += 1,
                }
            }
            Ok(Packet::Announce(_)) => {}
            // Loopback does not lose packets; the live collector skips
            // FEC recovery (the simulator exercises it under real loss).
            Ok(Packet::Parity(_)) => {}
            // The live collector is statically tuned; session control
            // is the negotiated path's concern.
            Ok(Packet::Session(_)) => {}
            Err(_) => report.bad_packets += 1,
        }
    }
    rx.leave().ok();
    if let Some(j) = &journal {
        j.emit(
            Stamp::wall_now(),
            Severity::Info,
            "speaker",
            "live speaker run complete",
            &[
                ("data_packets", report.data_packets.to_string()),
                ("bad_packets", report.bad_packets.to_string()),
            ],
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_audio::gen::Sine;

    /// End-to-end over real loopback multicast. Skips (without
    /// failing) in sandboxes that forbid multicast.
    /// Journals an environment-dependent skip instead of printing.
    fn skip(journal: &Journal, reason: String) {
        journal.emit(
            Stamp::wall_now(),
            Severity::Warn,
            "core",
            "live test skipped",
            &[("reason", reason)],
        );
    }

    #[test]
    fn live_roundtrip_over_loopback() {
        let journal = Journal::new();
        let channel = 17;
        let port = 49_500;
        let j2 = journal.clone();
        let speaker = std::thread::spawn(move || {
            run_live_speaker(channel, port, Duration::from_millis(1_500), Some(j2))
        });
        std::thread::sleep(Duration::from_millis(150));
        let mut cfg = LiveProducerConfig::new(channel, port).with_journal(journal.clone());
        cfg.codec = CodecId::Adpcm;
        let mut sig = Sine::new(440.0, 44_100, 0.5);
        let produced = match run_live_producer(&cfg, &mut sig, Duration::from_millis(800)) {
            Ok(r) => r,
            Err(e) => {
                skip(&journal, format!("producer: {e}"));
                return;
            }
        };
        let heard = match speaker.join().expect("speaker thread") {
            Ok(r) => r,
            Err(e) => {
                skip(&journal, format!("speaker: {e}"));
                return;
            }
        };
        // Both ends journaled their lifecycle under wall-clock stamps.
        assert!(journal
            .events()
            .iter()
            .all(|e| e.stamp.domain == es_telemetry::TimeDomain::Wall));
        assert!(journal.len() >= 3, "start/joined/finished events");
        // Pacing: 800 ms of audio takes ~800 ms to send.
        assert!(produced.elapsed >= Duration::from_millis(750));
        assert!(produced.data_packets >= 15);
        if heard.data_packets == 0 {
            skip(&journal, "no multicast loopback delivery".to_string());
            return;
        }
        assert_eq!(heard.config, Some(AudioConfig::CD));
        assert!(heard.samples.len() > 44_100 / 4);
        assert_eq!(heard.bad_packets, 0);
    }
}
