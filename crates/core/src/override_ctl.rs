//! Central priority override (§5.3).
//!
//! "Alternatively all ESs within an administrative domain may need to
//! be controlled centrally (e.g., movies shown on TV sets on airplane
//! seats can be overridden by crew announcements)." The controller
//! watches a priority channel's multicast group from its own node;
//! while data flows there, every managed speaker is tuned to it, and
//! once the announcement goes quiet they are returned to their previous
//! channels.

use es_net::{Datagram, Lan, McastGroup, NodeId};
use es_proto::Packet;
use es_sim::{shared, RepeatingTimer, Shared, Sim, SimDuration, SimTime};
use es_speaker::EthernetSpeaker;

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverrideStats {
    /// Times the fleet was switched to the priority channel.
    pub overrides: u64,
    /// Times the fleet was restored.
    pub restores: u64,
}

impl es_telemetry::Telemetry for OverrideStats {
    fn record(&self, registry: &mut es_telemetry::Registry) {
        let mut s = registry.component("override");
        s.counter("overrides", self.overrides)
            .counter("restores", self.restores);
    }
}

struct CtlState {
    speakers: Vec<(EthernetSpeaker, Option<McastGroup>)>,
    priority_group: McastGroup,
    last_data: Option<SimTime>,
    active: bool,
    hold: SimDuration,
    stats: OverrideStats,
}

/// The central override controller.
#[derive(Clone)]
pub struct OverrideController {
    state: Shared<CtlState>,
}

impl OverrideController {
    /// Starts the controller: `node` joins `priority_group` and watches
    /// for data packets; `speakers` is the managed fleet. `hold` is how
    /// long after the last announcement packet the override persists.
    pub fn start(
        sim: &mut Sim,
        lan: &Lan,
        node: NodeId,
        priority_group: McastGroup,
        speakers: Vec<EthernetSpeaker>,
        hold: SimDuration,
    ) -> OverrideController {
        lan.join(node, priority_group);
        let state = shared(CtlState {
            speakers: speakers.into_iter().map(|s| (s, None)).collect(),
            priority_group,
            last_data: None,
            active: false,
            hold,
            stats: OverrideStats::default(),
        });
        let ctl = OverrideController {
            state: state.clone(),
        };
        let c2 = ctl.clone();
        lan.set_handler(node, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(Packet::Data(_)) = es_proto::decode(&dg.payload) {
                c2.on_priority_data(sim);
            }
        });
        // Staleness checker: restore once the announcement stops.
        let c3 = ctl.clone();
        let timer = RepeatingTimer::start(sim, SimDuration::from_millis(100), move |sim| {
            c3.check_stale(sim);
        });
        std::mem::forget(timer);
        ctl
    }

    fn on_priority_data(&self, sim: &mut Sim) {
        let engage = {
            let mut st = self.state.borrow_mut();
            st.last_data = Some(sim.now());
            !st.active
        };
        if engage {
            let mut st = self.state.borrow_mut();
            st.active = true;
            st.stats.overrides += 1;
            let pg = st.priority_group;
            // Remember where each speaker was, then seize it.
            let mut work = Vec::new();
            for (spk, saved) in st.speakers.iter_mut() {
                *saved = Some(spk.tuned());
                work.push(spk.clone());
            }
            drop(st);
            for spk in work {
                spk.tune(sim, pg);
            }
        }
    }

    fn check_stale(&self, sim: &mut Sim) {
        let restore = {
            let st = self.state.borrow();
            st.active
                && st
                    .last_data
                    .is_some_and(|t| sim.now().saturating_since(t) > st.hold)
        };
        if restore {
            let mut st = self.state.borrow_mut();
            st.active = false;
            st.stats.restores += 1;
            let mut work = Vec::new();
            for (spk, saved) in st.speakers.iter_mut() {
                if let Some(g) = saved.take() {
                    work.push((spk.clone(), g));
                }
            }
            drop(st);
            for (spk, g) in work {
                spk.tune(sim, g);
            }
        }
    }

    /// True while the fleet is seized.
    pub fn is_active(&self) -> bool {
        self.state.borrow().active
    }

    /// Counter snapshot.
    pub fn stats(&self) -> OverrideStats {
        self.state.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use es_audio::AudioConfig;
    use es_codec::CodecId;
    use es_net::LanConfig;
    use es_proto::{encode_control, encode_data, ControlPacket, DataPacket};
    use es_speaker::SpeakerConfig;

    fn data(seq: u32) -> Bytes {
        encode_data(&DataPacket {
            stream_id: 9,
            seq,
            play_at_us: 1,
            codec: CodecId::Pcm.to_wire(),
            payload: Bytes::from_static(&[0, 0, 0, 0]),
        })
    }

    fn control() -> Bytes {
        encode_control(&ControlPacket {
            stream_id: 9,
            seq: 0,
            producer_time_us: 0,
            config: AudioConfig::CD,
            codec: CodecId::Pcm.to_wire(),
            quality: 0,
            control_interval_ms: 500,
            flags: es_proto::FLAG_PRIORITY,
        })
    }

    #[test]
    fn announcement_seizes_and_releases_the_fleet() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let sender = lan.attach("pa-console");
        let ctl_node = lan.attach("override-ctl");
        let music = McastGroup(1);
        let priority = McastGroup(9);
        lan.join(sender, priority);
        let spk1 = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("a", music));
        let spk2 = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("b", music));
        let ctl = OverrideController::start(
            &mut sim,
            &lan,
            ctl_node,
            priority,
            vec![spk1.clone(), spk2.clone()],
            SimDuration::from_millis(500),
        );
        assert!(!ctl.is_active());
        // The crew keys the mic: control + data on the priority group.
        lan.multicast(&mut sim, sender, priority, control());
        lan.multicast(&mut sim, sender, priority, data(0));
        sim.run_for(SimDuration::from_millis(50));
        assert!(ctl.is_active());
        assert_eq!(spk1.tuned(), priority);
        assert_eq!(spk2.tuned(), priority);
        // Announcement continues: stays seized.
        lan.multicast(&mut sim, sender, priority, data(1));
        sim.run_for(SimDuration::from_millis(400));
        assert!(ctl.is_active());
        // Goes quiet: restored to the music channel.
        sim.run_for(SimDuration::from_secs(1));
        assert!(!ctl.is_active());
        assert_eq!(spk1.tuned(), music);
        assert_eq!(spk2.tuned(), music);
        let st = ctl.stats();
        assert_eq!(st.overrides, 1);
        assert_eq!(st.restores, 1);
    }

    #[test]
    fn repeated_announcements_count() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let sender = lan.attach("pa");
        let ctl_node = lan.attach("ctl");
        let priority = McastGroup(9);
        lan.join(sender, priority);
        let spk = EthernetSpeaker::start(&mut sim, &lan, SpeakerConfig::new("a", McastGroup(1)));
        let ctl = OverrideController::start(
            &mut sim,
            &lan,
            ctl_node,
            priority,
            vec![spk],
            SimDuration::from_millis(200),
        );
        for round in 0..3 {
            lan.multicast(&mut sim, sender, priority, data(round));
            sim.run_for(SimDuration::from_millis(50));
            assert!(ctl.is_active());
            sim.run_for(SimDuration::from_secs(1));
            assert!(!ctl.is_active());
        }
        assert_eq!(ctl.stats().overrides, 3);
        assert_eq!(ctl.stats().restores, 3);
    }
}
