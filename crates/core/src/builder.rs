//! The system builder: one call-site to assemble a whole Ethernet
//! Speaker deployment in the simulator.
//!
//! A built system is Figure 1 of the paper: a producer host running the
//! VAD + rebroadcaster per channel, any number of Ethernet Speakers on
//! the same LAN (joining at arbitrary times — the mid-stream-join case
//! §3.2 worries about), and the catalog announcer of §4.3.

use std::rc::Rc;

use es_audio::gen::{ImpulseTrain, MultiTone, Signal, Sine, Sweep, WhiteNoise};
use es_audio::AudioConfig;
use es_codec::CostModel;
use es_net::{Lan, LanConfig, McastGroup};
use es_proto::auth::StreamSigner;
use es_proto::{Capabilities, SessionClientConfig, StreamInfo};
use es_rebroadcast::{
    AppPacing, AudioApp, CompressionPolicy, RateLimiter, Rebroadcaster, RebroadcasterConfig,
    RelayConfig, SegmentRelay,
};
use es_sim::{Shared, Sim, SimCpu, SimDuration, SimTime};
use es_speaker::{AmbientProfile, AutoVolumeConfig, EthernetSpeaker, SpeakerConfig};
use es_telemetry::{Journal, MetricsSnapshot, Registry, Telemetry};

use crate::catalog::CatalogAnnouncer;
use crate::error::Error;
use crate::heal_ctl::{HealMonitor, HealSpec};
use crate::session_ctl::{stream_info_for, NegotiatedSpeaker, SessionBroker};

/// What an audio application plays into a channel.
#[derive(Debug, Clone)]
pub enum Source {
    /// A pure tone at the given frequency.
    Tone(f32),
    /// The deterministic harmonic "music" generator.
    Music,
    /// Seeded white noise.
    Noise(u64),
    /// A linear sweep `f0 → f1` over the clip duration.
    Sweep(f32, f32),
    /// A click train (one impulse every N samples) — the sharpest
    /// signal for sync measurements.
    Impulses(u32),
}

impl Source {
    fn build(&self, cfg: &AudioConfig, duration: SimDuration) -> Box<dyn Signal> {
        match *self {
            Source::Tone(f) => Box::new(Sine::new(f, cfg.sample_rate, 0.6)),
            Source::Music => Box::new(MultiTone::music(cfg.sample_rate)),
            Source::Noise(seed) => Box::new(WhiteNoise::new(seed, 0.5)),
            Source::Sweep(f0, f1) => Box::new(Sweep::new(
                f0,
                f1,
                duration.as_secs_f64() as f32,
                cfg.sample_rate,
                0.6,
            )),
            Source::Impulses(period) => Box::new(ImpulseTrain::new(period, 0.9)),
        }
    }
}

/// One channel: an application, a VAD, a rebroadcaster, a group.
pub struct ChannelSpec {
    /// Stream id and packet label.
    pub stream_id: u16,
    /// Multicast group.
    pub group: McastGroup,
    /// Human-readable name (catalog entry).
    pub name: String,
    /// Stream format the application configures.
    pub config: AudioConfig,
    /// What the application plays.
    pub source: Source,
    /// Clip length.
    pub duration: SimDuration,
    /// Application pacing (wire-speed file playback vs. live source).
    pub pacing: AppPacing,
    /// Rate limiter for the rebroadcaster.
    pub rate_limiter: RateLimiter,
    /// Compression policy.
    pub policy: CompressionPolicy,
    /// Stream flags (e.g. [`es_proto::FLAG_PRIORITY`]).
    pub flags: u16,
    /// Bill encode work to this CPU (Figure 4).
    pub cpu: Option<Shared<SimCpu>>,
    /// Sign the stream (§5.1).
    pub signer: Option<Rc<StreamSigner>>,
    /// Delay before the application starts playing.
    pub start_at: SimDuration,
    /// VAD block length in milliseconds — one network packet per block,
    /// so this is §3.4's buffer-size knob.
    pub vad_block_ms: u64,
    /// Playout delay granted to receivers (data deadlines sit this far
    /// behind the producer stream clock).
    pub playout_delay: SimDuration,
    /// One XOR-parity packet per this many data packets (FEC extension
    /// for lossy links).
    pub fec_group: Option<u8>,
    /// How transform work is billed to the CPU model (paper-fidelity
    /// direct cost vs. the default FFT fast path).
    pub cost_model: CostModel,
    /// Logical engine segment of the producer host (see
    /// `es_sim::shard`). The producer host is shared, so the last
    /// channel that sets a non-zero segment wins.
    pub segment: u32,
}

impl ChannelSpec {
    /// A CD-quality music channel with paper-default settings.
    pub fn new(stream_id: u16, group: McastGroup, name: impl Into<String>) -> Self {
        ChannelSpec {
            stream_id,
            group,
            name: name.into(),
            config: AudioConfig::CD,
            source: Source::Music,
            duration: SimDuration::from_secs(10),
            pacing: AppPacing::RealTime,
            rate_limiter: RateLimiter::new(),
            policy: CompressionPolicy::paper_default(),
            flags: 0,
            cpu: None,
            signer: None,
            start_at: SimDuration::ZERO,
            vad_block_ms: 50,
            playout_delay: SimDuration::from_millis(200),
            fec_group: None,
            cost_model: CostModel::default(),
            segment: 0,
        }
    }

    /// Sets the stream format the application configures.
    pub fn config(mut self, config: AudioConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets what the application plays.
    pub fn source(mut self, source: Source) -> Self {
        self.source = source;
        self
    }

    /// Sets the clip length.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the application pacing.
    pub fn pacing(mut self, pacing: AppPacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Sets the rebroadcaster's rate limiter.
    pub fn rate_limiter(mut self, rl: RateLimiter) -> Self {
        self.rate_limiter = rl;
        self
    }

    /// Sets the compression policy.
    pub fn policy(mut self, policy: CompressionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the stream flags.
    pub fn flags(mut self, flags: u16) -> Self {
        self.flags = flags;
        self
    }

    /// Bills encode work to a CPU model.
    pub fn cpu(mut self, cpu: Shared<SimCpu>) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Signs the stream (§5.1).
    pub fn signer(mut self, signer: Rc<StreamSigner>) -> Self {
        self.signer = Some(signer);
        self
    }

    /// Delays the application start.
    pub fn start_at(mut self, at: SimDuration) -> Self {
        self.start_at = at;
        self
    }

    /// Sets the VAD block length in milliseconds.
    pub fn vad_block_ms(mut self, ms: u64) -> Self {
        self.vad_block_ms = ms;
        self
    }

    /// Sets the receiver playout delay.
    pub fn playout_delay(mut self, d: SimDuration) -> Self {
        self.playout_delay = d;
        self
    }

    /// Emits one XOR-parity packet per `n` data packets.
    pub fn fec_group(mut self, n: u8) -> Self {
        self.fec_group = Some(n);
        self
    }

    /// Selects how transform work is billed to the CPU model.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Pins the producer host to a logical engine segment. Segments
    /// partition the sharded event engine; they are topology labels
    /// and never change what the fleet plays.
    pub fn segment(mut self, segment: u32) -> Self {
        self.segment = segment;
        self
    }
}

/// One speaker: where it listens and when it powers on.
///
/// Builder methods use bare field names (`epsilon`, `volume`, …), the
/// same convention as [`ChannelSpec`] and [`SessionSpec`].
pub struct SpeakerSpec {
    /// Speaker configuration.
    pub config: SpeakerConfig,
    /// When the speaker joins (mid-stream joins exercise §3.2).
    pub start_at: SimDuration,
    /// Channel to join by handshake instead of static group wiring.
    /// `Some` makes this a negotiated speaker and requires
    /// [`SystemBuilder::sessions`].
    pub channel: Option<String>,
    /// Capabilities advertised during the handshake (negotiated mode).
    pub caps: Capabilities,
    /// Logical engine segment this speaker's deliveries execute in
    /// (see `es_sim::shard`); speakers behind a relay share the
    /// relay's segment.
    pub segment: u32,
}

impl SpeakerSpec {
    /// A default speaker statically wired to `group`, on from t=0.
    pub fn new(name: impl Into<String>, group: McastGroup) -> Self {
        SpeakerSpec {
            config: SpeakerConfig::new(name, group),
            start_at: SimDuration::ZERO,
            channel: None,
            caps: Capabilities::any(),
            segment: 0,
        }
    }

    /// A speaker that joins `channel` via the session handshake: it
    /// discovers the line-up on the announce group, negotiates codec
    /// and playout delay, and only then tunes to the granted data
    /// group. Requires [`SystemBuilder::sessions`].
    pub fn negotiated(name: impl Into<String>, channel: impl Into<String>) -> Self {
        let mut spec = SpeakerSpec::new(name, McastGroup(0));
        spec.channel = Some(channel.into());
        spec
    }

    /// Sets the power-on time.
    pub fn starting_at(mut self, at: SimDuration) -> Self {
        self.start_at = at;
        self
    }

    /// Sets the capabilities advertised in the handshake.
    pub fn caps(mut self, caps: Capabilities) -> Self {
        self.caps = caps;
        self
    }

    /// Pins this speaker to a logical engine segment (a speaker behind
    /// a [`RelaySpec`] should use the relay's segment and the relay's
    /// downstream group).
    pub fn segment(mut self, segment: u32) -> Self {
        self.segment = segment;
        self
    }

    /// Sets the §3.2 epsilon.
    pub fn epsilon(mut self, eps: SimDuration) -> Self {
        self.config.epsilon = eps;
        self
    }

    /// Enables auth with a trust anchor.
    pub fn auth_anchor(mut self, anchor: [u8; 32]) -> Self {
        self.config.auth_anchor = Some(anchor);
        self
    }

    /// Bills decode work to a CPU model.
    pub fn cpu(mut self, cpu: Shared<SimCpu>) -> Self {
        self.config.cpu = Some(cpu);
        self
    }

    /// Enables ambient-tracking auto-volume.
    pub fn auto_volume(mut self, avc: AutoVolumeConfig, profile: AmbientProfile) -> Self {
        self.config.auto_volume = Some((avc, profile));
        self
    }

    /// Switches to the §3.4 single-threaded player with the given
    /// receive-queue depth.
    pub fn serial_pipeline(mut self, queue_depth: usize) -> Self {
        self.config.serial_queue_depth = Some(queue_depth);
        self
    }

    /// Overrides the audio device geometry (ring capacity, block ms).
    pub fn device_geometry(mut self, ring_capacity: usize, block_ms: u64) -> Self {
        self.config.device_ring_capacity = ring_capacity;
        self.config.device_block_ms = block_ms;
        self
    }

    /// Sets the fixed volume gain.
    pub fn volume(mut self, volume: f64) -> Self {
        self.config.volume = volume;
        self
    }

    /// Plays packets as soon as decoded, ignoring deadlines (the early
    /// ES of §3.4).
    pub fn asap_playback(mut self) -> Self {
        self.config.asap_playback = true;
        self
    }

    /// Enables packet-loss concealment (replay-and-fade).
    pub fn loss_concealment(mut self) -> Self {
        self.config.conceal_loss = true;
        self
    }

    /// Selects how transform decode work is billed to the CPU model.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.config.cost_model = cost_model;
        self
    }
}

/// One segment relay: subscribes to an upstream group, re-times and
/// re-stamps the stream against its own segment clock, and
/// re-multicasts on a downstream group for its segment's fleet (the
/// §4.4 "internet radio" hierarchy node; see
/// [`es_rebroadcast::SegmentRelay`]).
pub struct RelaySpec {
    /// Group the relay subscribes to (a channel's group, or another
    /// relay's downstream).
    pub upstream: McastGroup,
    /// Group the relay re-multicasts on; its fleet's speakers tune
    /// here.
    pub downstream: McastGroup,
    /// Logical engine segment of the relay and its fleet.
    pub segment: u32,
    /// Hold window: packets forward this long after arrival, timeline
    /// fields shifted to match.
    pub hold: SimDuration,
}

impl RelaySpec {
    /// A relay forwarding `upstream` onto `downstream` with the
    /// default 2 ms hold, in segment 0.
    pub fn new(upstream: McastGroup, downstream: McastGroup) -> Self {
        let d = RelayConfig::new(upstream, downstream);
        RelaySpec {
            upstream,
            downstream,
            segment: d.segment,
            hold: d.hold,
        }
    }

    /// Sets the relay's (and its fleet's) logical engine segment.
    pub fn segment(mut self, segment: u32) -> Self {
        self.segment = segment;
        self
    }

    /// Sets the hold window.
    pub fn hold(mut self, hold: SimDuration) -> Self {
        self.hold = hold;
        self
    }
}

/// Control-plane configuration: the announce group sessions are
/// negotiated on, plus the handshake's timers. Defaults match
/// [`SessionClientConfig::new`].
pub struct SessionSpec {
    /// Group DISCOVER/OFFER (and the catalog, if enabled) run on.
    pub announce_group: McastGroup,
    /// DISCOVER period while a receiver is unattached.
    pub discover_interval: SimDuration,
    /// SETUP retransmit period.
    pub setup_retry: SimDuration,
    /// KEEPALIVE period while established.
    pub keepalive_interval: SimDuration,
    /// Silence after which either side declares the session dead.
    pub session_timeout: SimDuration,
    /// How often the broker sweeps its tables for expired sessions.
    pub sweep_interval: SimDuration,
}

impl SessionSpec {
    /// Control plane on `announce_group` with simulator-scale timers.
    pub fn new(announce_group: McastGroup) -> Self {
        SessionSpec {
            announce_group,
            discover_interval: SimDuration::from_millis(300),
            setup_retry: SimDuration::from_millis(400),
            keepalive_interval: SimDuration::from_secs(1),
            session_timeout: SimDuration::from_millis(2_500),
            sweep_interval: SimDuration::from_millis(500),
        }
    }

    /// Sets the DISCOVER period.
    pub fn discover_interval(mut self, d: SimDuration) -> Self {
        self.discover_interval = d;
        self
    }

    /// Sets the SETUP retransmit period.
    pub fn setup_retry(mut self, d: SimDuration) -> Self {
        self.setup_retry = d;
        self
    }

    /// Sets the KEEPALIVE period.
    pub fn keepalive_interval(mut self, d: SimDuration) -> Self {
        self.keepalive_interval = d;
        self
    }

    /// Sets the session-loss timeout.
    pub fn session_timeout(mut self, d: SimDuration) -> Self {
        self.session_timeout = d;
        self
    }

    /// Sets the broker's expiry-sweep period.
    pub fn sweep_interval(mut self, d: SimDuration) -> Self {
        self.sweep_interval = d;
        self
    }
}

/// Builder for a complete simulated deployment.
pub struct SystemBuilder {
    seed: u64,
    lan: LanConfig,
    channels: Vec<ChannelSpec>,
    speakers: Vec<SpeakerSpec>,
    relays: Vec<RelaySpec>,
    announce_group: Option<McastGroup>,
    sessions: Option<SessionSpec>,
    healing: Option<HealSpec>,
    sim_shards: Option<usize>,
}

impl SystemBuilder {
    /// Starts a build with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        SystemBuilder {
            seed,
            lan: LanConfig::default(),
            channels: Vec::new(),
            speakers: Vec::new(),
            relays: Vec::new(),
            announce_group: None,
            sessions: None,
            healing: None,
            sim_shards: None,
        }
    }

    /// Sets the LAN physical parameters.
    pub fn lan(mut self, lan: LanConfig) -> Self {
        self.lan = lan;
        self
    }

    /// Adds a channel.
    pub fn channel(mut self, spec: ChannelSpec) -> Self {
        self.channels.push(spec);
        self
    }

    /// Adds a speaker.
    pub fn speaker(mut self, spec: SpeakerSpec) -> Self {
        self.speakers.push(spec);
        self
    }

    /// Adds a segment relay, making a producer → relays → per-segment
    /// fleet topology declarable in one spec. Relays cannot re-sign
    /// authenticated streams, so combining them with a channel signer
    /// is rejected by [`Self::try_build`].
    pub fn relay(mut self, spec: RelaySpec) -> Self {
        self.relays.push(spec);
        self
    }

    /// Pins the event engine to `n` queue shards for this system
    /// (instead of the process `ES_SIM_SHARDS` / default). Sharding is
    /// pure partitioning: every fingerprint and metric is identical at
    /// any shard count.
    pub fn sim_shards(mut self, n: usize) -> Self {
        self.sim_shards = Some(n);
        self
    }

    /// Enables the §4.3 catalog announcer on `group`.
    pub fn announce_on(mut self, group: McastGroup) -> Self {
        self.announce_group = Some(group);
        self
    }

    /// Enables the session control plane: a [`SessionBroker`] on the
    /// producer host answers DISCOVER/SETUP on the spec's announce
    /// group, and [`SpeakerSpec::negotiated`] speakers become legal.
    pub fn sessions(mut self, spec: SessionSpec) -> Self {
        self.sessions = Some(spec);
        self
    }

    /// Enables the self-healing plane: a [`HealMonitor`] samples the
    /// fleet's telemetry every `spec.epoch` and repairs sustained
    /// faults (loss-adaptive FEC, NACK retransmission, and — with
    /// [`HealSpec::standby`] — producer failover).
    pub fn healing(mut self, spec: HealSpec) -> Self {
        self.healing = Some(spec);
        self
    }

    /// Pins the fleet executor to `n` decode lanes for this process
    /// (`0` restores the `ES_FLEET_THREADS` / hardware default). The
    /// merge is deterministic, so this only changes wall-clock speed —
    /// every fingerprint and metric is identical at any lane count.
    pub fn fleet_threads(self, n: usize) -> Self {
        es_sim::fleet::set_threads(n);
        self
    }

    /// Assembles the system, panicking on invalid configuration. See
    /// [`Self::try_build`] for the fallible form.
    pub fn build(self) -> EsSystem {
        match self.try_build() {
            Ok(sys) => sys,
            Err(e) => panic!("invalid system configuration: {e}"),
        }
    }

    /// Validates the configuration and assembles the system.
    /// Applications and speakers with start delays are scheduled;
    /// nothing runs until [`EsSystem::run_for`]/[`EsSystem::run_until`].
    pub fn try_build(self) -> Result<EsSystem, Error> {
        let mut seen_ids = std::collections::BTreeSet::new();
        for ch in &self.channels {
            if !seen_ids.insert(ch.stream_id) {
                return Err(Error::Config(format!(
                    "duplicate stream id {}",
                    ch.stream_id
                )));
            }
        }
        if !self.relays.is_empty() {
            if let Some(ch) = self.channels.iter().find(|c| c.signer.is_some()) {
                return Err(Error::Config(format!(
                    "channel '{}' is signed but relays cannot re-sign a re-stamped stream",
                    ch.name
                )));
            }
            for r in &self.relays {
                if r.upstream == r.downstream {
                    return Err(Error::Config(format!(
                        "relay on group {} would loop: upstream == downstream",
                        r.upstream.0
                    )));
                }
            }
        }
        for spec in &self.speakers {
            if let Some(channel) = &spec.channel {
                if self.sessions.is_none() {
                    return Err(Error::Config(format!(
                        "negotiated speaker '{}' requires sessions(SessionSpec)",
                        spec.config.name
                    )));
                }
                if !self.channels.iter().any(|c| &c.name == channel) {
                    return Err(Error::Config(format!(
                        "negotiated speaker '{}' wants unknown channel '{}'",
                        spec.config.name, channel
                    )));
                }
            }
        }

        let mut sim = match self.sim_shards {
            Some(n) => Sim::with_shards(self.seed, n),
            None => Sim::new(self.seed),
        };
        let journal = Journal::new();
        let lan = Lan::new(self.lan);
        lan.set_journal(journal.clone());
        let producer_node = lan.attach("producer-host");
        if let Some(seg) = self
            .channels
            .iter()
            .rev()
            .find_map(|c| (c.segment != 0).then_some(c.segment))
        {
            lan.set_segment(producer_node, seg);
        }

        let mut rebroadcasters = Vec::new();
        let mut standbys = Vec::new();
        let mut apps: Vec<Shared<Option<AudioApp>>> = Vec::new();
        let mut stream_infos: Vec<StreamInfo> = Vec::new();
        let want_standby = self.healing.as_ref().is_some_and(|h| h.standby);
        let standby_node = want_standby.then(|| lan.attach("standby-host"));

        for ch in self.channels {
            lan.join(producer_node, ch.group);
            // The slave ring must hold several blocks even when blocks
            // are large (§3.4 sweeps block sizes up to half a second).
            let block_bytes = ch.config.bytes_for_nanos(ch.vad_block_ms * 1_000_000) as usize;
            let ring = es_vad::device::DEFAULT_RING_CAPACITY.max(block_bytes * 4);
            let (slave, master) = es_vad::vad_pair_with_geometry(
                es_vad::VadMode::KernelThread {
                    poll: SimDuration::from_millis((ch.vad_block_ms / 4).max(5)),
                },
                ring,
                ch.vad_block_ms,
            );
            let mut rcfg = RebroadcasterConfig::new(ch.stream_id, ch.group);
            rcfg.rate_limiter = ch.rate_limiter;
            rcfg.policy = ch.policy;
            rcfg.flags = ch.flags;
            rcfg.cpu = ch.cpu.clone();
            rcfg.signer = ch.signer.clone();
            rcfg.playout_delay = ch.playout_delay;
            rcfg.fec_group = ch.fec_group;
            rcfg.cost_model = ch.cost_model;
            // A warm standby shares the VAD master: it sees the same
            // stream but neither reads nor sends until promoted.
            let standby_parts = standby_node.map(|node| (node, master.clone(), rcfg.clone()));
            let rb = Rebroadcaster::start(&mut sim, lan.clone(), producer_node, master, rcfg);
            rb.set_journal(journal.clone());
            if let Some((node, master, scfg)) = standby_parts {
                let srb = Rebroadcaster::start_standby(&mut sim, lan.clone(), node, master, scfg);
                srb.set_journal(journal.clone());
                standbys.push(srb);
            }
            // The advertised entry carries the real codec selection and
            // capability set, derived from the channel's policy.
            stream_infos.push(stream_info_for(
                ch.stream_id,
                ch.group,
                &ch.name,
                ch.config,
                ch.flags,
                &ch.policy,
            ));

            // The application starts at its delay.
            let slave = Rc::new(slave);
            let signal = ch.source.build(&ch.config, ch.duration);
            let app_slot: Shared<Option<AudioApp>> = es_sim::shared(None);
            let slot2 = app_slot.clone();
            let cfg = ch.config;
            let duration = ch.duration;
            let pacing = ch.pacing;
            sim.schedule_in(ch.start_at, move |sim| {
                if let Ok(app) = AudioApp::start(sim, slave, cfg, signal, duration, pacing) {
                    *slot2.borrow_mut() = Some(app);
                }
            });
            apps.push(app_slot);
            rebroadcasters.push(rb);
        }

        // Standby shares the producer's segment: promotion swaps the
        // sender without moving the stream across shards.
        if let Some(node) = standby_node {
            lan.set_segment(node, lan.segment(producer_node));
        }

        let relays: Vec<SegmentRelay> = self
            .relays
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut rcfg = RelayConfig::new(spec.upstream, spec.downstream);
                rcfg.name = format!("relay{i}");
                rcfg.segment = spec.segment;
                rcfg.hold = spec.hold;
                SegmentRelay::start(&mut sim, &lan, rcfg)
            })
            .collect();

        let announcer = self.announce_group.map(|group| {
            lan.join(producer_node, group);
            CatalogAnnouncer::start(
                &mut sim,
                lan.clone(),
                producer_node,
                group,
                stream_infos.clone(),
            )
        });

        let broker = self.sessions.as_ref().map(|ses| {
            SessionBroker::start(
                &mut sim,
                &lan,
                producer_node,
                ses.announce_group,
                stream_infos
                    .iter()
                    .cloned()
                    .zip(rebroadcasters.iter().cloned())
                    .collect(),
                ses.session_timeout,
                ses.sweep_interval,
                Some(journal.clone()),
            )
        });

        let mut speakers = Vec::new();
        for spec in self.speakers {
            let segment = spec.segment;
            if let Some(channel) = spec.channel {
                let ses = self.sessions.as_ref().expect("validated above");
                let mut ccfg = SessionClientConfig::new(spec.config.name.clone(), channel);
                ccfg.caps = spec.caps.clone();
                ccfg.discover_interval_us = ses.discover_interval.as_micros();
                ccfg.setup_retry_us = ses.setup_retry.as_micros();
                ccfg.keepalive_interval_us = ses.keepalive_interval.as_micros();
                ccfg.session_timeout_us = ses.session_timeout.as_micros();
                let announce = ses.announce_group;
                if spec.start_at.is_zero() {
                    let ns = NegotiatedSpeaker::start(
                        &mut sim,
                        &lan,
                        spec.config,
                        announce,
                        ccfg,
                        Some(journal.clone()),
                    );
                    lan.set_segment(ns.speaker().node(), segment);
                    speakers.push(SpeakerHandle::Negotiated(ns));
                } else {
                    let slot: Shared<Option<NegotiatedSpeaker>> = es_sim::shared(None);
                    let slot2 = slot.clone();
                    let lan2 = lan.clone();
                    let cfg = spec.config;
                    let j2 = journal.clone();
                    sim.schedule_in(spec.start_at, move |sim| {
                        let ns =
                            NegotiatedSpeaker::start(sim, &lan2, cfg, announce, ccfg, Some(j2));
                        lan2.set_segment(ns.speaker().node(), segment);
                        *slot2.borrow_mut() = Some(ns);
                    });
                    speakers.push(SpeakerHandle::DeferredNegotiated(slot));
                }
            } else if spec.start_at.is_zero() {
                let spk = EthernetSpeaker::start(&mut sim, &lan, spec.config);
                lan.set_segment(spk.node(), segment);
                spk.set_journal(journal.clone());
                speakers.push(SpeakerHandle::Ready(spk));
            } else {
                let slot: Shared<Option<EthernetSpeaker>> = es_sim::shared(None);
                let slot2 = slot.clone();
                let lan2 = lan.clone();
                let cfg = spec.config;
                let j2 = journal.clone();
                sim.schedule_in(spec.start_at, move |sim| {
                    let spk = EthernetSpeaker::start(sim, &lan2, cfg);
                    lan2.set_segment(spk.node(), segment);
                    spk.set_journal(j2.clone());
                    *slot2.borrow_mut() = Some(spk);
                });
                speakers.push(SpeakerHandle::Deferred(slot));
            }
        }

        let hub = MetricsHub {
            lan,
            rebroadcasters,
            standbys,
            relays,
            apps,
            speakers: Rc::new(speakers),
            announcer,
            broker,
            heal: es_sim::shared(None),
        };
        let heal = self.healing.map(|spec| {
            let standbys = hub.standbys.clone();
            let mon = HealMonitor::start(&mut sim, hub.clone(), standbys, spec, journal.clone());
            *hub.heal.borrow_mut() = Some(mon.clone());
            mon
        });

        Ok(EsSystem {
            sim,
            hub,
            heal,
            journal,
        })
    }
}

#[derive(Clone)]
pub(crate) enum SpeakerHandle {
    Ready(EthernetSpeaker),
    Deferred(Shared<Option<EthernetSpeaker>>),
    Negotiated(NegotiatedSpeaker),
    DeferredNegotiated(Shared<Option<NegotiatedSpeaker>>),
}

/// Clone-shareable view of every component's telemetry handles: the
/// one place the "walk the whole deployment and snapshot it" logic
/// lives. [`EsSystem::metrics`] delegates here, and the healing
/// monitor holds its own clone so it can snapshot from inside
/// simulator callbacks, where `EsSystem` itself is not reachable.
#[derive(Clone)]
pub(crate) struct MetricsHub {
    pub(crate) lan: Lan,
    pub(crate) rebroadcasters: Vec<Rebroadcaster>,
    pub(crate) standbys: Vec<Rebroadcaster>,
    pub(crate) relays: Vec<SegmentRelay>,
    pub(crate) apps: Vec<Shared<Option<AudioApp>>>,
    pub(crate) speakers: Rc<Vec<SpeakerHandle>>,
    pub(crate) announcer: Option<CatalogAnnouncer>,
    pub(crate) broker: Option<SessionBroker>,
    /// Back-reference filled in once the monitor starts, so its
    /// counters appear in the same snapshot it produces.
    pub(crate) heal: Shared<Option<HealMonitor>>,
}

impl MetricsHub {
    pub(crate) fn speaker_count(&self) -> usize {
        self.speakers.len()
    }

    pub(crate) fn speaker(&self, i: usize) -> Option<EthernetSpeaker> {
        match &self.speakers[i] {
            SpeakerHandle::Ready(s) => Some(s.clone()),
            SpeakerHandle::Deferred(slot) => slot.borrow().clone(),
            SpeakerHandle::Negotiated(ns) => Some(ns.speaker().clone()),
            SpeakerHandle::DeferredNegotiated(slot) => {
                slot.borrow().as_ref().map(|ns| ns.speaker().clone())
            }
        }
    }

    pub(crate) fn session(&self, i: usize) -> Option<NegotiatedSpeaker> {
        match &self.speakers[i] {
            SpeakerHandle::Negotiated(ns) => Some(ns.clone()),
            SpeakerHandle::DeferredNegotiated(slot) => slot.borrow().clone(),
            _ => None,
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut reg = Registry::new();
        reg.set_instance("lan0");
        self.lan.stats().record(&mut reg);
        self.lan.record_fleet_telemetry(&mut reg);
        for (i, rb) in self.rebroadcasters.iter().enumerate() {
            reg.set_instance(&format!("ch{i}"));
            rb.record_telemetry(&mut reg);
            rb.vad_stats().record(&mut reg);
            if let Some(app) = self.apps[i].borrow().as_ref() {
                app.stats().record(&mut reg);
            }
        }
        for (i, rb) in self.standbys.iter().enumerate() {
            reg.set_instance(&format!("standby{i}"));
            rb.record_telemetry(&mut reg);
        }
        for (i, relay) in self.relays.iter().enumerate() {
            reg.set_instance(&format!("relay{i}"));
            relay.stats().record(&mut reg);
        }
        for i in 0..self.speakers.len() {
            let Some(spk) = self.speaker(i) else { continue };
            reg.set_instance(&spk.name());
            spk.record_telemetry(&mut reg);
            spk.device().stats().record(&mut reg);
            if let Some(ns) = self.session(i) {
                ns.record_telemetry(&mut reg);
            }
        }
        if let Some(a) = &self.announcer {
            reg.set_instance("catalog");
            reg.component("net").counter("announcements_sent", a.sent());
        }
        if let Some(b) = &self.broker {
            reg.set_instance("broker");
            b.record_telemetry(&mut reg);
        }
        if let Some(m) = self.heal.borrow().as_ref() {
            reg.set_instance("heal0");
            m.stats().record(&mut reg);
        }
        reg.snapshot()
    }
}

/// A built deployment.
pub struct EsSystem {
    /// The simulator; exposed for custom event scheduling.
    pub sim: Sim,
    hub: MetricsHub,
    heal: Option<HealMonitor>,
    journal: Journal,
}

impl EsSystem {
    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Runs until an absolute virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// The underlying event engine. Bench harnesses use this to turn
    /// on the per-segment busy-time accounting
    /// ([`Sim::enable_shard_timing`]) and to read shard diagnostics;
    /// scenario code should not need it.
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// The LAN fabric.
    pub fn lan(&self) -> &Lan {
        &self.hub.lan
    }

    /// Channel rebroadcasters, in declaration order.
    pub fn rebroadcaster(&self, i: usize) -> &Rebroadcaster {
        &self.hub.rebroadcasters[i]
    }

    /// Channel `i`'s warm-standby rebroadcaster, when
    /// [`HealSpec::standby`] is on.
    pub fn standby(&self, i: usize) -> Option<&Rebroadcaster> {
        self.hub.standbys.get(i)
    }

    /// Segment relay `i`, in declaration order.
    pub fn relay(&self, i: usize) -> Option<&SegmentRelay> {
        self.hub.relays.get(i)
    }

    /// Number of declared segment relays.
    pub fn relay_count(&self) -> usize {
        self.hub.relays.len()
    }

    /// The healing monitor, if [`SystemBuilder::healing`] was set.
    pub fn heal(&self) -> Option<&HealMonitor> {
        self.heal.as_ref()
    }

    /// The application driving channel `i` (None before its start
    /// delay).
    pub fn app(&self, i: usize) -> Option<AudioApp> {
        self.hub.apps[i].borrow().clone()
    }

    /// Speaker `i` (None before its power-on time). Negotiated
    /// speakers resolve to their underlying [`EthernetSpeaker`].
    pub fn speaker(&self, i: usize) -> Option<EthernetSpeaker> {
        self.hub.speaker(i)
    }

    /// The negotiated-session wrapper for speaker `i` (None for
    /// statically wired speakers or before power-on).
    pub fn session(&self, i: usize) -> Option<NegotiatedSpeaker> {
        self.hub.session(i)
    }

    /// Number of declared speakers.
    pub fn speaker_count(&self) -> usize {
        self.hub.speaker_count()
    }

    /// The catalog announcer, if enabled.
    pub fn announcer(&self) -> Option<&CatalogAnnouncer> {
        self.hub.announcer.as_ref()
    }

    /// The session broker, if [`SystemBuilder::sessions`] was set.
    pub fn broker(&self) -> Option<&SessionBroker> {
        self.hub.broker.as_ref()
    }

    /// The system-wide event journal (virtual-time stamps).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Takes a merged metrics snapshot of every component: the LAN
    /// fabric (instance `lan0`), each channel's rebroadcaster, VAD and
    /// application (instance `chN`), each powered-on speaker (instance
    /// = its name) with its device ring, the catalog announcer, any
    /// warm standbys (`standbyN`), and the healing monitor (`heal0`).
    ///
    /// The snapshot serializes to JSON lines via
    /// [`MetricsSnapshot::to_json_lines`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.hub.snapshot()
    }

    /// Measures the playback offset between two speakers' outputs.
    ///
    /// Both DAC taps are sampled over a short window anchored at the
    /// same absolute instant (block timestamps give the coarse
    /// alignment); cross-correlation of the window then measures the
    /// residual offset. Returns the magnitude of the total offset —
    /// `None` if either speaker has not played through the window or
    /// the correlation is ambiguous.
    pub fn playback_offset(
        &self,
        a: usize,
        b: usize,
        window_start: SimTime,
        max_lag: SimDuration,
    ) -> Option<SimDuration> {
        let sa = self.speaker(a)?;
        let sb = self.speaker(b)?;
        let cfg = sa.device().config();
        let rate = cfg.sample_rate as u64 * cfg.channels as u64; // interleaved samples/s
        let window = (rate / 2) as usize; // half a second of signal
        let slice = |spk: &EthernetSpeaker| -> Option<Vec<i16>> {
            let tap = spk.tap();
            let tap = tap.borrow();
            let idx = tap.sample_index_at(window_start)?;
            let all = tap.samples();
            if all.len() < idx + window / 2 {
                return None;
            }
            Some(all[idx..(idx + window).min(all.len())].to_vec())
        };
        let xa = slice(&sa)?;
        let xb = slice(&sb)?;
        // The coarse alignment above leaves at most a few blocks of
        // skew; bound the search to keep the correlation cheap.
        let max_lag_samples =
            ((max_lag.as_nanos() as u128 * rate as u128 / 1_000_000_000) as usize).min(8_192);
        let lag = es_audio::analysis::correlation_lag(&xa, &xb, max_lag_samples.max(4))?;
        let lag_ns = (lag.unsigned_abs() as u128 * 1_000_000_000 / rate as u128) as u64;
        Some(SimDuration::from_nanos(lag_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_tone_reaches_three_speakers() {
        let mut sys = SystemBuilder::new(1)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .speaker(SpeakerSpec::new("es1", McastGroup(1)))
            .speaker(SpeakerSpec::new("es2", McastGroup(1)))
            .speaker(SpeakerSpec::new("es3", McastGroup(1)))
            .build();
        sys.run_for(SimDuration::from_secs(5));
        for i in 0..3 {
            let spk = sys.speaker(i).unwrap();
            let st = spk.stats();
            assert!(st.control_packets >= 8, "speaker {i}: {st:?}");
            assert!(st.data_packets > 30, "speaker {i}: {st:?}");
            assert!(st.samples_played > 100_000, "speaker {i}: {st:?}");
            assert_eq!(st.bad_packets, 0);
        }
        let rb = sys.rebroadcaster(0);
        assert!(rb.stats().data_packets > 30);
    }

    #[test]
    fn late_speaker_joins_mid_stream() {
        let mut sys = SystemBuilder::new(2)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .speaker(SpeakerSpec::new("early", McastGroup(1)))
            .speaker(SpeakerSpec::new("late", McastGroup(1)).starting_at(SimDuration::from_secs(4)))
            .build();
        sys.run_for(SimDuration::from_secs(3));
        assert!(sys.speaker(1).is_none(), "late speaker not yet powered");
        sys.run_for(SimDuration::from_secs(5));
        let late = sys.speaker(1).unwrap();
        let st = late.stats();
        // It waited for a control packet, then played.
        assert!(st.samples_played > 0, "{st:?}");
        assert!(st.control_packets > 0);
    }

    #[test]
    fn negotiated_speaker_joins_and_plays() {
        let mut sys = SystemBuilder::new(7)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .sessions(SessionSpec::new(McastGroup(0)))
            .speaker(SpeakerSpec::negotiated("es1", "radio"))
            .build();
        sys.run_for(SimDuration::from_secs(6));
        let ns = sys.session(0).expect("negotiated handle");
        assert_eq!(ns.phase(), es_proto::ClientPhase::Established);
        assert!(ns.session_id().is_some());
        let st = sys.speaker(0).unwrap().stats();
        assert!(st.samples_played > 100_000, "{st:?}");
        assert_eq!(st.bad_packets, 0);
        let broker = sys.broker().unwrap();
        assert_eq!(broker.sessions_active(), 1);
        assert!(broker.stats().acks >= 1);
    }

    #[test]
    fn try_build_rejects_bad_configs() {
        let err = |r: Result<EsSystem, Error>| match r {
            Ok(_) => panic!("expected a config error"),
            Err(e) => e,
        };
        let e = err(SystemBuilder::new(1)
            .channel(ChannelSpec::new(1, McastGroup(1), "a"))
            .channel(ChannelSpec::new(1, McastGroup(2), "b"))
            .try_build());
        assert!(matches!(e, crate::Error::Config(_)), "{e}");

        let e = err(SystemBuilder::new(1)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .speaker(SpeakerSpec::negotiated("es1", "radio"))
            .try_build());
        assert!(e.to_string().contains("requires sessions"), "{e}");

        let e = err(SystemBuilder::new(1)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .sessions(SessionSpec::new(McastGroup(0)))
            .speaker(SpeakerSpec::negotiated("es1", "jazz"))
            .try_build());
        assert!(e.to_string().contains("unknown channel"), "{e}");
    }

    #[test]
    fn healing_monitor_runs_epochs_and_exports_stats() {
        let mut sys = SystemBuilder::new(5)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .speaker(SpeakerSpec::new("es1", McastGroup(1)))
            .healing(HealSpec::new().standby())
            .build();
        sys.run_for(SimDuration::from_secs(3));
        let mon = sys.heal().expect("monitor handle");
        assert!(mon.stats().epochs >= 5, "{:?}", mon.stats());
        assert_eq!(mon.stats().failovers, 0, "healthy producer failed over");
        assert_eq!(mon.health_of("es1"), es_heal::Health::Healthy);
        let standby = sys.standby(0).expect("standby handle");
        assert!(standby.is_standby(), "unpromoted standby");
        let snap = sys.metrics();
        assert_eq!(snap.counter("heal/heal0/epochs"), Some(mon.stats().epochs));
        assert_eq!(
            snap.counter("rebroadcast/standby0/data_packets"),
            Some(0),
            "a standby must stay silent"
        );
    }

    #[test]
    fn relayed_fleet_plays_through_segment_relay() {
        // producer (segment 0) → relay (segment 1) → two speakers on
        // the relay's downstream group, in the relay's segment.
        let mut sys = SystemBuilder::new(11)
            .sim_shards(2)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
            .relay(RelaySpec::new(McastGroup(1), McastGroup(101)).segment(1))
            .speaker(SpeakerSpec::new("r1a", McastGroup(101)).segment(1))
            .speaker(SpeakerSpec::new("r1b", McastGroup(101)).segment(1))
            .build();
        assert_eq!(sys.sim.num_shards(), 2);
        sys.run_for(SimDuration::from_secs(5));
        assert_eq!(sys.relay_count(), 1);
        let rstats = sys.relay(0).unwrap().stats();
        assert!(rstats.data_relayed > 30, "{rstats:?}");
        assert!(rstats.control_relayed >= 8, "{rstats:?}");
        for i in 0..2 {
            let st = sys.speaker(i).unwrap().stats();
            assert!(st.samples_played > 100_000, "speaker {i}: {st:?}");
            assert_eq!(st.bad_packets, 0, "speaker {i}: {st:?}");
        }
        // The upstream hand-off crossed the shard boundary.
        assert!(sys.lan().cross_segment_posts() > 0);
        let snap = sys.metrics();
        assert_eq!(
            snap.counter("relay/relay0/data_relayed"),
            Some(rstats.data_relayed)
        );
    }

    #[test]
    fn try_build_rejects_signed_channel_with_relay() {
        let signer = Rc::new(StreamSigner::new(b"relay-test", 64, 4));
        let e = SystemBuilder::new(1)
            .channel(ChannelSpec::new(1, McastGroup(1), "radio").signer(signer))
            .relay(RelaySpec::new(McastGroup(1), McastGroup(101)))
            .try_build()
            .err()
            .expect("signed channel + relay must be rejected");
        assert!(e.to_string().contains("re-sign"), "{e}");
    }

    #[test]
    fn two_speakers_play_in_sync() {
        let mut sys = SystemBuilder::new(3)
            .channel({
                let mut c = ChannelSpec::new(1, McastGroup(1), "clicks");
                c.source = Source::Impulses(11_025); // 4 clicks/sec.
                c.policy = CompressionPolicy::Never;
                c
            })
            .speaker(SpeakerSpec::new("a", McastGroup(1)))
            .speaker(
                SpeakerSpec::new("b", McastGroup(1)).starting_at(SimDuration::from_millis(1_700)),
            )
            .build();
        sys.run_for(SimDuration::from_secs(8));
        let offset = sys
            .playback_offset(0, 1, SimTime::from_secs(3), SimDuration::from_millis(400))
            .expect("correlation must lock");
        assert!(
            offset <= SimDuration::from_millis(60),
            "speakers out of sync by {offset}"
        );
    }
}
