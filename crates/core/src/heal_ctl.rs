//! The self-healing control loop (DESIGN.md §10).
//!
//! A [`HealMonitor`] wakes once per virtual-time *epoch*, takes the
//! same merged [`MetricsSnapshot`] an operator would poll, and feeds
//! per-receiver deltas (interval loss, deadline-miss growth, clock
//! drift) to [`es_heal`]'s pure detector. The actions that come back —
//! plus two the monitor derives itself, NACK retransmission from the
//! speakers' gap ledgers and producer failover from a stalled
//! control-packet counter — are executed against the live system and
//! journaled under component `heal`, every event carrying `action` and
//! `target` fields (the `es-analyze` `heal-event-fields` rule enforces
//! this).
//!
//! Everything here is driven by the deterministic simulator: the same
//! seed heals the same way, bit for bit, at any fleet-thread count.

use std::rc::Rc;

use es_heal::{EpochSample, FleetDetector, HealAction, HealPolicy, HealStats, Health};
use es_rebroadcast::Rebroadcaster;
use es_sim::{RepeatingTimer, Shared, Sim, SimDuration};
use es_speaker::EthernetSpeaker;
use es_telemetry::{Journal, MetricsSnapshot, Severity, Stamp};

use crate::builder::MetricsHub;

/// Healing-plane configuration for [`SystemBuilder::healing`].
///
/// [`SystemBuilder::healing`]: crate::builder::SystemBuilder::healing
#[derive(Debug, Clone)]
pub struct HealSpec {
    /// Detector thresholds and the FEC ladder.
    pub policy: HealPolicy,
    /// Epoch length: how often telemetry is sampled and repairs run.
    pub epoch: SimDuration,
    /// Start a warm-standby rebroadcaster per channel, eligible for
    /// promotion when the primary stops emitting control packets.
    pub standby: bool,
    /// Consecutive epochs with zero control packets (after the stream
    /// was seen alive) before the standby is promoted.
    pub failover_after: u32,
}

impl HealSpec {
    /// Defaults: 500 ms epochs, default [`HealPolicy`], no standby,
    /// failover after 2 stalled epochs.
    pub fn new() -> Self {
        HealSpec {
            policy: HealPolicy::default(),
            epoch: SimDuration::from_millis(500),
            standby: false,
            failover_after: 2,
        }
    }

    /// Sets the detector policy.
    pub fn policy(mut self, policy: HealPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the epoch length.
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    /// Enables the warm-standby producer.
    pub fn standby(mut self) -> Self {
        self.standby = true;
        self
    }

    /// Sets the failover stall threshold, in epochs.
    pub fn failover_after(mut self, epochs: u32) -> Self {
        self.failover_after = epochs;
        self
    }
}

impl Default for HealSpec {
    fn default() -> Self {
        Self::new()
    }
}

struct MonitorState {
    detector: FleetDetector,
    prev: Option<MetricsSnapshot>,
    /// Per channel: ever saw control packets flow.
    chan_active: Vec<bool>,
    /// Per channel: consecutive epochs with zero control packets.
    chan_stalled: Vec<u32>,
    /// Per channel: standby already promoted.
    failed_over: Vec<bool>,
    failover_after: u32,
    journal: Journal,
}

/// The running healing plane. Clone-shareable; all state lives behind
/// [`Shared`].
#[derive(Clone)]
pub struct HealMonitor {
    hub: MetricsHub,
    standbys: Rc<Vec<Rebroadcaster>>,
    state: Shared<MonitorState>,
}

impl HealMonitor {
    /// Starts the epoch timer. The first sample fires a fraction into
    /// the first epoch so the walk lands between the broker sweep and
    /// the producers' control cadence rather than on them.
    pub(crate) fn start(
        sim: &mut Sim,
        hub: MetricsHub,
        standbys: Vec<Rebroadcaster>,
        spec: HealSpec,
        journal: Journal,
    ) -> HealMonitor {
        let mut detector = FleetDetector::new(spec.policy);
        if let Some(rb) = hub.rebroadcasters.first() {
            detector.seed_fec_level(rb.fec_group());
        }
        let n = hub.rebroadcasters.len();
        let state = es_sim::shared(MonitorState {
            detector,
            prev: None,
            chan_active: vec![false; n],
            chan_stalled: vec![0; n],
            failed_over: vec![false; n],
            failover_after: spec.failover_after,
            journal,
        });
        let mon = HealMonitor {
            hub,
            standbys: Rc::new(standbys),
            state,
        };
        let phase = spec.epoch.min(SimDuration::from_millis(170));
        let m2 = mon.clone();
        let timer = RepeatingTimer::start_with_phase(sim, spec.epoch, phase, move |sim| {
            m2.tick(sim);
        });
        // The monitor runs for the life of the simulation, like every
        // other component timer.
        std::mem::forget(timer);
        mon
    }

    /// Lifecycle counters (also exported under `heal/heal0/*` in the
    /// system metrics snapshot).
    pub fn stats(&self) -> HealStats {
        self.state.borrow().detector.stats
    }

    /// The hysteresis-filtered health of receiver `name`.
    pub fn health_of(&self, name: &str) -> Health {
        self.state.borrow().detector.health_of(name)
    }

    /// The FEC ladder rung currently in force.
    pub fn fec_level(&self) -> Option<u8> {
        self.state.borrow().detector.fec_level()
    }

    fn journal(&self) -> Journal {
        self.state.borrow().journal.clone()
    }

    /// One epoch: observe, relay NACKs, apply detector actions, check
    /// for a dead primary.
    fn tick(&self, sim: &mut Sim) {
        let snap = self.hub.snapshot();
        self.observe_receivers(&snap);
        self.relay_nacks(sim);
        let actions = self.state.borrow_mut().detector.end_epoch();
        for action in actions {
            self.execute(sim, action);
        }
        self.check_failover(sim, &snap);
        self.state.borrow_mut().prev = Some(snap);
    }

    fn observe_receivers(&self, snap: &MetricsSnapshot) {
        let mut st = self.state.borrow_mut();
        for i in 0..self.hub.speaker_count() {
            let Some(spk) = self.hub.speaker(i) else {
                continue;
            };
            let name = spk.name();
            let sample = match &st.prev {
                Some(prev) => {
                    let lost = snap
                        .counter_delta(prev, &format!("speaker/{name}/quality_lost"))
                        .unwrap_or(0);
                    let received = snap
                        .counter_delta(prev, &format!("speaker/{name}/quality_received"))
                        .unwrap_or(0);
                    let expected = lost + received;
                    EpochSample {
                        loss_fraction: if expected == 0 {
                            0.0
                        } else {
                            lost as f64 / expected as f64
                        },
                        deadline_miss_delta: snap
                            .counter_delta(prev, &format!("speaker/{name}/deadline_misses"))
                            .unwrap_or(0),
                        drift_us: snap
                            .gauge(&format!("speaker/{name}/sync_offset_us"))
                            .unwrap_or(0.0) as i64,
                    }
                }
                // The first epoch has no baseline: treat as healthy.
                None => EpochSample::default(),
            };
            st.detector.observe(&name, sample);
        }
    }

    /// Drains every speaker's missing-sequence ledger and relays the
    /// ranges to the stream's live producer (neighbor-assisted refill).
    fn relay_nacks(&self, sim: &mut Sim) {
        for i in 0..self.hub.speaker_count() {
            let Some(spk) = self.hub.speaker(i) else {
                continue;
            };
            let ranges = spk.take_missing_ranges();
            if ranges.is_empty() {
                continue;
            }
            let name = spk.name();
            let sent = self.execute_retransmit(sim, &spk, &name, &ranges);
            self.state.borrow_mut().detector.stats.retransmits_requested += 1;
            self.journal().emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "heal",
                "retransmission requested",
                &[
                    ("action", "retransmit".into()),
                    ("target", name),
                    ("ranges", format!("{ranges:?}")),
                    ("packets", sent.to_string()),
                ],
            );
        }
    }

    fn execute_retransmit(
        &self,
        sim: &mut Sim,
        spk: &EthernetSpeaker,
        name: &str,
        ranges: &[(u32, u16)],
    ) -> u64 {
        // Session-routed first: the broker maps the speaker to its
        // granted stream. Statically wired speakers (no session) fall
        // back to group matching.
        if let Some(broker) = self.hub.broker.as_ref() {
            let n = broker.retransmit_for(sim, name, ranges);
            if n > 0 {
                return n;
            }
        }
        let group = spk.tuned();
        let failed_over = self.state.borrow().failed_over.clone();
        for (i, rb) in self.hub.rebroadcasters.iter().enumerate() {
            if rb.group() != group {
                continue;
            }
            let producer = if failed_over[i] {
                &self.standbys[i]
            } else {
                rb
            };
            return producer.retransmit(sim, ranges);
        }
        0
    }

    fn execute(&self, sim: &mut Sim, action: HealAction) {
        match action {
            HealAction::RaiseFec { from, to } => {
                self.apply_fec(sim, to);
                self.journal().emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Warn,
                    "heal",
                    "fec ladder raised",
                    &[
                        ("action", "raise_fec".into()),
                        ("target", "fleet".into()),
                        ("from", format!("{from:?}")),
                        ("to", format!("{to:?}")),
                    ],
                );
            }
            HealAction::LowerFec { from, to } => {
                self.apply_fec(sim, to);
                self.journal().emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Info,
                    "heal",
                    "fec ladder lowered",
                    &[
                        ("action", "lower_fec".into()),
                        ("target", "fleet".into()),
                        ("from", format!("{from:?}")),
                        ("to", format!("{to:?}")),
                    ],
                );
            }
            HealAction::Recovered { target } => {
                self.journal().emit(
                    Stamp::virtual_ns(sim.now().as_nanos()),
                    Severity::Info,
                    "heal",
                    "receiver recovered",
                    &[("action", "recovered".into()), ("target", target)],
                );
            }
            // Constructed and executed inline by the monitor itself.
            HealAction::Retransmit { .. } | HealAction::Failover => {}
        }
    }

    /// Applies a new ladder rung to every channel's *live* producer:
    /// through the broker (which also announces it via PARAM) where
    /// sessions are on, and directly to promoted standbys, which the
    /// broker's stream table does not know about.
    fn apply_fec(&self, sim: &mut Sim, to: Option<u8>) {
        if let Some(broker) = self.hub.broker.as_ref() {
            broker.update_fec(sim, to);
        } else {
            for (i, rb) in self.hub.rebroadcasters.iter().enumerate() {
                if !self.state.borrow().failed_over[i] {
                    rb.set_fec_group(sim, to);
                }
            }
        }
        for (i, standby) in self.standbys.iter().enumerate() {
            if self.state.borrow().failed_over[i] {
                standby.set_fec_group(sim, to);
            }
        }
    }

    /// A channel whose control-packet counter stops growing for
    /// `failover_after` consecutive epochs — after the stream was seen
    /// alive — has a dead primary: promote the standby.
    fn check_failover(&self, sim: &mut Sim, snap: &MetricsSnapshot) {
        let mut promotions = Vec::new();
        {
            let mut st = self.state.borrow_mut();
            for i in 0..self.hub.rebroadcasters.len() {
                let path = format!("rebroadcast/ch{i}/control_packets");
                let delta = match &st.prev {
                    Some(prev) => snap.counter_delta(prev, &path).unwrap_or(0),
                    None => snap.counter(&path).unwrap_or(0),
                };
                if delta > 0 {
                    st.chan_active[i] = true;
                    st.chan_stalled[i] = 0;
                    continue;
                }
                if !st.chan_active[i] || st.failed_over[i] {
                    continue;
                }
                st.chan_stalled[i] += 1;
                if st.chan_stalled[i] >= st.failover_after && i < self.standbys.len() {
                    st.failed_over[i] = true;
                    st.detector.stats.failovers += 1;
                    promotions.push(i);
                }
            }
        }
        for i in promotions {
            self.standbys[i].promote(sim, &self.hub.rebroadcasters[i]);
            self.journal().emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Warn,
                "heal",
                "standby promoted after control stall",
                &[("action", "failover".into()), ("target", format!("ch{i}"))],
            );
        }
    }
}
