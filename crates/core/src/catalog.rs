//! The out-of-band channel catalog (§4.3).
//!
//! "MFTP uses a separate multicast group to announce the availability
//! of data sets on other multicast groups. ... We plan to adopt this
//! approach in the next release of our streaming audio server, for the
//! announcement of information about the audio streams that are being
//! transmitted via the network. In this way the user can see which
//! programs are being multicast, rather than having to switch channels
//! to monitor the audio transmissions."
//!
//! [`CatalogAnnouncer`] multicasts the stream list periodically on a
//! well-known group; [`ChannelBrowser`] is the receive side any speaker
//! or management console can embed.

use bytes::Bytes;

use es_net::{Datagram, Lan, McastGroup, NodeId};
use es_proto::{encode_announce, AnnouncePacket, Packet, StreamInfo};
use es_sim::{shared, RepeatingTimer, Shared, Sim, SimDuration, SimTime};

/// Periodically announces the channel line-up.
#[derive(Clone)]
pub struct CatalogAnnouncer {
    state: Shared<AnnouncerState>,
}

struct AnnouncerState {
    streams: Vec<StreamInfo>,
    seq: u32,
    sent: u64,
}

impl CatalogAnnouncer {
    /// Starts announcing `streams` on `group` every second.
    pub fn start(
        sim: &mut Sim,
        lan: Lan,
        node: NodeId,
        group: McastGroup,
        streams: Vec<StreamInfo>,
    ) -> CatalogAnnouncer {
        let state = shared(AnnouncerState {
            streams,
            seq: 0,
            sent: 0,
        });
        let st2 = state.clone();
        let timer = RepeatingTimer::start_with_phase(
            sim,
            SimDuration::from_secs(1),
            SimDuration::from_millis(50),
            move |sim| {
                let pkt = {
                    let mut st = st2.borrow_mut();
                    let pkt = AnnouncePacket {
                        seq: st.seq,
                        producer_time_us: sim.now().as_micros(),
                        streams: st.streams.clone(),
                    };
                    st.seq += 1;
                    st.sent += 1;
                    pkt
                };
                lan.multicast(
                    sim,
                    node,
                    group,
                    Bytes::from(encode_announce(&pkt).to_vec()),
                );
            },
        );
        std::mem::forget(timer);
        CatalogAnnouncer { state }
    }

    /// Replaces the advertised line-up (e.g. a channel went off the
    /// air; the server "can suspend transmission of a particular
    /// channel").
    pub fn set_streams(&self, streams: Vec<StreamInfo>) {
        self.state.borrow_mut().streams = streams;
    }

    /// Announcements sent so far.
    pub fn sent(&self) -> u64 {
        self.state.borrow().sent
    }
}

/// Receives the catalog and remembers the latest line-up.
#[derive(Clone)]
pub struct ChannelBrowser {
    state: Shared<BrowserState>,
}

struct BrowserState {
    latest: Option<AnnouncePacket>,
    received_at: Option<SimTime>,
}

impl ChannelBrowser {
    /// Joins `group` on an existing LAN node and starts listening.
    ///
    /// Note: this replaces the node's receive handler; use a dedicated
    /// node for browsing (speakers keep their own handler).
    pub fn start(lan: &Lan, node: NodeId, group: McastGroup) -> ChannelBrowser {
        lan.join(node, group);
        let state = shared(BrowserState {
            latest: None,
            received_at: None,
        });
        let st = state.clone();
        lan.set_handler(node, move |sim: &mut Sim, dg: Datagram| {
            if let Ok(Packet::Announce(a)) = es_proto::decode(&dg.payload) {
                let mut s = st.borrow_mut();
                let newer = s.latest.as_ref().is_none_or(|old| a.seq >= old.seq);
                if newer {
                    s.latest = Some(a);
                    s.received_at = Some(sim.now());
                }
            }
        });
        ChannelBrowser { state }
    }

    /// The latest line-up, if any announcement arrived.
    pub fn channels(&self) -> Vec<StreamInfo> {
        self.state
            .borrow()
            .latest
            .as_ref()
            .map(|a| a.streams.clone())
            .unwrap_or_default()
    }

    /// Finds a channel by name.
    pub fn find(&self, name: &str) -> Option<StreamInfo> {
        self.channels().into_iter().find(|s| s.name == name)
    }

    /// When the latest announcement arrived.
    pub fn last_heard(&self) -> Option<SimTime> {
        self.state.borrow().received_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_audio::AudioConfig;
    use es_net::LanConfig;

    fn info(id: u16, name: &str) -> StreamInfo {
        StreamInfo {
            stream_id: id,
            group: 10 + id,
            name: name.into(),
            codec: 3,
            config: AudioConfig::CD,
            flags: 0,
            caps: es_proto::Capabilities {
                codecs: vec![0, 3],
                sample_rates: vec![44_100],
                device_class: es_proto::DeviceClass::Standard,
            },
        }
    }

    #[test]
    fn browser_learns_the_lineup() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let server = lan.attach("server");
        let console = lan.attach("console");
        let g = McastGroup(0);
        lan.join(server, g);
        let announcer = CatalogAnnouncer::start(
            &mut sim,
            lan.clone(),
            server,
            g,
            vec![info(1, "radio"), info(2, "pa")],
        );
        let browser = ChannelBrowser::start(&lan, console, g);
        assert!(browser.channels().is_empty());
        sim.run_for(SimDuration::from_secs(2));
        let chans = browser.channels();
        assert_eq!(chans.len(), 2);
        assert_eq!(browser.find("pa").unwrap().stream_id, 2);
        assert!(browser.find("nope").is_none());
        assert!(browser.last_heard().is_some());
        assert!(announcer.sent() >= 2);
    }

    #[test]
    fn lineup_updates_propagate() {
        let mut sim = Sim::new(1);
        let lan = Lan::new(LanConfig::default());
        let server = lan.attach("server");
        let console = lan.attach("console");
        let g = McastGroup(0);
        lan.join(server, g);
        let announcer =
            CatalogAnnouncer::start(&mut sim, lan.clone(), server, g, vec![info(1, "radio")]);
        let browser = ChannelBrowser::start(&lan, console, g);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(browser.channels().len(), 1);
        // A channel is suspended: next announcement drops it.
        announcer.set_streams(vec![]);
        sim.run_for(SimDuration::from_secs(2));
        assert!(browser.channels().is_empty());
    }
}
