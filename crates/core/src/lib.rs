//! # es-core — the Ethernet Speaker system, assembled
//!
//! The public face of the reproduction. One [`SystemBuilder`] call
//! assembles the whole of the paper's Figure 1 in the discrete-event
//! simulator: applications playing into VAD slaves, rebroadcasters
//! pacing/compressing/multicasting, Ethernet Speakers synchronizing and
//! playing, plus the §4.3 catalog and the §5.3 central override. The
//! [`live`] module runs the identical protocol over real UDP multicast.
//!
//! ```
//! use es_core::{ChannelSpec, SpeakerSpec, SystemBuilder};
//! use es_net::McastGroup;
//! use es_sim::SimDuration;
//!
//! let mut sys = SystemBuilder::new(42)
//!     .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
//!     .speaker(SpeakerSpec::new("lobby", McastGroup(1)))
//!     .build();
//! sys.run_for(SimDuration::from_secs(2));
//! assert!(sys.speaker(0).unwrap().stats().samples_played > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod builder;
pub mod catalog;
pub mod error;
pub mod heal_ctl;
pub mod live;
pub mod override_ctl;
pub mod session_ctl;

pub use builder::{
    ChannelSpec, EsSystem, RelaySpec, SessionSpec, Source, SpeakerSpec, SystemBuilder,
};
pub use catalog::{CatalogAnnouncer, ChannelBrowser};
pub use error::Error;
pub use heal_ctl::{HealMonitor, HealSpec};
pub use live::{
    run_live_producer, run_live_speaker, LiveProducerConfig, LiveProducerReport, LiveSpeakerReport,
};
pub use override_ctl::{OverrideController, OverrideStats};
pub use session_ctl::{BrokerStats, NegotiatedSpeaker, SessionBroker};

/// The common imports: everything a typical scenario script touches.
///
/// ```
/// use es_core::prelude::*;
///
/// let mut sys = SystemBuilder::new(7)
///     .channel(ChannelSpec::new(1, McastGroup(1), "radio"))
///     .speaker(SpeakerSpec::new("hall", McastGroup(1)))
///     .build();
/// sys.run_for(SimDuration::from_secs(1));
/// ```
pub mod prelude {
    pub use crate::builder::{
        ChannelSpec, EsSystem, RelaySpec, SessionSpec, Source, SpeakerSpec, SystemBuilder,
    };
    pub use crate::catalog::{CatalogAnnouncer, ChannelBrowser};
    pub use crate::error::Error;
    pub use crate::heal_ctl::{HealMonitor, HealSpec};
    pub use crate::override_ctl::{OverrideController, OverrideStats};
    pub use crate::session_ctl::{NegotiatedSpeaker, SessionBroker};
    pub use es_audio::AudioConfig;
    pub use es_heal::{HealPolicy, Health};
    pub use es_net::{Lan, LanConfig, McastGroup};
    pub use es_proto::{Capabilities, ClientPhase, DeviceClass, SessionPacket};
    pub use es_rebroadcast::{AppPacing, CompressionPolicy, RateLimiter};
    pub use es_sim::{Sim, SimDuration, SimTime};
    pub use es_speaker::{EthernetSpeaker, SpeakerConfig};
    pub use es_telemetry::{Journal, MetricsSnapshot, Registry, Severity, Telemetry, TimeDomain};
}
