//! The control plane, wired into the simulator: the producer-side
//! [`SessionBroker`] and the receiver-side [`NegotiatedSpeaker`].
//!
//! Both are thin transport shells around the pure state machines in
//! [`es_proto::session`]: the broker answers DISCOVER with the channel
//! line-up, grants sessions per [`es_proto::negotiate`], keeps each
//! stream's [`es_proto::SessionTable`] fresh from keepalives and
//! sweeps it on a timer; the negotiated speaker drives an
//! [`es_proto::SessionClient`] from a tick timer and applies its
//! actions to a plain [`EthernetSpeaker`] (tune, resync, volume). The
//! speaker itself remains the paper's stateless radio — negotiation is
//! a layer on top, and static `McastGroup` wiring keeps working
//! without it.

use bytes::Bytes;

use es_net::{Datagram, Dest, Lan, McastGroup, NodeId};
use es_proto::{
    encode_session, negotiate, Capabilities, ClientAction, ClientPhase, Packet, RefuseReason,
    SessionClient, SessionClientConfig, SessionEntry, SessionPacket, StreamInfo, TeardownReason,
};
use es_rebroadcast::Rebroadcaster;
use es_sim::{shared, RepeatingTimer, Shared, Sim, SimDuration};
use es_speaker::{EthernetSpeaker, SpeakerConfig};
use es_telemetry::{Journal, Registry, Severity, Stamp};

/// Control-plane counters on the producer side.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokerStats {
    /// DISCOVERs heard.
    pub discovers: u64,
    /// OFFERs sent.
    pub offers: u64,
    /// SETUPs heard.
    pub setups: u64,
    /// Sessions granted (SETUP-ACKs sent, including idempotent
    /// re-grants to retrying receivers).
    pub acks: u64,
    /// SETUPs refused.
    pub refusals: u64,
    /// KEEPALIVEs absorbed.
    pub keepalives: u64,
    /// FLUSH packets sent.
    pub flushes: u64,
    /// TEARDOWN packets sent (expiry and requested).
    pub teardowns: u64,
    /// NACK PARAMs heard and routed to a stream's retransmit cache.
    pub nacks: u64,
}

struct BrokerState {
    announce_group: McastGroup,
    /// The line-up, with each stream's rebroadcaster (its session
    /// table lives there). Declaration order; OFFERs list it verbatim.
    streams: Vec<(StreamInfo, Rebroadcaster)>,
    next_sid: u32,
    offer_seq: u32,
    session_timeout: SimDuration,
    journal: Option<Journal>,
    stats: BrokerStats,
}

/// The producer-side control plane: one broker serves every channel
/// on the host.
#[derive(Clone)]
pub struct SessionBroker {
    state: Shared<BrokerState>,
    lan: Lan,
    node: NodeId,
}

impl SessionBroker {
    /// Installs the broker on the producer's LAN node: joins the
    /// announce group, takes over the node's receive handler (the
    /// producer host had none — rebroadcasters only send), and arms
    /// the expiry sweep.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        sim: &mut Sim,
        lan: &Lan,
        node: NodeId,
        announce_group: McastGroup,
        streams: Vec<(StreamInfo, Rebroadcaster)>,
        session_timeout: SimDuration,
        sweep_interval: SimDuration,
        journal: Option<Journal>,
    ) -> SessionBroker {
        lan.join(node, announce_group);
        let state = shared(BrokerState {
            announce_group,
            streams,
            next_sid: 1,
            offer_seq: 0,
            session_timeout,
            journal,
            stats: BrokerStats::default(),
        });
        let broker = SessionBroker {
            state,
            lan: lan.clone(),
            node,
        };
        let b2 = broker.clone();
        lan.set_handler(node, move |sim, dg| b2.on_datagram(sim, dg));
        let b3 = broker.clone();
        let timer = RepeatingTimer::start_with_phase(
            sim,
            sweep_interval,
            SimDuration::from_millis(130),
            move |sim| b3.sweep(sim),
        );
        std::mem::forget(timer);
        broker
    }

    fn journal_event(&self, sim: &Sim, message: &'static str, fields: &[(&str, String)]) {
        if let Some(j) = self.state.borrow().journal.clone() {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "session",
                message,
                fields,
            );
        }
    }

    fn send_to(&self, sim: &mut Sim, dst: Dest, pkt: &SessionPacket) {
        let bytes = Bytes::from(encode_session(pkt).to_vec());
        self.lan.send(sim, self.node, dst, bytes);
    }

    fn on_datagram(&self, sim: &mut Sim, dg: Datagram) {
        let Ok(Packet::Session(sp)) = es_proto::decode(&dg.payload) else {
            return;
        };
        match sp {
            SessionPacket::Discover { speaker, .. } => {
                let offer = {
                    let mut st = self.state.borrow_mut();
                    st.stats.discovers += 1;
                    st.stats.offers += 1;
                    let seq = st.offer_seq;
                    st.offer_seq += 1;
                    SessionPacket::Offer {
                        seq,
                        streams: st.streams.iter().map(|(info, _)| info.clone()).collect(),
                    }
                };
                self.journal_event(sim, "discover heard", &[("speaker", speaker)]);
                let group = self.state.borrow().announce_group;
                self.send_to(sim, Dest::Multicast(group), &offer);
            }
            SessionPacket::Setup {
                speaker,
                stream_id,
                codec,
                playout_delay_us,
                caps,
            } => {
                self.on_setup(
                    sim,
                    dg.src,
                    speaker,
                    stream_id,
                    codec,
                    playout_delay_us,
                    caps,
                );
            }
            SessionPacket::Keepalive { session_id } => {
                let now_us = sim.now().as_micros();
                let mut st = self.state.borrow_mut();
                st.stats.keepalives += 1;
                for (_, rb) in &st.streams {
                    if rb.touch_session(session_id, now_us) {
                        break;
                    }
                }
            }
            SessionPacket::Teardown { session_id, .. } => {
                // Receiver-initiated close; the entry's removal is
                // journaled by the rebroadcaster.
                let streams: Vec<Rebroadcaster> = self
                    .state
                    .borrow()
                    .streams
                    .iter()
                    .map(|(_, rb)| rb.clone())
                    .collect();
                for rb in streams {
                    if rb.close_session(sim, session_id).is_some() {
                        break;
                    }
                }
            }
            SessionPacket::Param {
                session_id, nack, ..
            } => {
                // Receiver→producer PARAMs carry NACKed sequence
                // ranges; route them to whichever stream holds the
                // session. Producer-originated PARAMs echo back with an
                // empty NACK list and fall through harmlessly.
                if !nack.is_empty() {
                    let rb = self.state.borrow().streams.iter().find_map(|(_, rb)| {
                        rb.session_entries()
                            .iter()
                            .any(|e| e.session_id == session_id)
                            .then(|| rb.clone())
                    });
                    if let Some(rb) = rb {
                        self.state.borrow_mut().stats.nacks += 1;
                        rb.retransmit(sim, &nack);
                    }
                }
            }
            // Producer-originated kinds echoed back (or a second
            // producer on the segment): not ours to handle.
            SessionPacket::Offer { .. }
            | SessionPacket::SetupAck { .. }
            | SessionPacket::Refuse { .. }
            | SessionPacket::Flush { .. } => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_setup(
        &self,
        sim: &mut Sim,
        src: NodeId,
        speaker: String,
        stream_id: u16,
        codec: u8,
        playout_delay_us: u64,
        caps: Capabilities,
    ) {
        self.state.borrow_mut().stats.setups += 1;
        let found = self
            .state
            .borrow()
            .streams
            .iter()
            .find(|(info, _)| info.stream_id == stream_id)
            .map(|(info, rb)| (info.clone(), rb.clone()));
        let Some((info, rb)) = found else {
            self.refuse(sim, src, speaker, stream_id, RefuseReason::UnknownStream);
            return;
        };
        // A SETUP retry from a receiver that missed our ACK must not
        // open a second session: re-grant the one it already holds.
        if let Some(existing) = rb.find_session(&speaker) {
            if existing.stream_id == stream_id {
                self.state.borrow_mut().stats.acks += 1;
                let ack = SessionPacket::SetupAck {
                    session_id: existing.session_id,
                    speaker,
                    stream_id,
                    group: info.group,
                    codec: existing.codec,
                    playout_delay_us: existing.playout_delay_us,
                };
                self.send_to(sim, Dest::Unicast(src), &ack);
                return;
            }
        }
        match negotiate(&info, &caps, codec, playout_delay_us) {
            Ok(grant) => {
                let session_id = {
                    let mut st = self.state.borrow_mut();
                    let sid = st.next_sid;
                    st.next_sid += 1;
                    st.stats.acks += 1;
                    sid
                };
                let now_us = sim.now().as_micros();
                rb.open_session(
                    sim,
                    SessionEntry {
                        session_id,
                        speaker: speaker.clone(),
                        stream_id,
                        codec: grant.codec,
                        playout_delay_us: grant.playout_delay_us,
                        opened_at_us: now_us,
                        last_seen_us: now_us,
                    },
                );
                let ack = SessionPacket::SetupAck {
                    session_id,
                    speaker,
                    stream_id,
                    group: grant.group,
                    codec: grant.codec,
                    playout_delay_us: grant.playout_delay_us,
                };
                self.send_to(sim, Dest::Unicast(src), &ack);
            }
            Err(reason) => self.refuse(sim, src, speaker, stream_id, reason),
        }
    }

    fn refuse(
        &self,
        sim: &mut Sim,
        src: NodeId,
        speaker: String,
        stream_id: u16,
        reason: RefuseReason,
    ) {
        self.state.borrow_mut().stats.refusals += 1;
        self.journal_event(
            sim,
            "setup refused",
            &[
                ("speaker", speaker.clone()),
                ("stream_id", stream_id.to_string()),
                ("reason", reason.to_string()),
            ],
        );
        let pkt = SessionPacket::Refuse {
            speaker,
            stream_id,
            reason,
        };
        self.send_to(sim, Dest::Unicast(src), &pkt);
    }

    /// The timeout-driven expiry sweep: sessions whose keepalives
    /// stopped are dropped from the table and told so (best-effort —
    /// a receiver that died never hears it, one that was partitioned
    /// re-discovers either way).
    fn sweep(&self, sim: &mut Sim) {
        let (streams, timeout_us) = {
            let st = self.state.borrow();
            let rbs: Vec<Rebroadcaster> = st.streams.iter().map(|(_, rb)| rb.clone()).collect();
            (rbs, st.session_timeout.as_micros())
        };
        let now_us = sim.now().as_micros();
        let group = self.state.borrow().announce_group;
        for rb in streams {
            for dead in rb.expire_sessions(sim, now_us, timeout_us) {
                self.state.borrow_mut().stats.teardowns += 1;
                let pkt = SessionPacket::Teardown {
                    session_id: dead.session_id,
                    reason: TeardownReason::Expired,
                };
                self.send_to(sim, Dest::Multicast(group), &pkt);
            }
        }
    }

    /// Commands every live session to flush and re-gate on the next
    /// control packet (the producer-side resync after a seek or
    /// restart).
    pub fn flush_all(&self, sim: &mut Sim) {
        let streams: Vec<Rebroadcaster> = self
            .state
            .borrow()
            .streams
            .iter()
            .map(|(_, rb)| rb.clone())
            .collect();
        let group = self.state.borrow().announce_group;
        let mut flushed = 0u64;
        for rb in streams {
            for e in rb.session_entries() {
                let pkt = SessionPacket::Flush {
                    session_id: e.session_id,
                };
                self.send_to(sim, Dest::Multicast(group), &pkt);
                flushed += 1;
            }
        }
        self.state.borrow_mut().stats.flushes += flushed;
        self.journal_event(sim, "session flush", &[("sessions", flushed.to_string())]);
    }

    /// Tears down `speaker`'s session (management-initiated), telling
    /// the receiver why.
    pub fn teardown_speaker(&self, sim: &mut Sim, speaker: &str) {
        let streams: Vec<Rebroadcaster> = self
            .state
            .borrow()
            .streams
            .iter()
            .map(|(_, rb)| rb.clone())
            .collect();
        let group = self.state.borrow().announce_group;
        for rb in streams {
            if let Some(e) = rb.find_session(speaker) {
                rb.close_session(sim, e.session_id);
                self.state.borrow_mut().stats.teardowns += 1;
                let pkt = SessionPacket::Teardown {
                    session_id: e.session_id,
                    reason: TeardownReason::Requested,
                };
                self.send_to(sim, Dest::Multicast(group), &pkt);
                return;
            }
        }
    }

    /// Sends an in-session parameter update (volume in thousandths,
    /// free-form metadata) to `speaker`'s session.
    pub fn update_params(&self, sim: &mut Sim, speaker: &str, volume_milli: u16, metadata: &str) {
        let session = self
            .state
            .borrow()
            .streams
            .iter()
            .find_map(|(_, rb)| rb.find_session(speaker));
        let group = self.state.borrow().announce_group;
        if let Some(e) = session {
            let pkt = SessionPacket::param_volume(e.session_id, volume_milli, metadata.into());
            self.send_to(sim, Dest::Multicast(group), &pkt);
        }
    }

    /// Announces an FEC parity-group change (the healing plane's
    /// loss-adaptive ladder): applies it to every stream's
    /// rebroadcaster and tells each live session via a PARAM, so
    /// negotiated receivers journal the level they should expect.
    pub fn update_fec(&self, sim: &mut Sim, group: Option<u8>) {
        let streams: Vec<Rebroadcaster> = self
            .state
            .borrow()
            .streams
            .iter()
            .map(|(_, rb)| rb.clone())
            .collect();
        let announce = self.state.borrow().announce_group;
        for rb in streams {
            rb.set_fec_group(sim, group);
            for e in rb.session_entries() {
                let pkt = SessionPacket::param_fec(e.session_id, group);
                self.send_to(sim, Dest::Multicast(announce), &pkt);
            }
        }
    }

    /// Routes NACKed sequence ranges straight into the stream's
    /// retransmit cache on behalf of `speaker` (the heal monitor's
    /// management-plane path; the wire path is a receiver-originated
    /// PARAM). Returns how many cached packets went back out.
    pub fn retransmit_for(&self, sim: &mut Sim, speaker: &str, ranges: &[(u32, u16)]) -> u64 {
        let found = self
            .state
            .borrow()
            .streams
            .iter()
            .find_map(|(_, rb)| rb.find_session(speaker).map(|_| rb.clone()));
        match found {
            Some(rb) => {
                self.state.borrow_mut().stats.nacks += 1;
                rb.retransmit(sim, ranges)
            }
            None => 0,
        }
    }

    /// Live sessions across every stream.
    pub fn sessions_active(&self) -> usize {
        self.state
            .borrow()
            .streams
            .iter()
            .map(|(_, rb)| rb.sessions_active())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BrokerStats {
        self.state.borrow().stats
    }

    /// Records broker counters into `registry` under component
    /// `session`.
    pub fn record_telemetry(&self, registry: &mut Registry) {
        let st = self.state.borrow();
        let mut s = registry.component("session");
        s.counter("discovers", st.stats.discovers)
            .counter("offers", st.stats.offers)
            .counter("setups", st.stats.setups)
            .counter("acks", st.stats.acks)
            .counter("refusals", st.stats.refusals)
            .counter("keepalives", st.stats.keepalives)
            .counter("flushes", st.stats.flushes)
            .counter("teardowns", st.stats.teardowns)
            .counter("nacks", st.stats.nacks);
    }
}

struct NegState {
    client: SessionClient,
    announce_group: McastGroup,
    journal: Option<Journal>,
    /// Snapshot of the speaker's control-packet counter; growth
    /// between ticks is proof the stream is alive.
    controls_seen: u64,
}

/// A speaker that joins channels by handshake instead of static
/// group wiring. It starts tuned to the announce group, discovers the
/// line-up, negotiates a session and only then tunes to the granted
/// data group; on loss or teardown it falls back to discovery.
#[derive(Clone)]
pub struct NegotiatedSpeaker {
    spk: EthernetSpeaker,
    lan: Lan,
    state: Shared<NegState>,
}

impl NegotiatedSpeaker {
    /// How often the client's timers are advanced. Handshake latency
    /// quantizes to this; correctness does not depend on it.
    pub const TICK: SimDuration = SimDuration::from_millis(100);

    /// Starts the speaker on the announce group and begins discovery.
    /// `cfg.group` is overridden to `announce_group`; everything else
    /// (volume, epsilon, device geometry…) applies as in static mode.
    pub fn start(
        sim: &mut Sim,
        lan: &Lan,
        mut cfg: SpeakerConfig,
        announce_group: McastGroup,
        client_cfg: SessionClientConfig,
        journal: Option<Journal>,
    ) -> NegotiatedSpeaker {
        cfg.group = announce_group;
        let spk = EthernetSpeaker::start(sim, lan, cfg);
        if let Some(j) = &journal {
            spk.set_journal(j.clone());
        }
        let state = shared(NegState {
            client: SessionClient::new(client_cfg),
            announce_group,
            journal,
            controls_seen: 0,
        });
        let ns = NegotiatedSpeaker {
            spk: spk.clone(),
            lan: lan.clone(),
            state,
        };
        let ns2 = ns.clone();
        spk.set_session_handler(move |sim, sp| {
            let now_us = sim.now().as_micros();
            let actions = ns2.state.borrow_mut().client.on_packet(now_us, &sp);
            ns2.apply(sim, actions);
        });
        let ns3 = ns.clone();
        let timer = RepeatingTimer::start_with_phase(
            sim,
            Self::TICK,
            SimDuration::from_millis(10),
            move |sim| ns3.tick(sim),
        );
        std::mem::forget(timer);
        ns
    }

    fn tick(&self, sim: &mut Sim) {
        let now_us = sim.now().as_micros();
        let actions = {
            let mut st = self.state.borrow_mut();
            // Control packets on the data group are liveness: a
            // producer still describing the stream defers the session
            // timeout even if keepalive ACK-ing is quiet.
            let controls = self.spk.stats().control_packets;
            if controls > st.controls_seen {
                st.controls_seen = controls;
                st.client.note_stream_alive(now_us);
            }
            st.client.poll(now_us)
        };
        self.apply(sim, actions);
    }

    fn journal_event(&self, sim: &Sim, message: &'static str, fields: &[(&str, String)]) {
        if let Some(j) = self.state.borrow().journal.clone() {
            j.emit(
                Stamp::virtual_ns(sim.now().as_nanos()),
                Severity::Info,
                "session",
                message,
                fields,
            );
        }
    }

    fn apply(&self, sim: &mut Sim, actions: Vec<ClientAction>) {
        let announce = self.state.borrow().announce_group;
        for a in actions {
            match a {
                ClientAction::Send(pkt) => {
                    let bytes = Bytes::from(encode_session(&pkt).to_vec());
                    self.lan
                        .send(sim, self.spk.node(), Dest::Multicast(announce), bytes);
                }
                ClientAction::JoinData(g) => {
                    self.spk.tune(sim, McastGroup(g));
                    // Stay on the control plane: tune() left the
                    // announce group, re-join it.
                    self.lan.join(self.spk.node(), announce);
                }
                ClientAction::LeaveData(_) => {
                    // Tune back to the announce group (drops the data
                    // group and re-gates).
                    self.spk.tune(sim, announce);
                }
                ClientAction::Resync => self.spk.resync(sim),
                ClientAction::SetVolume(v) => self.spk.set_volume(v as f64 / 1_000.0),
                ClientAction::SetFec { group } => {
                    // The speaker adapts to whatever parity packets
                    // arrive; the announcement is journaled so a fleet
                    // operator can correlate level changes.
                    self.journal_event(
                        sim,
                        "fec level announced",
                        &[
                            ("speaker", self.spk.name()),
                            ("group", format!("{group:?}")),
                        ],
                    );
                }
                ClientAction::Established {
                    session_id,
                    stream_id,
                    group,
                    ..
                } => {
                    self.journal_event(
                        sim,
                        "session established",
                        &[
                            ("speaker", self.spk.name()),
                            ("session_id", session_id.to_string()),
                            ("stream_id", stream_id.to_string()),
                            ("group", group.to_string()),
                        ],
                    );
                }
                ClientAction::Lost { session_id } => {
                    self.journal_event(
                        sim,
                        "session lost; rediscovering",
                        &[
                            ("speaker", self.spk.name()),
                            ("session_id", session_id.to_string()),
                        ],
                    );
                }
                ClientAction::Closed { session_id, reason } => {
                    self.journal_event(
                        sim,
                        "session closed",
                        &[
                            ("speaker", self.spk.name()),
                            ("session_id", session_id.to_string()),
                            ("reason", reason.to_string()),
                        ],
                    );
                }
                ClientAction::GaveUp => {
                    self.journal_event(
                        sim,
                        "setup attempts exhausted; rediscovering",
                        &[("speaker", self.spk.name())],
                    );
                }
            }
        }
    }

    /// The underlying speaker (stats, taps, device).
    pub fn speaker(&self) -> &EthernetSpeaker {
        &self.spk
    }

    /// Where the handshake currently stands.
    pub fn phase(&self) -> ClientPhase {
        self.state.borrow().client.phase()
    }

    /// The granted session id, while established.
    pub fn session_id(&self) -> Option<u32> {
        self.state.borrow().client.session_id()
    }

    /// Handshake counters `(discovers, setups, established, lost)`.
    pub fn client_counts(&self) -> (u64, u64, u64, u64) {
        let st = self.state.borrow();
        (
            st.client.discovers_sent,
            st.client.setups_sent,
            st.client.sessions_established,
            st.client.sessions_lost,
        )
    }

    /// Records handshake counters into `registry` under component
    /// `session`.
    pub fn record_telemetry(&self, registry: &mut Registry) {
        let st = self.state.borrow();
        let mut s = registry.component("session");
        s.counter("discovers_sent", st.client.discovers_sent)
            .counter("setups_sent", st.client.setups_sent)
            .counter("sessions_established", st.client.sessions_established)
            .counter("sessions_lost", st.client.sessions_lost);
    }
}

/// Builds the [`StreamInfo`] a channel advertises, deriving the codec
/// set from its compression policy (the capability-advertisement fix:
/// announce entries used to hard-code codec 0).
pub fn stream_info_for(
    stream_id: u16,
    group: McastGroup,
    name: &str,
    config: es_audio::AudioConfig,
    flags: u16,
    policy: &es_rebroadcast::CompressionPolicy,
) -> StreamInfo {
    let (codec, _) = policy.select(&config);
    StreamInfo {
        stream_id,
        group: group.0,
        name: name.into(),
        codec: codec.to_wire(),
        config,
        flags,
        caps: Capabilities {
            codecs: policy.advertised_codecs(&config),
            sample_rates: vec![config.sample_rate],
            device_class: es_proto::DeviceClass::Standard,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_net::LanConfig;
    use es_sim::SimTime;

    /// Broker + bare client rig without audio: exercises the grant,
    /// keepalive and expiry paths end to end over the simulated LAN.
    #[test]
    fn broker_grants_and_expires_sessions() {
        let mut sim = Sim::new(11);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer-host");
        let announce = McastGroup(0);
        // A stream with a live rebroadcaster (its session table).
        let (_slave, master) = es_vad::vad_pair(es_vad::VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let rcfg = es_rebroadcast::RebroadcasterConfig::new(1, McastGroup(5));
        let rb = Rebroadcaster::start(&mut sim, lan.clone(), producer, master, rcfg);
        let info = stream_info_for(
            1,
            McastGroup(5),
            "radio",
            es_audio::AudioConfig::CD,
            0,
            &es_rebroadcast::CompressionPolicy::paper_default(),
        );
        let broker = SessionBroker::start(
            &mut sim,
            &lan,
            producer,
            announce,
            vec![(info, rb.clone())],
            SimDuration::from_millis(800),
            SimDuration::from_millis(200),
            None,
        );

        // A hand-driven client node.
        let client_node = lan.attach("es1");
        lan.join(client_node, announce);
        let inbox: Shared<Vec<SessionPacket>> = shared(Vec::new());
        let i2 = inbox.clone();
        lan.set_handler(client_node, move |_sim, dg: Datagram| {
            if let Ok(Packet::Session(sp)) = es_proto::decode(&dg.payload) {
                i2.borrow_mut().push(sp);
            }
        });
        let send = move |sim: &mut Sim, lan: &Lan, pkt: &SessionPacket| {
            let bytes = Bytes::from(encode_session(pkt).to_vec());
            lan.send(sim, client_node, Dest::Multicast(announce), bytes);
        };

        // DISCOVER → OFFER with the advertised codec set.
        let l2 = lan.clone();
        sim.schedule_at(SimTime::from_millis(10), move |sim| {
            send(
                sim,
                &l2,
                &SessionPacket::Discover {
                    seq: 0,
                    speaker: "es1".into(),
                    caps: Capabilities::any(),
                },
            );
        });
        sim.run_until(SimTime::from_millis(50));
        let offered = inbox.borrow().clone();
        let Some(SessionPacket::Offer { streams, .. }) = offered.first() else {
            panic!("no offer: {offered:?}");
        };
        assert_eq!(streams.len(), 1);
        assert!(!streams[0].caps.codecs.is_empty(), "caps advertised");

        // SETUP → ACK, session opens.
        let codec = streams[0].caps.codecs[0];
        let l3 = lan.clone();
        sim.schedule_at(SimTime::from_millis(60), move |sim| {
            send(
                sim,
                &l3,
                &SessionPacket::Setup {
                    speaker: "es1".into(),
                    stream_id: 1,
                    codec,
                    playout_delay_us: 150_000,
                    caps: Capabilities::any(),
                },
            );
        });
        sim.run_until(SimTime::from_millis(100));
        let acks: Vec<SessionPacket> = inbox.borrow().clone();
        let sid = acks
            .iter()
            .find_map(|p| match p {
                SessionPacket::SetupAck {
                    session_id,
                    group,
                    playout_delay_us,
                    ..
                } => {
                    assert_eq!(*group, 5);
                    assert_eq!(*playout_delay_us, 150_000);
                    Some(*session_id)
                }
                _ => None,
            })
            .expect("ack");
        assert_eq!(rb.sessions_active(), 1);
        assert_eq!(broker.sessions_active(), 1);

        // A duplicate SETUP re-grants the same session id.
        let l4 = lan.clone();
        sim.schedule_at(SimTime::from_millis(120), move |sim| {
            send(
                sim,
                &l4,
                &SessionPacket::Setup {
                    speaker: "es1".into(),
                    stream_id: 1,
                    codec,
                    playout_delay_us: 150_000,
                    caps: Capabilities::any(),
                },
            );
        });
        sim.run_until(SimTime::from_millis(160));
        let re_acks: Vec<u32> = inbox
            .borrow()
            .iter()
            .filter_map(|p| match p {
                SessionPacket::SetupAck { session_id, .. } => Some(*session_id),
                _ => None,
            })
            .collect();
        assert_eq!(re_acks, vec![sid, sid], "idempotent re-grant");
        assert_eq!(rb.sessions_active(), 1);

        // Silence past the timeout: the sweep expires the session and
        // multicasts TEARDOWN(expired).
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(rb.sessions_active(), 0);
        let torn: Vec<&SessionPacket> = offered.iter().collect();
        drop(torn);
        let saw_teardown = inbox.borrow().iter().any(|p| {
            matches!(
                p,
                SessionPacket::Teardown {
                    reason: TeardownReason::Expired,
                    ..
                }
            )
        });
        assert!(saw_teardown, "expiry must notify the receiver");
        let (opened, expired, closed) = rb.session_counts();
        assert_eq!((opened, expired, closed), (1, 1, 0));
    }

    #[test]
    fn unknown_stream_is_refused() {
        let mut sim = Sim::new(12);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer-host");
        let announce = McastGroup(0);
        let _broker = SessionBroker::start(
            &mut sim,
            &lan,
            producer,
            announce,
            vec![],
            SimDuration::from_secs(1),
            SimDuration::from_millis(500),
            None,
        );
        let client_node = lan.attach("es1");
        lan.join(client_node, announce);
        let inbox: Shared<Vec<SessionPacket>> = shared(Vec::new());
        let i2 = inbox.clone();
        lan.set_handler(client_node, move |_sim, dg: Datagram| {
            if let Ok(Packet::Session(sp)) = es_proto::decode(&dg.payload) {
                i2.borrow_mut().push(sp);
            }
        });
        let l2 = lan.clone();
        sim.schedule_at(SimTime::from_millis(10), move |sim| {
            let pkt = SessionPacket::Setup {
                speaker: "es1".into(),
                stream_id: 42,
                codec: 0,
                playout_delay_us: 0,
                caps: Capabilities::any(),
            };
            let bytes = Bytes::from(encode_session(&pkt).to_vec());
            l2.send(sim, client_node, Dest::Multicast(announce), bytes);
        });
        sim.run_until(SimTime::from_millis(50));
        assert!(inbox.borrow().iter().any(|p| matches!(
            p,
            SessionPacket::Refuse {
                reason: RefuseReason::UnknownStream,
                ..
            }
        )));
    }

    /// A PARAM carrying NACK ranges for an established session is
    /// routed to that stream's rebroadcaster, which re-multicasts the
    /// cached packets; an unknown session id is ignored.
    #[test]
    fn param_nack_routes_to_the_rebroadcaster() {
        let mut sim = Sim::new(13);
        let lan = Lan::new(LanConfig::default());
        let producer = lan.attach("producer-host");
        let announce = McastGroup(0);
        let data_group = McastGroup(5);
        let (slave, master) = es_vad::vad_pair(es_vad::VadMode::KernelThread {
            poll: SimDuration::from_millis(10),
        });
        let mut rcfg = es_rebroadcast::RebroadcasterConfig::new(1, data_group);
        rcfg.policy = es_rebroadcast::CompressionPolicy::Never;
        let rb = Rebroadcaster::start(&mut sim, lan.clone(), producer, master, rcfg);
        let _app = es_rebroadcast::AudioApp::start(
            &mut sim,
            std::rc::Rc::new(slave),
            es_audio::AudioConfig::CD,
            Box::new(es_audio::gen::Sine::new(440.0, 44_100, 0.5)),
            SimDuration::from_secs(3),
            es_rebroadcast::AppPacing::RealTime,
        )
        .unwrap();
        let info = stream_info_for(
            1,
            data_group,
            "radio",
            es_audio::AudioConfig::CD,
            0,
            &es_rebroadcast::CompressionPolicy::paper_default(),
        );
        let broker = SessionBroker::start(
            &mut sim,
            &lan,
            producer,
            announce,
            vec![(info, rb.clone())],
            SimDuration::from_secs(10),
            SimDuration::from_millis(500),
            None,
        );

        let client_node = lan.attach("es1");
        lan.join(client_node, announce);
        lan.join(client_node, data_group);
        let inbox: Shared<Vec<SessionPacket>> = shared(Vec::new());
        let data_seqs: Shared<Vec<u32>> = shared(Vec::new());
        let (i2, d2) = (inbox.clone(), data_seqs.clone());
        lan.set_handler(
            client_node,
            move |_sim, dg: Datagram| match es_proto::decode(&dg.payload) {
                Ok(Packet::Session(sp)) => i2.borrow_mut().push(sp),
                Ok(Packet::Data(d)) => d2.borrow_mut().push(d.seq),
                _ => {}
            },
        );
        let send = move |sim: &mut Sim, lan: &Lan, pkt: &SessionPacket| {
            let bytes = Bytes::from(encode_session(pkt).to_vec());
            lan.send(sim, client_node, Dest::Multicast(announce), bytes);
        };

        let l2 = lan.clone();
        sim.schedule_at(SimTime::from_millis(10), move |sim| {
            send(
                sim,
                &l2,
                &SessionPacket::Setup {
                    speaker: "es1".into(),
                    stream_id: 1,
                    codec: 0,
                    playout_delay_us: 150_000,
                    caps: Capabilities::any(),
                },
            );
        });
        sim.run_until(SimTime::from_secs(2));
        let sid = inbox
            .borrow()
            .iter()
            .find_map(|p| match p {
                SessionPacket::SetupAck { session_id, .. } => Some(*session_id),
                _ => None,
            })
            .expect("session granted");
        let max_seq = *data_seqs.borrow().iter().max().expect("data flowed");

        // NACK two recent sequences, plus one for a session the broker
        // has never heard of.
        let l3 = lan.clone();
        sim.schedule_at(SimTime::from_millis(2_010), move |sim| {
            send(
                sim,
                &l3,
                &SessionPacket::param_nack(sid, vec![(max_seq - 1, 2)]),
            );
            send(
                sim,
                &l3,
                &SessionPacket::param_nack(sid.wrapping_add(999), vec![(0, 1)]),
            );
        });
        sim.run_until(SimTime::from_millis(2_500));

        assert_eq!(broker.stats().nacks, 1, "unknown session must not route");
        assert_eq!(rb.stats().retransmits_sent, 2);
        let copies = data_seqs
            .borrow()
            .iter()
            .filter(|&&s| s == max_seq - 1)
            .count();
        assert_eq!(copies, 2, "original + retransmission");
    }
}
