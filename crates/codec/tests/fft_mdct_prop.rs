//! Property tests for the FFT-based MDCT fast path.
//!
//! The fast path must be indistinguishable (to 1e-3, relative to the
//! signal scale) from the retained direct O(N²) reference across the
//! block sizes the codec family uses, and the full OVL encode/decode
//! chain must keep its perfect-reconstruction property at default
//! settings: the windowed transform itself is lossless, so a
//! max-quality roundtrip only carries quantization noise.

use es_codec::mdct::{analyze, synthesize, Mdct};
use es_codec::reference::DirectMdct;
use es_codec::{OvlCodec, MAX_QUALITY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZES: [usize; 4] = [64, 128, 256, 512];

fn random_signal(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
}

/// A random mixture of tones — the content transform coders are built
/// for, used where a quality floor is asserted.
fn random_tonal(len: usize, seed: u64) -> Vec<i16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tones: Vec<(f32, f32, f32)> = (0..4)
        .map(|_| {
            (
                rng.gen::<f32>() * 0.02 + 0.001, // angular step
                rng.gen::<f32>() * core::f32::consts::TAU,
                rng.gen::<f32>() * 0.2 + 0.05,
            )
        })
        .collect();
    (0..len)
        .map(|t| {
            let v: f32 = tones
                .iter()
                .map(|&(step, phase, amp)| (t as f32 * step + phase).sin() * amp)
                .sum();
            (v.clamp(-1.0, 1.0) * 32_000.0) as i16
        })
        .collect()
}

proptest::proptest! {
    #[test]
    fn prop_fft_forward_matches_direct_reference(size_idx in 0usize..4, seed in 0u64..u64::MAX / 2) {
        let n = SIZES[size_idx];
        let fast = Mdct::new(n);
        proptest::prop_assert!(fast.uses_fft());
        let reference = DirectMdct::new(n);
        let signal = random_signal(2 * n, seed);
        let mut got = vec![0.0f32; n];
        let mut want = vec![0.0f32; n];
        fast.forward(&signal, &mut got);
        reference.forward(&signal, &mut want);
        let scale = want.iter().fold(1.0f32, |m, &c| m.max(c.abs()));
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            proptest::prop_assert!(
                (g - w).abs() < 1e-3 * scale,
                "n {} coeff {}: {} vs {}", n, k, g, w
            );
        }
    }

    #[test]
    fn prop_fft_inverse_matches_direct_reference(size_idx in 0usize..4, seed in 0u64..u64::MAX / 2) {
        let n = SIZES[size_idx];
        let fast = Mdct::new(n);
        let reference = DirectMdct::new(n);
        let coeffs = random_signal(n, seed ^ 0x9E37_79B9);
        let mut got = vec![0.0f32; 2 * n];
        let mut want = vec![0.0f32; 2 * n];
        fast.inverse(&coeffs, &mut got);
        reference.inverse(&coeffs, &mut want);
        let scale = want.iter().fold(1.0f32, |m, &c| m.max(c.abs()));
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            proptest::prop_assert!(
                (g - w).abs() < 1e-3 * scale,
                "n {} sample {}: {} vs {}", n, t, g, w
            );
        }
    }

    #[test]
    fn prop_overlap_add_reconstructs_perfectly(size_idx in 0usize..4, blocks in 1usize..6, seed in 0u64..u64::MAX / 2) {
        // The transform chain without quantization is lossless: analyze
        // then synthesize must return the input to within f32 noise.
        let n = SIZES[size_idx];
        let mdct = Mdct::new(n);
        let signal = random_signal(blocks * n, seed);
        let rec = synthesize(&mdct, &analyze(&mdct, &signal));
        proptest::prop_assert_eq!(rec.len(), signal.len());
        for (i, (&a, &b)) in signal.iter().zip(&rec).enumerate() {
            proptest::prop_assert!((a - b).abs() < 1e-3, "sample {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn prop_ovl_roundtrip_at_default_settings(frames in 1usize..3_000, channels in 1u8..3, seed in 0u64..u64::MAX / 2) {
        let codec = OvlCodec::new();
        let samples = random_tonal(frames * channels as usize, seed);
        let enc = codec.encode(&samples, channels, MAX_QUALITY);
        let dec = codec.decode(&enc.bytes).expect("roundtrip must decode");
        proptest::prop_assert_eq!(dec.channels, channels);
        proptest::prop_assert_eq!(dec.samples.len(), samples.len());
        // Max quality only adds quantization noise; tonal content must
        // come back close to the original.
        let err = samples
            .iter()
            .zip(&dec.samples)
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap_or(0);
        proptest::prop_assert!(err < 2_048, "max sample error {}", err);
    }
}
