//! Property tests for the batch DSP kernels (`es_codec::dsp`).
//!
//! The batch kernels are the chunked, autovectorizer-friendly forms
//! of the per-sample loops the codec used to run inline; the scalar
//! originals are retained in `dsp::scalar` as the oracle. The contract
//! is *bit identity*, not closeness: each kernel keeps its elementwise
//! expression literally identical to the scalar original, so every
//! output must match to the last bit across block sizes (64..512),
//! channel layouts (mono/stereo/5.1-ish) and the full quality range —
//! that is what keeps the 1/2/4-lane determinism fingerprints stable.
//!
//! The final test closes the loop end-to-end: a full OVL
//! encode → decode built from the kernels is byte/bit-identical
//! between independent codec instances and between the allocating and
//! arena (`decode_into`) decode surfaces.

use es_codec::{dsp, OvlCodec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_f32(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen::<f32>() * 2.4 - 1.2).collect()
}

fn random_i16(len: usize, seed: u64) -> Vec<i16> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen::<i16>()).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest::proptest! {
    #[test]
    fn prop_deinterleave_matches_scalar(
        n in 64usize..=512,
        ch in 1usize..=6,
        c in 0usize..6,
        seed in 0u64..u64::MAX / 2,
    ) {
        let c = c % ch;
        let samples = random_i16(n * ch, seed);
        let mut fast = vec![0.0f32; n];
        let mut slow = vec![0.0f32; n];
        dsp::deinterleave_normalize(&samples, ch, c, &mut fast);
        dsp::scalar::deinterleave_normalize(&samples, ch, c, &mut slow);
        proptest::prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn prop_interleave_matches_scalar(
        n in 64usize..=512,
        ch in 1usize..=6,
        c in 0usize..6,
        seed in 0u64..u64::MAX / 2,
    ) {
        let c = c % ch;
        let synth = random_f32(n, seed);
        let mut fast = vec![0i16; n * ch];
        let mut slow = vec![0i16; n * ch];
        dsp::interleave_denormalize(&synth, ch, c, &mut fast);
        dsp::scalar::interleave_denormalize(&synth, ch, c, &mut slow);
        proptest::prop_assert_eq!(fast, slow);
    }

    #[test]
    fn prop_quantize_roundtrip_matches_scalar(
        n in 64usize..=512,
        bits_alloc in 2u32..=12,
        seed in 0u64..u64::MAX / 2,
    ) {
        let band = random_f32(n, seed);
        let scale = dsp::peak_abs(&band).max(1e-6);
        let qmax = (1i32 << (bits_alloc - 1)) - 1;
        let mut q_fast = vec![0i32; n];
        let mut q_slow = vec![0i32; n];
        dsp::quantize_band(&band, scale, qmax, &mut q_fast);
        dsp::scalar::quantize_band(&band, scale, qmax, &mut q_slow);
        proptest::prop_assert_eq!(&q_fast, &q_slow);
        let mut d_fast = vec![0.0f32; n];
        let mut d_slow = vec![0.0f32; n];
        dsp::dequantize_band(&q_fast, scale, qmax, &mut d_fast);
        dsp::scalar::dequantize_band(&q_slow, scale, qmax, &mut d_slow);
        proptest::prop_assert_eq!(bits(&d_fast), bits(&d_slow));
    }

    #[test]
    fn prop_accumulate_matches_scalar(n in 64usize..=512, seed in 0u64..u64::MAX / 2) {
        let add = random_f32(n, seed);
        let mut fast = random_f32(n, seed ^ 0xDEAD_BEEF);
        let mut slow = fast.clone();
        dsp::accumulate(&mut fast, &add);
        dsp::scalar::accumulate(&mut slow, &add);
        proptest::prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn prop_peak_abs_matches_naive_max(n in 0usize..=512, seed in 0u64..u64::MAX / 2) {
        let band = random_f32(n, seed);
        let mut naive = 0.0f32;
        for &c in &band {
            naive = naive.max(c.abs());
        }
        proptest::prop_assert_eq!(dsp::peak_abs(&band).to_bits(), naive.to_bits());
    }

    /// The composed contract: OVL decode built from the batch kernels
    /// is deterministic across codec instances (fresh arenas, same
    /// bits) and identical between the allocating `decode` and the
    /// arena `decode_into` surfaces — across frame counts that
    /// exercise partial windows, mono/stereo, and every quality.
    #[test]
    fn prop_ovl_decode_is_instance_and_surface_invariant(
        frames in 64usize..=512,
        stereo in proptest::bool::ANY,
        quality in 0u8..=10,
        seed in 0u64..u64::MAX / 2,
    ) {
        let ch = if stereo { 2 } else { 1 };
        let samples = random_i16(frames * ch, seed);
        let a = OvlCodec::new();
        let b = OvlCodec::new();
        let ea = a.encode(&samples, ch as u8, quality);
        let eb = b.encode(&samples, ch as u8, quality);
        proptest::prop_assert_eq!(&ea.bytes, &eb.bytes, "encode must not depend on arena history");
        let da = a.decode(&ea.bytes).expect("decode");
        let mut into = vec![1i16; 7]; // dirty, wrong-sized: decode_into must reset it
        let (ch_into, _) = b.decode_into(&ea.bytes, &mut into).expect("decode_into");
        proptest::prop_assert_eq!(da.channels, ch_into);
        proptest::prop_assert_eq!(&da.samples, &into);
        // Same instance, second decode: the warm arena must not leak
        // state between packets.
        let again = a.decode(&ea.bytes).expect("redecode");
        proptest::prop_assert_eq!(&da.samples, &again.samples);
    }
}
