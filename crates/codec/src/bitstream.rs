//! Bit-level I/O and Rice/Golomb coding.
//!
//! The OVL transform codec (this workspace's stand-in for Ogg Vorbis,
//! see [`crate::ovl`]) packs quantized coefficients with Rice coding;
//! this module provides the MSB-first bit writer/reader plus the
//! zig-zag signed mapping both the OVL and ADPCM paths use.

/// MSB-first bit writer.
///
/// Bits accumulate in a 64-bit register and spill to the byte vector
/// eight bytes at a time, so a Rice code (flag + unary + remainder)
/// costs a couple of shifts instead of one loop iteration per bit.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    // Pending bits, left-aligned: the MSB of `acc` is the next bit to
    // reach the stream.
    acc: u64,
    // Number of valid bits in `acc` (0..64).
    fill: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer backed by `bytes` (cleared), reusing its
    /// allocation across packets.
    pub fn with_buffer(mut bytes: Vec<u8>) -> Self {
        bytes.clear();
        BitWriter {
            bytes,
            acc: 0,
            fill: 0,
        }
    }

    #[inline]
    fn flush_acc(&mut self) {
        // Spill whole bytes from the top of the accumulator.
        while self.fill >= 8 {
            self.bytes.push((self.acc >> 56) as u8);
            self.acc <<= 8;
            self.fill -= 8;
        }
    }

    /// Appends the low `n` bits of `value`, MSB first. `n` may be 0..=32.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        if n == 0 {
            return;
        }
        let n = n as u32;
        let masked = (value as u64) & (u64::MAX >> (64 - n));
        if self.fill + n > 64 {
            self.flush_acc();
        }
        self.acc |= masked << (64 - n - self.fill);
        self.fill += n;
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.fill == 64 {
            self.flush_acc();
        }
        self.acc |= (bit as u64) << (63 - self.fill);
        self.fill += 1;
    }

    /// Writes `value` in unary: `value` one-bits then a zero-bit.
    #[inline]
    pub fn write_unary(&mut self, value: u32) {
        let mut ones = value;
        // Runs of up to 32 set bits go out as one masked write.
        while ones >= 32 {
            self.write_bits(u32::MAX, 32);
            ones -= 32;
        }
        // `ones` one-bits followed by the terminating zero-bit.
        if ones == 31 {
            self.write_bits(u32::MAX - 1, 32);
        } else {
            self.write_bits((1u32 << (ones + 1)) - 2, (ones + 1) as u8);
        }
    }

    /// Writes a non-negative value Rice-coded with parameter `k`:
    /// quotient in unary, remainder in `k` raw bits.
    #[inline]
    pub fn write_rice(&mut self, value: u32, k: u8) {
        assert!(k < 32, "rice parameter must be < 32");
        let q = value >> k;
        self.write_unary(q);
        self.write_bits(value & ((1u32 << k) - 1), k);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.fill as usize
    }

    /// Finishes the stream, padding the final byte with zero bits.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.flush_acc();
        if self.fill > 0 {
            self.bytes.push((self.acc >> 56) as u8);
        }
        self.bytes
    }

    /// Finishes the stream into `out` (appending), returning the
    /// writer's buffer for reuse. Zero-allocation counterpart of
    /// [`BitWriter::into_bytes`].
    pub fn drain_into(mut self, out: &mut Vec<u8>) -> Vec<u8> {
        self.flush_acc();
        if self.fill > 0 {
            self.bytes.push((self.acc >> 56) as u8);
        }
        out.extend_from_slice(&self.bytes);
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
///
/// Mirrors [`BitWriter`]: bytes stream into a left-aligned 64-bit
/// accumulator, so Rice decodes resolve their unary run with one
/// `leading_zeros` instead of a per-bit loop.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    // Next byte to load into the accumulator.
    byte_pos: usize,
    // Loaded bits, left-aligned; bits below `fill` are zero.
    acc: u64,
    // Number of valid bits in `acc` (0..=64).
    fill: u32,
}

/// Error returned when a read runs past the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl core::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("bitstream exhausted")
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            byte_pos: 0,
            acc: 0,
            fill: 0,
        }
    }

    /// Remaining readable bits.
    pub fn remaining(&self) -> usize {
        (self.bytes.len() - self.byte_pos) * 8 + self.fill as usize
    }

    #[inline]
    fn refill(&mut self) {
        while self.fill <= 56 && self.byte_pos < self.bytes.len() {
            // es-allow(panic-path): byte_pos < len is the loop condition one token earlier
            self.acc |= (self.bytes[self.byte_pos] as u64) << (56 - self.fill);
            self.fill += 8;
            self.byte_pos += 1;
        }
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        if self.fill == 0 {
            self.refill();
            if self.fill == 0 {
                return Err(OutOfBits);
            }
        }
        let bit = self.acc >> 63;
        self.acc <<= 1;
        self.fill -= 1;
        Ok(bit == 1)
    }

    /// Reads `n` bits MSB-first into the low bits of the result.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Result<u32, OutOfBits> {
        assert!(n <= 32, "cannot read more than 32 bits at once");
        if n == 0 {
            return Ok(0);
        }
        let n = n as u32;
        if self.fill < n {
            self.refill();
            if self.fill < n {
                return Err(OutOfBits);
            }
        }
        let v = (self.acc >> (64 - n)) as u32;
        self.acc <<= n;
        self.fill -= n;
        Ok(v)
    }

    /// Reads a unary-coded value, bounded to guard against corrupt
    /// streams (fails after 2^20 consecutive one-bits).
    #[inline]
    pub fn read_unary(&mut self) -> Result<u32, OutOfBits> {
        let mut v = 0u32;
        loop {
            if self.fill == 0 {
                self.refill();
                if self.fill == 0 {
                    return Err(OutOfBits);
                }
            }
            // Bits below `fill` are zero, so `!acc` has a set bit at or
            // above position `fill` and this count never overshoots.
            let ones = (!self.acc).leading_zeros();
            if ones < self.fill {
                // The run terminates inside the loaded bits: consume the
                // ones plus the terminating zero in one shift.
                v += ones;
                // `ones + 1` can reach 64 (a 63-one run filling the
                // accumulator); shift in two steps to stay in range.
                self.acc = (self.acc << ones) << 1;
                self.fill -= ones + 1;
                if v > (1 << 20) {
                    return Err(OutOfBits);
                }
                return Ok(v);
            }
            // The whole accumulator is ones; drain it and keep going.
            v += self.fill;
            self.acc = 0;
            self.fill = 0;
            if v > (1 << 20) {
                return Err(OutOfBits);
            }
        }
    }

    /// Reads a Rice-coded value with parameter `k`.
    #[inline]
    pub fn read_rice(&mut self, k: u8) -> Result<u32, OutOfBits> {
        let q = self.read_unary()?;
        let r = self.read_bits(k)?;
        Ok((q << k) | r)
    }
}

/// Maps a signed integer to an unsigned one with small magnitudes
/// staying small: 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4.
pub fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// Picks a Rice parameter close to optimal for values with the given
/// mean magnitude.
pub fn rice_param_for_mean(mean: f64) -> u8 {
    if mean < 1.0 {
        return 0;
    }
    (mean.log2().ceil() as i64).clamp(0, 24) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF_FFFF, 32);
        w.write_bits(0, 1);
        w.write_bits(0b01, 2);
        assert_eq!(w.bit_len(), 38);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xFFFF_FFFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(2).unwrap(), 0b01);
    }

    #[test]
    fn reading_past_end_fails() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAA);
        assert_eq!(r.read_bits(1), Err(OutOfBits));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for v in [0u32, 1, 5, 40] {
            w.write_unary(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in [0u32, 1, 5, 40] {
            assert_eq!(r.read_unary().unwrap(), v);
        }
    }

    #[test]
    fn corrupt_unary_is_bounded() {
        let bytes = vec![0xFF; 1 << 18];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary(), Err(OutOfBits));
    }

    #[test]
    fn rice_roundtrip_various_params() {
        for k in 0..12u8 {
            let mut w = BitWriter::new();
            let values = [0u32, 1, 7, 100, 1_000];
            for &v in &values {
                w.write_rice(v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(r.read_rice(k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn zigzag_examples() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(4), 2);
    }

    #[test]
    fn rice_param_heuristic() {
        assert_eq!(rice_param_for_mean(0.3), 0);
        assert_eq!(rice_param_for_mean(1.0), 0);
        assert_eq!(rice_param_for_mean(7.9), 3);
        assert_eq!(rice_param_for_mean(1e12), 24);
    }

    proptest! {
        #[test]
        fn prop_bits_roundtrip(values in proptest::collection::vec((0u32..=u32::MAX, 1u8..=32), 0..64)) {
            let mut w = BitWriter::new();
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1u32 << n) - 1) };
                w.write_bits(masked, n);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, n) in &values {
                let masked = if n == 32 { v } else { v & ((1u32 << n) - 1) };
                prop_assert_eq!(r.read_bits(n).unwrap(), masked);
            }
        }

        #[test]
        fn prop_zigzag_roundtrip(v in i32::MIN..=i32::MAX) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        #[test]
        fn prop_rice_roundtrip(values in proptest::collection::vec(0u32..100_000, 0..32), k in 0u8..16) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.write_rice(v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.read_rice(k).unwrap(), v);
            }
        }
    }
}
