//! Batch DSP kernels over flat `f32` slices.
//!
//! The OVL hot path (deinterleave → window → MDCT → quantize on
//! encode; dequantize → IMDCT → overlap-add → interleave on decode)
//! used to run as per-sample indexed loops inside `ovl.rs`/`mdct.rs`.
//! Each kernel here is the chunked, bounds-check-free form of one of
//! those loops: iteration is expressed with `zip`/`chunks_exact` so
//! the autovectorizer can SIMD it, while the *elementwise expression
//! is kept literally identical* to the scalar original — so output is
//! bit-identical, not merely close, and the 1/2/4-lane determinism
//! fingerprints are unaffected by this refactor.
//!
//! The scalar originals are retained in [`scalar`] as the
//! property-test oracle (`tests/dsp_kernels_prop.rs` asserts bit
//! identity across block sizes, qualities and channel layouts).

// es-hot-path

/// Deinterleaves channel `c` out of `ch`-channel interleaved
/// `samples` into `out`, normalizing i16 to ±1.0. Writes
/// `min(out.len(), samples.len() / ch)` frames.
pub fn deinterleave_normalize(samples: &[i16], ch: usize, c: usize, out: &mut [f32]) {
    debug_assert!(c < ch);
    if ch == 1 {
        for (o, &s) in out.iter_mut().zip(samples) {
            *o = s as f32 / 32_768.0;
        }
    } else {
        for (o, frame) in out.iter_mut().zip(samples.chunks_exact(ch)) {
            // es-allow(panic-path): chunks_exact(ch) frames hold ch samples and c < ch is the documented precondition
            *o = frame[c] as f32 / 32_768.0;
        }
    }
}

/// Scatters one reconstructed channel back into `ch`-channel
/// interleaved i16 `out` (channel `c`), denormalizing from ±1.0 with
/// the codec's saturating clamp. Writes
/// `min(synth.len(), out.len() / ch)` frames.
pub fn interleave_denormalize(synth: &[f32], ch: usize, c: usize, out: &mut [i16]) {
    debug_assert!(c < ch);
    if ch == 1 {
        for (o, &v) in out.iter_mut().zip(synth) {
            *o = (v * 32_767.0).clamp(-32_768.0, 32_767.0) as i16;
        }
    } else {
        for (frame, &v) in out.chunks_exact_mut(ch).zip(synth) {
            // es-allow(panic-path): chunks_exact_mut(ch) frames hold ch samples and c < ch is the documented precondition
            frame[c] = (v * 32_767.0).clamp(-32_768.0, 32_767.0) as i16;
        }
    }
}

/// Quantizes one band of coefficients: `out[i]` is `band[i]` scaled by
/// `1/scale`, stretched to the `qmax` grid, rounded and clamped.
pub fn quantize_band(band: &[f32], scale: f32, qmax: i32, out: &mut [i32]) {
    let qmax_f = qmax as f32;
    for (o, &c) in out.iter_mut().zip(band) {
        *o = ((c / scale * qmax_f).round() as i32).clamp(-qmax, qmax);
    }
}

/// Inverse of [`quantize_band`]: rescales quantized values back to
/// coefficients. The expression matches the historical decode loop
/// (`q as f32 * scale / qmax as f32`) exactly.
pub fn dequantize_band(quantized: &[i32], scale: f32, qmax: i32, out: &mut [f32]) {
    let qmax_f = qmax as f32;
    for (o, &q) in out.iter_mut().zip(quantized) {
        *o = q as f32 * scale / qmax_f;
    }
}

/// Elementwise `acc[i] += add[i]` over the overlapping region — the
/// overlap-add inner loop. Adds `min(acc.len(), add.len())` values.
pub fn accumulate(acc: &mut [f32], add: &[f32]) {
    for (a, &v) in acc.iter_mut().zip(add) {
        *a += v;
    }
}

/// Largest absolute value in `band` (0.0 for an empty band).
pub fn peak_abs(band: &[f32]) -> f32 {
    band.iter().fold(0.0f32, |m, &c| m.max(c.abs()))
}

// es-hot-path-end

/// Scalar reference implementations — the exact per-sample indexed
/// loops the batch kernels replaced, retained as the property-test
/// oracle. Not used by the hot path.
pub mod scalar {
    /// Reference for [`super::deinterleave_normalize`].
    pub fn deinterleave_normalize(samples: &[i16], ch: usize, c: usize, out: &mut [f32]) {
        let frames = out.len().min(samples.len() / ch);
        for (f, o) in out.iter_mut().enumerate().take(frames) {
            *o = samples[f * ch + c] as f32 / 32_768.0;
        }
    }

    /// Reference for [`super::interleave_denormalize`].
    pub fn interleave_denormalize(synth: &[f32], ch: usize, c: usize, out: &mut [i16]) {
        let frames = synth.len().min(out.len() / ch);
        for (f, &v) in synth.iter().enumerate().take(frames) {
            out[f * ch + c] = (v * 32_767.0).clamp(-32_768.0, 32_767.0) as i16;
        }
    }

    /// Reference for [`super::quantize_band`].
    pub fn quantize_band(band: &[f32], scale: f32, qmax: i32, out: &mut [i32]) {
        for (i, &c) in band.iter().enumerate() {
            // es-allow(panic-path): scalar reference impl; callers size out to the band length
            out[i] = ((c / scale * qmax as f32).round() as i32).clamp(-qmax, qmax);
        }
    }

    /// Reference for [`super::dequantize_band`].
    pub fn dequantize_band(quantized: &[i32], scale: f32, qmax: i32, out: &mut [f32]) {
        for (i, &q) in quantized.iter().enumerate() {
            // es-allow(panic-path): scalar reference impl; callers size out to the band length
            out[i] = q as f32 * scale / qmax as f32;
        }
    }

    /// Reference for [`super::accumulate`].
    pub fn accumulate(acc: &mut [f32], add: &[f32]) {
        let n = acc.len().min(add.len());
        for i in 0..n {
            // es-allow(panic-path): n is the min of both lengths so both indices are in bounds
            acc[i] += add[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deinterleave_matches_scalar_stereo() {
        let samples: Vec<i16> = (0..64).map(|i| (i * 997 - 16_000) as i16).collect();
        for c in 0..2 {
            let mut fast = vec![0.0f32; 32];
            let mut slow = vec![0.0f32; 32];
            deinterleave_normalize(&samples, 2, c, &mut fast);
            scalar::deinterleave_normalize(&samples, 2, c, &mut slow);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn interleave_clamps_and_matches_scalar() {
        let synth: Vec<f32> = (0..33).map(|i| (i as f32 - 16.0) / 8.0).collect();
        let mut fast = vec![0i16; 66];
        let mut slow = vec![0i16; 66];
        interleave_denormalize(&synth, 2, 1, &mut fast);
        scalar::interleave_denormalize(&synth, 2, 1, &mut slow);
        assert_eq!(fast, slow);
        // Out-of-range inputs saturate, never wrap.
        assert_eq!(fast[1], -32_768);
        assert_eq!(fast[65], 32_767);
    }

    #[test]
    fn quant_dequant_match_scalar() {
        let band: Vec<f32> = (0..37)
            .map(|i| ((i * 31) % 17) as f32 / 7.0 - 1.0)
            .collect();
        let mut q_fast = vec![0i32; 37];
        let mut q_slow = vec![0i32; 37];
        quantize_band(&band, 0.5, 127, &mut q_fast);
        scalar::quantize_band(&band, 0.5, 127, &mut q_slow);
        assert_eq!(q_fast, q_slow);
        let mut d_fast = vec![0.0f32; 37];
        let mut d_slow = vec![0.0f32; 37];
        dequantize_band(&q_fast, 0.5, 127, &mut d_fast);
        scalar::dequantize_band(&q_slow, 0.5, 127, &mut d_slow);
        assert_eq!(d_fast, d_slow);
    }

    #[test]
    fn accumulate_matches_scalar() {
        let add: Vec<f32> = (0..48).map(|i| i as f32 * 0.125).collect();
        let mut fast: Vec<f32> = (0..48).map(|i| 1.0 - i as f32 * 0.0625).collect();
        let mut slow = fast.clone();
        accumulate(&mut fast, &add);
        scalar::accumulate(&mut slow, &add);
        assert_eq!(fast, slow);
    }

    #[test]
    fn peak_abs_finds_magnitude() {
        assert_eq!(peak_abs(&[]), 0.0);
        assert_eq!(peak_abs(&[0.25, -0.75, 0.5]), 0.75);
    }
}
