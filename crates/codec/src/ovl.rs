//! OVL — the "Ogg-Vorbis-Like" lossy transform codec.
//!
//! The paper compresses high-bitrate channels with Ogg Vorbis (§2.2),
//! chosen for being patent-free and psycho-acoustically lossy with a
//! quality index. Linking libvorbis is outside this reproduction's
//! dependency budget, so OVL reimplements the same *shape* of codec
//! from scratch:
//!
//! - windowed MDCT analysis (sine window, 50% overlap, N = 512),
//! - per-band scale factors with quality-controlled bit allocation
//!   (more bits at low frequencies, fewer as quality drops — a crude
//!   psycho-acoustic model),
//! - Rice-coded quantized coefficients.
//!
//! Like the paper's streams, every packet is independently decodable:
//! a lost packet costs only its own samples (§2.3's friendly-LAN
//! assumption makes heavier resilience unnecessary).
//!
//! The encoder reports *work units* (multiply-accumulate counts), which
//! the Figure 4 harness converts to Geode-class CPU cycles.

use std::cell::RefCell;

use es_sim::CostModel;

use crate::bitstream::{unzigzag, zigzag, BitReader, BitWriter};
use crate::mdct::Mdct;

/// Half-length of the MDCT (coefficients per window).
pub const BLOCK: usize = 512;

/// Maximum quality index ("we simply set the Ogg Vorbis quality index
/// to its maximum", §2.2).
pub const MAX_QUALITY: u8 = 10;

/// Errors from OVL decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OvlError {
    /// Payload shorter than the fixed header.
    ShortHeader,
    /// A header field is out of range.
    BadHeader(&'static str),
    /// The coefficient bitstream ended early or was corrupt.
    BadBitstream,
}

impl core::fmt::Display for OvlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OvlError::ShortHeader => f.write_str("ovl payload shorter than header"),
            OvlError::BadHeader(w) => write!(f, "ovl header invalid: {w}"),
            OvlError::BadBitstream => f.write_str("ovl coefficient bitstream corrupt"),
        }
    }
}

impl std::error::Error for OvlError {}

/// Result of an encode: payload plus the CPU cost accounting.
#[derive(Debug, Clone)]
pub struct OvlEncoded {
    /// Self-contained packet payload.
    pub bytes: Vec<u8>,
    /// Multiply-accumulate work performed (for the CPU model).
    pub work_units: u64,
}

/// Result of a decode.
#[derive(Debug, Clone)]
pub struct OvlDecoded {
    /// Interleaved samples.
    pub samples: Vec<i16>,
    /// Channel count from the payload header.
    pub channels: u8,
    /// Multiply-accumulate work performed (for the CPU model).
    pub work_units: u64,
}

/// Returns the coefficient band widths for a half-length of `n`:
/// narrow bands at low frequencies, doubling every four bands, the
/// last band absorbing the remainder.
pub fn band_widths(n: usize) -> Vec<usize> {
    // es-allow(hot-path-transitive): band layout is computed once at codec construction, not per-frame
    let mut widths = Vec::new();
    let mut w = 4usize;
    let mut remaining = n;
    let mut count = 0;
    while remaining > 0 {
        if count > 0 && count % 4 == 0 {
            w = (w * 2).min(128);
        }
        let take = w.min(remaining);
        widths.push(take);
        remaining -= take;
        count += 1;
    }
    // A short tail band would get its own scale factor and flag for
    // almost no coefficients; merge it into its neighbour instead.
    if widths.len() > 1 {
        // es-allow(panic-path): len() > 1 guarantees last() and the len-2 index; the merged band keeps the vec non-empty
        let last = *widths.last().expect("non-empty");
        // es-allow(panic-path): len() > 1 guarantees the len-2 index
        if last < widths[widths.len() - 2] {
            widths.pop();
            *widths.last_mut().expect("non-empty") += last;
        }
    }
    widths
}

/// Bits allocated to `band` at `quality`; `None` means the band is
/// culled entirely. Low bands keep more bits; dropping quality steepens
/// the roll-off — the crude psycho-acoustic model.
pub fn band_bits(quality: u8, band: usize) -> Option<u8> {
    let q = quality.min(MAX_QUALITY) as f32;
    let base = 3.2 + 0.6 * q;
    let rolloff = 0.38 - 0.024 * q;
    let bits = base - band as f32 * rolloff;
    let bits = bits.round();
    if bits < 2.0 {
        None
    } else {
        Some(bits.min(12.0) as u8)
    }
}

/// The OVL codec engine. Construction precomputes the MDCT tables;
/// reuse one instance across packets — the window pipeline runs out of
/// a flat [`DecodeArena`] that grows once and is reused per packet, so
/// steady-state encode and decode perform no per-packet allocation
/// beyond the returned payload/output buffers (which callers can also
/// recycle via [`OvlCodec::decode_into`]).
pub struct OvlCodec {
    mdct: Mdct,
    widths: Vec<usize>,
    arena: RefCell<DecodeArena>,
}

/// Reusable per-packet workspace (single-threaded; the sim never
/// re-enters a codec call — each fleet decode lane owns its own codec
/// instance and therefore its own arena).
#[derive(Default)]
struct DecodeArena {
    /// One channel's deinterleaved, zero-padded time samples.
    plane: Vec<f32>,
    /// Flat MDCT coefficients for all channels: channel `c`'s windows
    /// occupy `coeffs[c * windows * BLOCK..][..windows * BLOCK]`.
    coeffs: Vec<f32>,
    /// One channel's reconstructed time samples.
    synth: Vec<f32>,
    /// Quantized coefficient staging for one band (encode and decode):
    /// Rice I/O is serial, scaling is a batch kernel over this buffer.
    qbuf: Vec<i32>,
    /// Recycled backing store for the encode-side bit writer.
    bits: Vec<u8>,
}

impl Default for OvlCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl OvlCodec {
    /// Creates an engine with the standard block size and the default
    /// (fast-path) cost model.
    pub fn new() -> Self {
        OvlCodec::with_cost_model(CostModel::default())
    }

    /// Creates an engine billing MDCT work under `cost_model` (see
    /// [`es_sim::CostModel`]); execution is identical either way.
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        OvlCodec {
            mdct: Mdct::with_cost_model(BLOCK, cost_model),
            widths: band_widths(BLOCK),
            arena: RefCell::new(DecodeArena::default()),
        }
    }

    /// Encodes interleaved samples into a self-contained packet.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is 0 or `samples.len()` is not a multiple
    /// of `channels`.
    pub fn encode(&self, samples: &[i16], channels: u8, quality: u8) -> OvlEncoded {
        assert!(channels >= 1, "need at least one channel");
        assert!(
            samples.len().is_multiple_of(channels as usize),
            "sample count must be a multiple of the channel count"
        );
        let quality = quality.min(MAX_QUALITY);
        let ch = channels as usize;
        let per_ch = samples.len() / ch;
        let padded_len = per_ch.div_ceil(BLOCK) * BLOCK;

        let mut work: u64 = samples.len() as u64 * 4;

        // Deinterleave, pad and analyze channel by channel into one
        // flat coefficient buffer, then pack windows interleaved by
        // channel so the decoder can stream in the same order.
        let n_windows = self.mdct.analyze_windows(padded_len);
        let wn = n_windows * BLOCK;
        let mut arena = self.arena.borrow_mut();
        let arena = &mut *arena;
        arena.coeffs.resize(ch * wn, 0.0);
        arena.plane.resize(padded_len, 0.0);
        for c in 0..ch {
            crate::dsp::deinterleave_normalize(samples, ch, c, &mut arena.plane[..per_ch]);
            arena.plane[per_ch..].fill(0.0);
            self.mdct
                .analyze_into(&arena.plane, &mut arena.coeffs[c * wn..(c + 1) * wn]);
            work += n_windows as u64 * self.mdct.ops_per_transform();
        }

        let mut bw = BitWriter::with_buffer(std::mem::take(&mut arena.bits));
        arena.qbuf.resize(BLOCK, 0);
        for w in 0..n_windows {
            for c in 0..ch {
                let coeffs = &arena.coeffs[c * wn + w * BLOCK..][..BLOCK];
                pack_window(&self.widths, &mut bw, coeffs, quality, &mut arena.qbuf);
            }
        }

        let mut bytes = Vec::with_capacity(6 + bw.bit_len() / 8 + 1);
        bytes.push(channels);
        bytes.push(quality);
        bytes.extend_from_slice(&(per_ch as u32).to_le_bytes());
        arena.bits = bw.drain_into(&mut bytes);
        OvlEncoded {
            bytes,
            work_units: work,
        }
    }

    /// Decodes a packet produced by [`OvlCodec::encode`].
    pub fn decode(&self, bytes: &[u8]) -> Result<OvlDecoded, OvlError> {
        let mut samples = Vec::new();
        let (channels, work_units) = self.decode_into(bytes, &mut samples)?;
        Ok(OvlDecoded {
            samples,
            channels,
            work_units,
        })
    }

    // es-hot-path
    /// Decodes a packet into a caller-provided buffer (cleared and
    /// resized), returning `(channels, work_units)`. Reusing `out`
    /// across packets makes steady-state decode allocation-free.
    pub fn decode_into(&self, bytes: &[u8], out: &mut Vec<i16>) -> Result<(u8, u64), OvlError> {
        if bytes.len() < 6 {
            return Err(OvlError::ShortHeader);
        }
        // es-allow(panic-path): header indices and arena slice ranges are guarded by the len() < 6 bail-out and the resize calls above each use
        let channels = bytes[0];
        let quality = bytes[1];
        if !(1..=8).contains(&channels) {
            return Err(OvlError::BadHeader("channel count"));
        }
        if quality > MAX_QUALITY {
            return Err(OvlError::BadHeader("quality index"));
        }
        let per_ch = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]) as usize;
        if per_ch > 1 << 24 {
            return Err(OvlError::BadHeader("sample count"));
        }
        let ch = channels as usize;
        let padded_len = per_ch.div_ceil(BLOCK) * BLOCK;
        let n_windows = padded_len / BLOCK + 1;

        let mut br = BitReader::new(&bytes[6..]);
        let mut work: u64 = (per_ch * ch) as u64 * 2;
        let wn = n_windows * BLOCK;
        let mut arena = self.arena.borrow_mut();
        let arena = &mut *arena;
        arena.coeffs.resize(ch * wn, 0.0);
        arena.qbuf.resize(BLOCK, 0);
        for w in 0..n_windows {
            for c in 0..ch {
                let coeffs = &mut arena.coeffs[c * wn + w * BLOCK..][..BLOCK];
                unpack_window(&self.widths, &mut br, quality, coeffs, &mut arena.qbuf)?;
            }
        }

        out.clear();
        out.resize(per_ch * ch, 0);
        for c in 0..ch {
            self.mdct
                .synthesize_into(&arena.coeffs[c * wn..(c + 1) * wn], &mut arena.synth);
            work += n_windows as u64 * self.mdct.ops_per_transform();
            crate::dsp::interleave_denormalize(&arena.synth[..per_ch], ch, c, out);
        }
        Ok((channels, work))
    }
}

fn pack_window(
    widths: &[usize],
    bw: &mut BitWriter,
    coeffs: &[f32],
    quality: u8,
    qbuf: &mut [i32],
) {
    // Masking model: a band whose peak sits far enough below the
    // frame's loudest coefficient is inaudible next to it and is
    // culled outright. The margin widens with quality (quality 10
    // keeps everything within 60 dB of the peak).
    let frame_max = crate::dsp::peak_abs(coeffs);
    let mask_db = 30.0 + 3.0 * quality as f32;
    let cull_floor = (frame_max * 10f32.powf(-mask_db / 20.0)).max(1e-4);
    let mut start = 0usize;
    for (b, &width) in widths.iter().enumerate() {
        // es-allow(panic-path): widths sum to coeffs.len() by band-layout construction, and qbuf is sized to the widest band
        let band = &coeffs[start..start + width];
        start += width;
        let bits = band_bits(quality, b);
        let max_mag = crate::dsp::peak_abs(band);
        let (bits, keep) = match bits {
            Some(bits) if max_mag >= cull_floor => (bits, true),
            _ => (0, false),
        };
        if !keep {
            bw.write_bit(false);
            continue;
        }
        bw.write_bit(true);
        // Scale exponent: smallest e with 2^e >= max_mag.
        let e = max_mag.log2().ceil().clamp(-32.0, 31.0) as i32;
        bw.write_bits((e + 32) as u32, 6);
        let scale = (e as f32).exp2();
        let qmax = (1i32 << (bits - 1)) - 1;
        let quantized = &mut qbuf[..width];
        crate::dsp::quantize_band(band, scale, qmax, quantized);
        // Rice parameter adapted to this band's actual content;
        // tonal bands are mostly zeros and pack near one bit per
        // coefficient.
        let mean =
            quantized.iter().map(|&q| zigzag(q) as f64).sum::<f64>() / quantized.len() as f64;
        let k = crate::bitstream::rice_param_for_mean(mean).min(12);
        bw.write_bits(k as u32, 4);
        for &q in quantized.iter() {
            bw.write_rice(zigzag(q), k);
        }
    }
}

fn unpack_window(
    widths: &[usize],
    br: &mut BitReader<'_>,
    quality: u8,
    coeffs: &mut [f32],
    qbuf: &mut [i32],
) -> Result<(), OvlError> {
    coeffs.fill(0.0);
    let mut start = 0usize;
    for (b, &width) in widths.iter().enumerate() {
        let keep = br.read_bit().map_err(|_| OvlError::BadBitstream)?;
        if !keep {
            start += width;
            continue;
        }
        let bits = band_bits(quality, b).ok_or(OvlError::BadBitstream)?;
        let e = br.read_bits(6).map_err(|_| OvlError::BadBitstream)? as i32 - 32;
        let scale = (e as f32).exp2();
        let qmax = (1i32 << (bits - 1)) - 1;
        let k = br.read_bits(4).map_err(|_| OvlError::BadBitstream)? as u8;
        // Two phases: the Rice reads are serial (each code's length
        // depends on the bits before it), the rescale is a batch
        // kernel over the staged integers.
        // es-allow(panic-path): widths sum to coeffs.len() by band-layout construction, and qbuf is sized to the widest band
        let quantized = &mut qbuf[..width];
        for slot in quantized.iter_mut() {
            let q = unzigzag(br.read_rice(k).map_err(|_| OvlError::BadBitstream)?);
            if q.abs() > qmax {
                return Err(OvlError::BadBitstream);
            }
            *slot = q;
        }
        crate::dsp::dequantize_band(quantized, scale, qmax, &mut coeffs[start..start + width]);
        start += width;
    }
    Ok(())
}

// es-hot-path-end

#[cfg(test)]
mod tests {
    use super::*;
    use es_audio::analysis::snr_db;
    use es_audio::gen::{render_stereo, MultiTone, Signal, Sine};

    fn music_stereo(frames: usize) -> Vec<i16> {
        let mut l = MultiTone::music(44_100);
        let mut r = Sine::new(523.25, 44_100, 0.4);
        render_stereo(&mut l, &mut r, frames)
    }

    #[test]
    fn band_widths_cover_block_exactly() {
        let w = band_widths(BLOCK);
        assert_eq!(w.iter().sum::<usize>(), BLOCK);
        assert!(w.windows(2).all(|p| p[1] >= p[0]), "widths must not shrink");
        assert_eq!(w[0], 4);
    }

    #[test]
    fn band_bits_monotone_in_quality_and_band() {
        for b in 0..band_widths(BLOCK).len() {
            let low = band_bits(0, b).unwrap_or(0);
            let high = band_bits(10, b).unwrap_or(0);
            assert!(high >= low, "band {b}");
        }
        // Low frequencies always survive at max quality.
        assert!(band_bits(10, 0).unwrap() >= 8);
        // Very high bands die at quality 0.
        assert_eq!(band_bits(0, 15), None);
    }

    #[test]
    fn roundtrip_preserves_shape_at_max_quality() {
        let codec = OvlCodec::new();
        let samples = music_stereo(2_048);
        let enc = codec.encode(&samples, 2, MAX_QUALITY);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.channels, 2);
        assert_eq!(dec.samples.len(), samples.len());
        let snr = snr_db(&samples, &dec.samples).unwrap();
        assert!(snr > 25.0, "max-quality SNR too low: {snr} dB");
    }

    #[test]
    fn compression_actually_compresses() {
        let codec = OvlCodec::new();
        let samples = music_stereo(4_096);
        let raw_bytes = samples.len() * 2;
        let enc = codec.encode(&samples, 2, MAX_QUALITY);
        assert!(
            enc.bytes.len() * 2 < raw_bytes,
            "max quality must be at least 2:1 on tonal content: {} vs {raw_bytes}",
            enc.bytes.len()
        );
        let enc_low = codec.encode(&samples, 2, 2);
        assert!(
            enc_low.bytes.len() * 6 < raw_bytes,
            "low quality must be at least 6:1: {} vs {raw_bytes}",
            enc_low.bytes.len()
        );
    }

    #[test]
    fn quality_trades_size_for_snr() {
        let codec = OvlCodec::new();
        let samples = music_stereo(2_048);
        let mut last_size = 0usize;
        let mut snr_low = 0.0;
        let mut snr_high = 0.0;
        for q in [0u8, 5, 10] {
            let enc = codec.encode(&samples, 2, q);
            assert!(
                enc.bytes.len() >= last_size,
                "size must not shrink as quality rises"
            );
            last_size = enc.bytes.len();
            let dec = codec.decode(&enc.bytes).unwrap();
            let snr = snr_db(&samples, &dec.samples).unwrap();
            if q == 0 {
                snr_low = snr;
            }
            if q == 10 {
                snr_high = snr;
            }
        }
        assert!(
            snr_high > snr_low + 6.0,
            "SNR must improve with quality: {snr_low} -> {snr_high}"
        );
    }

    #[test]
    fn silence_is_tiny() {
        let codec = OvlCodec::new();
        let silence = vec![0i16; 4_096];
        let enc = codec.encode(&silence, 2, MAX_QUALITY);
        // All bands empty: one flag bit per band per window.
        assert!(enc.bytes.len() < 200, "{} bytes", enc.bytes.len());
        let dec = codec.decode(&enc.bytes).unwrap();
        assert!(dec.samples.iter().all(|&s| s.abs() < 16));
    }

    #[test]
    fn non_multiple_of_block_roundtrips() {
        let codec = OvlCodec::new();
        let samples = music_stereo(777);
        let enc = codec.encode(&samples, 2, 8);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.samples.len(), samples.len());
        assert!(snr_db(&samples, &dec.samples).unwrap() > 15.0);
    }

    #[test]
    fn mono_roundtrips() {
        let codec = OvlCodec::new();
        let mut m = MultiTone::music(44_100);
        let samples: Vec<i16> = (0..3_000)
            .map(|_| es_audio::gen::f32_to_i16(m.next_sample()))
            .collect();
        let enc = codec.encode(&samples, 1, 9);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.channels, 1);
        assert!(snr_db(&samples, &dec.samples).unwrap() > 20.0);
    }

    #[test]
    fn empty_input_roundtrips() {
        let codec = OvlCodec::new();
        let enc = codec.encode(&[], 2, 5);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert!(dec.samples.is_empty());
    }

    #[test]
    fn work_units_scale_with_input() {
        let codec = OvlCodec::new();
        let small = codec.encode(&music_stereo(1_024), 2, 10);
        let large = codec.encode(&music_stereo(8_192), 2, 10);
        assert!(large.work_units > small.work_units * 4);
    }

    #[test]
    fn decode_rejects_garbage() {
        let codec = OvlCodec::new();
        assert!(matches!(codec.decode(&[]), Err(OvlError::ShortHeader)));
        assert!(matches!(codec.decode(&[1, 2]), Err(OvlError::ShortHeader)));
        // Bad channel count.
        assert!(matches!(
            codec.decode(&[0, 5, 0, 0, 0, 0]),
            Err(OvlError::BadHeader(_))
        ));
        // Valid header but truncated bitstream.
        let samples = music_stereo(1_024);
        let enc = codec.encode(&samples, 2, 10);
        let truncated = &enc.bytes[..enc.bytes.len() / 2];
        assert!(matches!(
            codec.decode(truncated),
            Err(OvlError::BadBitstream)
        ));
    }

    #[test]
    fn decode_rejects_absurd_sample_count() {
        let codec = OvlCodec::new();
        let mut bytes = vec![1u8, 5];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            codec.decode(&bytes),
            Err(OvlError::BadHeader("sample count"))
        ));
    }
}
