//! The codec registry: one uniform encode/decode surface.
//!
//! The rebroadcaster picks a codec per stream (§2.2's selective
//! compression policy); the wire protocol carries the codec id in every
//! data packet so a speaker can decode any stream it tunes to without
//! negotiating with the producer (§2.3's stateless design).

use es_audio::convert::{decode_samples_into, encode_samples};
use es_audio::Encoding;

use crate::adpcm::{adpcm_decode_into, adpcm_encode, AdpcmError};
use crate::ovl::{OvlCodec, OvlError, MAX_QUALITY};

/// Wire identifiers for payload codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// Uncompressed signed 16-bit little-endian PCM — what early
    /// versions of the paper's system sent ("the raw data as it was
    /// extracted from the VAD").
    Pcm = 0,
    /// G.711 µ-law, 2:1 on 16-bit sources, negligible CPU.
    ULaw = 1,
    /// IMA ADPCM, 4:1, negligible CPU.
    Adpcm = 2,
    /// The OVL lossy transform codec (the Ogg Vorbis stand-in), best
    /// ratio, highest CPU.
    Ovl = 3,
}

impl CodecId {
    /// All codecs, for exhaustive tests and sweeps.
    pub const ALL: [CodecId; 4] = [CodecId::Pcm, CodecId::ULaw, CodecId::Adpcm, CodecId::Ovl];

    /// Wire discriminant.
    pub const fn to_wire(self) -> u8 {
        self as u8
    }

    /// Decodes the wire discriminant.
    pub const fn from_wire(v: u8) -> Option<CodecId> {
        Some(match v {
            0 => CodecId::Pcm,
            1 => CodecId::ULaw,
            2 => CodecId::Adpcm,
            3 => CodecId::Ovl,
            _ => return None,
        })
    }
}

impl core::fmt::Display for CodecId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            CodecId::Pcm => "pcm",
            CodecId::ULaw => "ulaw",
            CodecId::Adpcm => "adpcm",
            CodecId::Ovl => "ovl",
        })
    }
}

/// Errors from the uniform codec surface.
#[derive(Debug)]
pub enum CodecError {
    /// Unknown wire codec id.
    UnknownCodec(u8),
    /// OVL payload problem.
    Ovl(OvlError),
    /// ADPCM payload problem.
    Adpcm(AdpcmError),
    /// The payload's channel layout disagrees with the stream config.
    ChannelMismatch {
        /// Channels the stream configuration promises.
        expected: u8,
        /// Channels found in the payload.
        got: u8,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CodecError::Ovl(e) => write!(f, "ovl: {e}"),
            CodecError::Adpcm(e) => write!(f, "adpcm: {e}"),
            CodecError::ChannelMismatch { expected, got } => {
                write!(
                    f,
                    "payload has {got} channels, stream config says {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<OvlError> for CodecError {
    fn from(e: OvlError) -> Self {
        CodecError::Ovl(e)
    }
}

impl From<AdpcmError> for CodecError {
    fn from(e: AdpcmError) -> Self {
        CodecError::Adpcm(e)
    }
}

/// An encoded packet payload plus its cost accounting.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Codec that produced the payload.
    pub codec: CodecId,
    /// The payload bytes.
    pub bytes: Vec<u8>,
    /// Abstract CPU work performed (multiply-accumulate scale; see the
    /// Figure 4 calibration in `es-bench`).
    pub work_units: u64,
}

/// A codec engine holding the expensive precomputed state (MDCT
/// tables). Reuse one per producer/speaker.
pub struct Codecs {
    ovl: OvlCodec,
}

impl Default for Codecs {
    fn default() -> Self {
        Self::new()
    }
}

impl Codecs {
    /// Creates the engine with the default (fast-path) cost model.
    pub fn new() -> Self {
        Codecs::with_cost_model(es_sim::CostModel::default())
    }

    /// Creates the engine billing transform work under `cost_model`
    /// (see [`es_sim::CostModel`]); execution is identical either way.
    pub fn with_cost_model(cost_model: es_sim::CostModel) -> Self {
        Codecs {
            ovl: OvlCodec::with_cost_model(cost_model),
        }
    }

    /// Encodes interleaved samples with the chosen codec. `quality`
    /// only affects [`CodecId::Ovl`].
    ///
    /// # Panics
    ///
    /// Panics if `channels` is 0 or the sample count is not a multiple
    /// of the channel count (caller bugs, not data errors).
    pub fn encode(&self, codec: CodecId, samples: &[i16], channels: u8, quality: u8) -> Encoded {
        assert!(channels >= 1, "need at least one channel");
        assert!(
            samples.len().is_multiple_of(channels as usize),
            "torn final frame"
        );
        match codec {
            CodecId::Pcm => Encoded {
                codec,
                bytes: encode_samples(samples, Encoding::Slinear16Le),
                work_units: samples.len() as u64,
            },
            CodecId::ULaw => Encoded {
                codec,
                bytes: encode_samples(samples, Encoding::ULaw),
                work_units: samples.len() as u64 * 2,
            },
            CodecId::Adpcm => Encoded {
                codec,
                bytes: adpcm_encode(samples, channels),
                work_units: samples.len() as u64 * 4,
            },
            CodecId::Ovl => {
                let out = self.ovl.encode(samples, channels, quality.min(MAX_QUALITY));
                Encoded {
                    codec,
                    bytes: out.bytes,
                    work_units: out.work_units,
                }
            }
        }
    }

    /// Decodes a payload back to interleaved samples. `channels` is the
    /// stream configuration's channel count; self-describing payloads
    /// (OVL, ADPCM) are cross-checked against it.
    pub fn decode(
        &self,
        codec: CodecId,
        bytes: &[u8],
        channels: u8,
    ) -> Result<(Vec<i16>, u64), CodecError> {
        let mut out = Vec::new();
        let work = self.decode_into(codec, bytes, channels, &mut out)?;
        Ok((out, work))
    }

    /// [`Codecs::decode`] into a caller-provided buffer (cleared
    /// first), returning the work units. Reusing `out` across packets
    /// makes the steady-state decode path allocation-free end to end —
    /// the per-lane fleet decoders thread a recycled buffer through
    /// here.
    pub fn decode_into(
        &self,
        codec: CodecId,
        bytes: &[u8],
        channels: u8,
        out: &mut Vec<i16>,
    ) -> Result<u64, CodecError> {
        match codec {
            CodecId::Pcm => {
                decode_samples_into(bytes, Encoding::Slinear16Le, out);
                Ok(out.len() as u64)
            }
            CodecId::ULaw => {
                decode_samples_into(bytes, Encoding::ULaw, out);
                Ok(out.len() as u64 * 2)
            }
            CodecId::Adpcm => {
                let ch = adpcm_decode_into(bytes, out)?;
                if ch != channels {
                    return Err(CodecError::ChannelMismatch {
                        expected: channels,
                        got: ch,
                    });
                }
                Ok(out.len() as u64 * 4)
            }
            CodecId::Ovl => {
                let (ch, work) = self.ovl.decode_into(bytes, out)?;
                if ch != channels {
                    return Err(CodecError::ChannelMismatch {
                        expected: channels,
                        got: ch,
                    });
                }
                Ok(work)
            }
        }
    }

    /// Decodes by wire id, for protocol paths.
    pub fn decode_wire(
        &self,
        wire_codec: u8,
        bytes: &[u8],
        channels: u8,
    ) -> Result<(Vec<i16>, u64), CodecError> {
        let codec = CodecId::from_wire(wire_codec).ok_or(CodecError::UnknownCodec(wire_codec))?;
        self.decode(codec, bytes, channels)
    }

    /// [`Codecs::decode_wire`] into a caller-provided buffer.
    pub fn decode_wire_into(
        &self,
        wire_codec: u8,
        bytes: &[u8],
        channels: u8,
        out: &mut Vec<i16>,
    ) -> Result<u64, CodecError> {
        let codec = CodecId::from_wire(wire_codec).ok_or(CodecError::UnknownCodec(wire_codec))?;
        self.decode_into(codec, bytes, channels, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_audio::analysis::snr_db;
    use es_audio::gen::{render_stereo, MultiTone, Sine};

    fn stereo(frames: usize) -> Vec<i16> {
        let mut l = MultiTone::music(44_100);
        let mut r = Sine::new(440.0, 44_100, 0.5);
        render_stereo(&mut l, &mut r, frames)
    }

    #[test]
    fn wire_id_roundtrip() {
        for c in CodecId::ALL {
            assert_eq!(CodecId::from_wire(c.to_wire()), Some(c));
        }
        assert_eq!(CodecId::from_wire(99), None);
    }

    #[test]
    fn pcm_is_lossless() {
        let codecs = Codecs::new();
        let s = stereo(1_000);
        let enc = codecs.encode(CodecId::Pcm, &s, 2, 0);
        assert_eq!(enc.bytes.len(), s.len() * 2);
        let (dec, _) = codecs.decode(CodecId::Pcm, &enc.bytes, 2).unwrap();
        assert_eq!(dec, s);
    }

    #[test]
    fn all_codecs_roundtrip_with_reasonable_snr() {
        let codecs = Codecs::new();
        let s = stereo(4_096);
        for c in CodecId::ALL {
            let enc = codecs.encode(c, &s, 2, 10);
            let (dec, _) = codecs.decode(c, &enc.bytes, 2).unwrap();
            assert_eq!(dec.len(), s.len(), "{c}");
            let snr = snr_db(&s, &dec).unwrap();
            let floor = match c {
                CodecId::Pcm => 100.0,
                CodecId::ULaw => 25.0,
                CodecId::Adpcm => 20.0,
                CodecId::Ovl => 25.0,
            };
            assert!(snr >= floor, "{c}: snr {snr} < {floor}");
        }
    }

    #[test]
    fn compression_ratios_are_ordered() {
        let codecs = Codecs::new();
        let s = stereo(8_192);
        let size = |c| codecs.encode(c, &s, 2, 10).bytes.len();
        let pcm = size(CodecId::Pcm);
        let ulaw = size(CodecId::ULaw);
        let adpcm = size(CodecId::Adpcm);
        let ovl = size(CodecId::Ovl);
        assert_eq!(ulaw * 2, pcm);
        assert!(adpcm < ulaw, "adpcm {adpcm} vs ulaw {ulaw}");
        assert!(ovl < pcm / 2, "ovl {ovl} vs pcm {pcm}");
    }

    #[test]
    fn ovl_costs_most_cpu() {
        // Under the default FFT accounting OVL is ~12x ADPCM; under the
        // paper-fidelity direct model it stays >100x.
        let codecs = Codecs::new();
        let s = stereo(4_096);
        let work = |c| codecs.encode(c, &s, 2, 10).work_units;
        assert!(work(CodecId::Ovl) > work(CodecId::Adpcm) * 10);
        assert!(work(CodecId::Adpcm) >= work(CodecId::ULaw));
        assert!(work(CodecId::ULaw) >= work(CodecId::Pcm));

        let paper = Codecs::with_cost_model(es_sim::CostModel::Direct);
        let direct_work = paper.encode(CodecId::Ovl, &s, 2, 10).work_units;
        assert!(direct_work > work(CodecId::Adpcm) * 100);
        assert!(
            direct_work > work(CodecId::Ovl) * 5,
            "direct billing must dominate"
        );
    }

    #[test]
    fn channel_mismatch_detected() {
        let codecs = Codecs::new();
        let s = stereo(1_024);
        for c in [CodecId::Adpcm, CodecId::Ovl] {
            let enc = codecs.encode(c, &s, 2, 10);
            assert!(matches!(
                codecs.decode(c, &enc.bytes, 1),
                Err(CodecError::ChannelMismatch {
                    expected: 1,
                    got: 2
                })
            ));
        }
    }

    #[test]
    fn unknown_wire_codec_rejected() {
        let codecs = Codecs::new();
        assert!(matches!(
            codecs.decode_wire(42, &[], 2),
            Err(CodecError::UnknownCodec(42))
        ));
        assert!(codecs.decode_wire(0, &[0, 0], 2).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::ChannelMismatch {
            expected: 2,
            got: 1,
        };
        assert!(format!("{e}").contains("1 channels"));
        assert!(format!("{}", CodecError::UnknownCodec(7)).contains('7'));
    }
}
