//! An iterative radix-2 complex FFT for the MDCT fast path.
//!
//! The MDCT in [`crate::mdct`] reduces both its forward and inverse
//! transforms to one complex FFT of the full window length (2N), so a
//! single engine here serves both directions. The implementation is the
//! textbook in-place decimation-in-time form: bit-reversal permutation
//! followed by log2(len) butterfly passes against a precomputed twiddle
//! table. Only power-of-two lengths are supported; the MDCT falls back
//! to its direct reference transform for anything else.

/// A single-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };

    /// Builds a complex number from Cartesian parts.
    pub fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// `e^{iθ}` for the given angle in radians.
    pub fn from_angle(theta: f32) -> Self {
        Complex32 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Scales both parts by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Complex32 {
        Complex32 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl core::ops::Mul for Complex32 {
    type Output = Complex32;

    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl core::ops::Add for Complex32 {
    type Output = Complex32;

    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl core::ops::Sub for Complex32 {
    type Output = Complex32;

    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

/// A forward complex FFT engine for one fixed power-of-two length,
/// using the `e^{-2πi k/len}` kernel.
pub struct Fft {
    len: usize,
    /// Stage-packed twiddles: for each butterfly pass with half-width
    /// `h` (h = 2, 4, …, len/2), the `h` factors `e^{-2πi k/(2h)}`
    /// laid out contiguously — the inner loop walks them sequentially
    /// instead of striding through one shared table.
    twiddles: Vec<Complex32>,
    /// Bit-reversal permutation of `0..len`.
    rev: Vec<u32>,
}

impl Fft {
    /// Creates an engine for transforms of `len` points.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a power of two or is smaller than 2.
    pub fn new(len: usize) -> Self {
        assert!(
            len >= 2 && len.is_power_of_two(),
            "FFT length must be a power of two"
        );
        let mut twiddles = Vec::with_capacity(len.saturating_sub(2));
        let mut half = 2usize;
        while half < len {
            for k in 0..half {
                let theta = -core::f32::consts::PI * k as f32 / half as f32;
                twiddles.push(Complex32::from_angle(theta));
            }
            half *= 2;
        }
        let bits = len.trailing_zeros();
        let rev = (0..len as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            // es-allow(hot-path-transitive): bit-reversal table built once in Fft::new, reused every transform
            .collect();
        Fft { len, twiddles, rev }
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false; a valid engine has at least 2 points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform: `buf[k] = Σ_t buf[t]·e^{-2πi tk/len}`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the engine length.
    pub fn forward(&self, buf: &mut [Complex32]) {
        assert_eq!(buf.len(), self.len, "buffer must match FFT length");
        for (i, &r) in self.rev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                buf.swap(i, r);
            }
        }
        // First pass (half = 1): the twiddle is 1, so each butterfly is
        // a bare add/sub over adjacent pairs — no multiplies.
        for pair in buf.chunks_exact_mut(2) {
            // es-allow(panic-path): chunks_exact_mut(2) pairs always hold two elements; twiddle slices are sized off..off+half by construction
            let a = pair[0];
            let b = pair[1];
            pair[0] = a + b;
            pair[1] = a - b;
        }
        // Remaining passes: split each block into its low/high halves
        // and walk them in lockstep with the strided twiddles, keeping
        // every access bounds-check-free.
        let mut half = 2usize;
        let mut off = 0usize;
        while half < self.len {
            let stage = &self.twiddles[off..off + half];
            for block in buf.chunks_exact_mut(2 * half) {
                let (lo, hi) = block.split_at_mut(half);
                for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                    let t = *b * w;
                    let x = *a;
                    *a = x + t;
                    *b = x - t;
                }
            }
            off += half;
            half *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Direct O(N²) DFT with the same kernel, for cross-checking.
    fn dft(input: &[Complex32]) -> Vec<Complex32> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex32::ZERO;
                for (t, &x) in input.iter().enumerate() {
                    let theta = -2.0 * core::f64::consts::PI * (t * k) as f64 / n as f64;
                    acc = acc + x * Complex32::new(theta.cos() as f32, theta.sin() as f32);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_direct_dft_across_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [2usize, 4, 8, 64, 256, 1024] {
            let input: Vec<Complex32> = (0..len)
                .map(|_| Complex32::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5))
                .collect();
            let want = dft(&input);
            let fft = Fft::new(len);
            let mut got = input.clone();
            fft.forward(&mut got);
            let tol = 1e-3 * (len as f32).sqrt();
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g.re - w.re).abs() < tol && (g.im - w.im).abs() < tol,
                    "len {len} bin {k}: got ({}, {}) want ({}, {})",
                    g.re,
                    g.im,
                    w.re,
                    w.im
                );
            }
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let fft = Fft::new(16);
        let mut buf = vec![Complex32::ZERO; 16];
        buf[0] = Complex32::new(1.0, 0.0);
        fft.forward(&mut buf);
        for (k, v) in buf.iter().enumerate() {
            assert!((v.re - 1.0).abs() < 1e-6 && v.im.abs() < 1e-6, "bin {k}");
        }
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let fft = Fft::new(32);
        let mut buf = vec![Complex32::new(1.0, 0.0); 32];
        fft.forward(&mut buf);
        assert!((buf[0].re - 32.0).abs() < 1e-4);
        for v in &buf[1..] {
            assert!(v.re.abs() < 1e-3 && v.im.abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "match FFT length")]
    fn wrong_buffer_length_panics() {
        let fft = Fft::new(8);
        let mut buf = vec![Complex32::ZERO; 4];
        fft.forward(&mut buf);
    }
}
