//! # es-codec — audio compression substrate
//!
//! The paper compresses CD-quality streams with Ogg Vorbis before
//! multicasting them (§2.2). This crate provides the codecs the
//! rebroadcaster's selective-compression policy chooses between:
//!
//! - [`codec::CodecId::Pcm`]: raw PCM (what the early system sent at
//!   ~1.3 Mbps per stream).
//! - [`codec::CodecId::ULaw`]: G.711 companding, 2:1, free.
//! - [`codec::CodecId::Adpcm`]: IMA ADPCM, 4:1, near-free.
//! - [`codec::CodecId::Ovl`]: the from-scratch MDCT transform codec
//!   standing in for Ogg Vorbis — quality index 0..=10, the best ratio,
//!   and (by design) the highest CPU cost, which is what Figure 4
//!   measures.
//!
//! Every encode reports *work units* so the `es-sim` CPU model can
//! price it on Geode-class hardware.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod adpcm;
pub mod bitstream;
pub mod codec;
pub mod dsp;
pub mod fft;
pub mod mdct;
pub mod ovl;
pub mod reference;

pub use codec::{CodecError, CodecId, Codecs, Encoded};
pub use es_sim::CostModel;
pub use ovl::{OvlCodec, MAX_QUALITY};
