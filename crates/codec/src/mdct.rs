//! Modified Discrete Cosine Transform with a sine window.
//!
//! The OVL codec (the workspace's Ogg Vorbis stand-in) is a classic
//! windowed-MDCT transform coder. The sine window satisfies the
//! Princen–Bradley condition, so 50%-overlapped analysis/synthesis
//! windows reconstruct the signal exactly (time-domain alias
//! cancellation) before quantization is applied.
//!
//! The implementation is a direct O(N²) transform with a precomputed
//! cosine table — simple, allocation-free per call, and fast enough for
//! the block sizes the codec uses (N = 512).

/// An MDCT/IMDCT engine for a fixed half-length `n` (window length
/// `2n`, producing `n` coefficients per window).
pub struct Mdct {
    n: usize,
    window: Vec<f32>,
    // cos_table[k * 2n + t] = cos(pi/n * (t + 0.5 + n/2) * (k + 0.5))
    cos_table: Vec<f32>,
}

impl Mdct {
    /// Creates an engine. `n` must be a positive even number.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(2),
            "MDCT half-length must be positive and even"
        );
        let two_n = 2 * n;
        let mut window = Vec::with_capacity(two_n);
        for t in 0..two_n {
            let w = (core::f32::consts::PI / two_n as f32 * (t as f32 + 0.5)).sin();
            window.push(w);
        }
        let mut cos_table = Vec::with_capacity(n * two_n);
        let base = core::f32::consts::PI / n as f32;
        for k in 0..n {
            for t in 0..two_n {
                cos_table.push((base * (t as f32 + 0.5 + n as f32 / 2.0) * (k as f32 + 0.5)).cos());
            }
        }
        Mdct {
            n,
            window,
            cos_table,
        }
    }

    /// The half-length (coefficients per window).
    pub fn half_len(&self) -> usize {
        self.n
    }

    /// The window length (`2 * half_len`).
    pub fn window_len(&self) -> usize {
        2 * self.n
    }

    /// Forward MDCT of one window of `2n` time samples into `n`
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward(&self, time: &[f32], coeffs: &mut [f32]) {
        assert_eq!(time.len(), 2 * self.n, "input must be one full window");
        assert_eq!(coeffs.len(), self.n, "output must hold n coefficients");
        let two_n = 2 * self.n;
        for (k, c) in coeffs.iter_mut().enumerate() {
            let row = &self.cos_table[k * two_n..(k + 1) * two_n];
            let mut acc = 0.0f32;
            for t in 0..two_n {
                acc += time[t] * self.window[t] * row[t];
            }
            *c = acc;
        }
    }

    /// Inverse MDCT of `n` coefficients into one window of `2n`
    /// windowed time samples, ready for 50% overlap-add.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn inverse(&self, coeffs: &[f32], time: &mut [f32]) {
        assert_eq!(coeffs.len(), self.n, "input must hold n coefficients");
        assert_eq!(time.len(), 2 * self.n, "output must be one full window");
        let two_n = 2 * self.n;
        let scale = 2.0 / self.n as f32;
        for (t, out) in time.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (k, &c) in coeffs.iter().enumerate() {
                acc += c * self.cos_table[k * two_n + t];
            }
            *out = acc * self.window[t] * scale;
        }
    }

    /// Multiply-accumulate operations per forward (or inverse)
    /// transform — the codec's unit of CPU work for the Figure 4 cost
    /// model.
    pub fn ops_per_transform(&self) -> u64 {
        (self.n * 2 * self.n) as u64
    }
}

/// Transforms a padded signal into MDCT coefficient blocks with 50%
/// overlap. The signal is logically extended with `n` zeros on both
/// sides, so a `len`-sample input (already padded to a multiple of `n`)
/// yields `len / n + 1` windows — enough to reconstruct every input
/// sample on decode.
pub fn analyze(mdct: &Mdct, padded: &[f32]) -> Vec<Vec<f32>> {
    let n = mdct.half_len();
    assert!(
        padded.len().is_multiple_of(n),
        "input must be a multiple of n"
    );
    let blocks = padded.len() / n;
    let mut windows = Vec::with_capacity(blocks + 1);
    let mut buf = vec![0.0f32; 2 * n];
    for w in 0..=blocks {
        // Window w covers padded[(w-1)*n .. (w+1)*n] with zero fill
        // outside the signal.
        #[allow(clippy::needless_range_loop)]
        for t in 0..2 * n {
            let idx = (w as isize - 1) * n as isize + t as isize;
            buf[t] = if idx < 0 || idx as usize >= padded.len() {
                0.0
            } else {
                padded[idx as usize]
            };
        }
        let mut coeffs = vec![0.0f32; n];
        mdct.forward(&buf, &mut coeffs);
        windows.push(coeffs);
    }
    windows
}

/// Reconstructs the signal from [`analyze`]-shaped coefficient blocks
/// via overlap-add. Returns `(windows - 1) * n` samples.
pub fn synthesize(mdct: &Mdct, windows: &[Vec<f32>]) -> Vec<f32> {
    let n = mdct.half_len();
    if windows.is_empty() {
        return Vec::new();
    }
    let out_len = (windows.len() - 1) * n;
    let mut out = vec![0.0f32; out_len];
    let mut time = vec![0.0f32; 2 * n];
    for (w, coeffs) in windows.iter().enumerate() {
        mdct.inverse(coeffs, &mut time);
        let start = (w as isize - 1) * n as isize;
        #[allow(clippy::needless_range_loop)]
        for t in 0..2 * n {
            let idx = start + t as isize;
            if idx >= 0 && (idx as usize) < out_len {
                out[idx as usize] += time[t];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
    }

    #[test]
    fn perfect_reconstruction_without_quantization() {
        let mdct = Mdct::new(64);
        let signal = random_signal(640, 1);
        let windows = analyze(&mdct, &signal);
        assert_eq!(windows.len(), 11);
        let rec = synthesize(&mdct, &windows);
        assert_eq!(rec.len(), signal.len());
        for (i, (&a, &b)) in signal.iter().zip(&rec).enumerate() {
            assert!((a - b).abs() < 1e-4, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn reconstruction_holds_for_codec_block_size() {
        let mdct = Mdct::new(512);
        let signal = random_signal(2_048, 2);
        let rec = synthesize(&mdct, &analyze(&mdct, &signal));
        let err: f32 = signal
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 1e-3, "max err {err}");
    }

    #[test]
    fn sine_concentrates_energy_in_few_coefficients() {
        let n = 256;
        let mdct = Mdct::new(n);
        // A bin-centered-ish sine: most energy should land in a couple
        // of coefficients (that is why transform coding compresses).
        let freq_bin = 10.5f32;
        let signal: Vec<f32> = (0..2 * n)
            .map(|t| (core::f32::consts::PI / n as f32 * freq_bin * (t as f32 + 0.5)).sin())
            .collect();
        let mut coeffs = vec![0.0f32; n];
        mdct.forward(&signal, &mut coeffs);
        let total: f32 = coeffs.iter().map(|c| c * c).sum();
        let mut sorted: Vec<f32> = coeffs.iter().map(|c| c * c).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top4: f32 = sorted.iter().take(4).sum();
        assert!(
            top4 / total > 0.95,
            "energy not concentrated: {}",
            top4 / total
        );
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mdct = Mdct::new(32);
        let rec = synthesize(&mdct, &analyze(&mdct, &vec![0.0; 128]));
        assert!(rec.iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn ops_accounting_matches_table_size() {
        let mdct = Mdct::new(512);
        assert_eq!(mdct.ops_per_transform(), 512 * 1024);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_n_panics() {
        let _ = Mdct::new(63);
    }

    #[test]
    #[should_panic(expected = "full window")]
    fn wrong_window_length_panics() {
        let mdct = Mdct::new(32);
        let mut coeffs = vec![0.0; 32];
        mdct.forward(&[0.0; 10], &mut coeffs);
    }
}
