//! Modified Discrete Cosine Transform with a sine window.
//!
//! The OVL codec (the workspace's Ogg Vorbis stand-in) is a classic
//! windowed-MDCT transform coder. The sine window satisfies the
//! Princen–Bradley condition, so 50%-overlapped analysis/synthesis
//! windows reconstruct the signal exactly (time-domain alias
//! cancellation) before quantization is applied.
//!
//! # Fast path
//!
//! Both transform directions reduce to one complex FFT of the full
//! window length `2n` with two shared twiddle tables. Writing the MDCT
//! phase as `φ(t,k) = (π/n)(t + ½ + n/2)(k + ½)` and splitting it,
//!
//! - forward: `X[k] = Re(post[k] · V[k])` where `v[t] = x[t]·w[t]·pre[t]`
//!   and `V = FFT_2n(v)`,
//! - inverse: `time[t] = (2/n)·w[t]·Re(pre[t]·D[t])` where
//!   `d[k] = c[k]·post[k]` zero-padded to `2n` and `D = FFT_2n(d)`,
//!
//! with `pre[t] = e^{-iπt/(2n)}` and
//! `post[k] = e^{-i(π/n)(½ + n/2)(k + ½)}`. That is O(N log N) against
//! the O(N²) direct evaluation retained in [`crate::reference`], which
//! doubles as the execution fallback when `2n` is not a power of two
//! and as the ground truth for the property tests.
//!
//! Work is billed through a [`CostModel`]: the default bills what the
//! fast path actually performs, while [`CostModel::Direct`] preserves
//! the paper-fidelity Figure 4 calibration.

use std::cell::RefCell;

use es_sim::CostModel;

use crate::fft::{Complex32, Fft};
use crate::reference::DirectMdct;

enum Engine {
    Fft {
        fft: Fft,
        window: Vec<f32>,
        /// `pre[t] = e^{-iπ t / (2n)}`, length `2n`.
        pre: Vec<Complex32>,
        /// `post[k] = e^{-i (π/n)(½ + n/2)(k + ½)}`, length `n`.
        post: Vec<Complex32>,
    },
    Direct(DirectMdct),
}

/// An MDCT/IMDCT engine for a fixed half-length `n` (window length
/// `2n`, producing `n` coefficients per window).
pub struct Mdct {
    n: usize,
    cost_model: CostModel,
    engine: Engine,
    /// FFT workspace, length `2n`. Interior mutability keeps `forward`/
    /// `inverse` at `&self` (the codec engine is shared behind `Rc`)
    /// while still being allocation-free per call.
    freq: RefCell<Vec<Complex32>>,
    /// Window-assembly workspace for the flat analyze/synthesize
    /// pipeline, length `2n`.
    asm: RefCell<Vec<f32>>,
}

impl Mdct {
    /// Creates an engine with the default (fast-path) cost model.
    /// `n` must be a positive even number.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    pub fn new(n: usize) -> Self {
        Mdct::with_cost_model(n, CostModel::default())
    }

    /// Creates an engine billing work under `cost_model`. The cost
    /// model only changes the accounting; execution always takes the
    /// fastest correct path.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    pub fn with_cost_model(n: usize, cost_model: CostModel) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(2),
            "MDCT half-length must be positive and even"
        );
        let two_n = 2 * n;
        let engine = if two_n.is_power_of_two() {
            let mut window = Vec::with_capacity(two_n);
            for t in 0..two_n {
                window.push((core::f32::consts::PI / two_n as f32 * (t as f32 + 0.5)).sin());
            }
            let pre: Vec<Complex32> = (0..two_n)
                .map(|t| {
                    let theta = -core::f64::consts::PI * t as f64 / two_n as f64;
                    Complex32::new(theta.cos() as f32, theta.sin() as f32)
                })
                // es-allow(hot-path-transitive): one-time twiddle-table build at codec construction, not per-frame decode
                .collect();
            let post: Vec<Complex32> = (0..n)
                .map(|k| {
                    let theta = -core::f64::consts::PI / n as f64
                        * (0.5 + n as f64 / 2.0)
                        * (k as f64 + 0.5);
                    Complex32::new(theta.cos() as f32, theta.sin() as f32)
                })
                // es-allow(hot-path-transitive): one-time twiddle-table build at codec construction, not per-frame decode
                .collect();
            Engine::Fft {
                fft: Fft::new(two_n),
                window,
                pre,
                post,
            }
        } else {
            Engine::Direct(DirectMdct::new(n))
        };
        Mdct {
            n,
            cost_model,
            engine,
            // es-allow(hot-path-transitive): scratch arenas sized once at construction and reused every frame
            freq: RefCell::new(vec![Complex32::ZERO; two_n]),
            // es-allow(hot-path-transitive): scratch arenas sized once at construction and reused every frame
            asm: RefCell::new(vec![0.0; two_n]),
        }
    }

    /// The half-length (coefficients per window).
    pub fn half_len(&self) -> usize {
        self.n
    }

    /// The window length (`2 * half_len`).
    pub fn window_len(&self) -> usize {
        2 * self.n
    }

    /// The cost model work is billed under.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// The sine analysis/synthesis window, length `2n`.
    pub fn window(&self) -> &[f32] {
        match &self.engine {
            Engine::Fft { window, .. } => window,
            Engine::Direct(d) => d.window(),
        }
    }

    /// True when the O(N log N) FFT path is active (always, except for
    /// half-lengths whose window is not a power of two).
    pub fn uses_fft(&self) -> bool {
        matches!(self.engine, Engine::Fft { .. })
    }

    /// Forward MDCT of one window of `2n` time samples into `n`
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward(&self, time: &[f32], coeffs: &mut [f32]) {
        assert_eq!(time.len(), 2 * self.n, "input must be one full window");
        assert_eq!(coeffs.len(), self.n, "output must hold n coefficients");
        match &self.engine {
            Engine::Direct(d) => d.forward(time, coeffs),
            Engine::Fft {
                fft,
                window,
                pre,
                post,
            } => {
                let mut freq = self.freq.borrow_mut();
                for (slot, ((&t, &w), &p)) in freq.iter_mut().zip(time.iter().zip(window).zip(pre))
                {
                    *slot = p.scale(t * w);
                }
                fft.forward(&mut freq);
                for ((c, f), p) in coeffs.iter_mut().zip(freq.iter()).zip(post) {
                    // Re(V[k] · post[k])
                    *c = f.re * p.re - f.im * p.im;
                }
            }
        }
    }

    /// Inverse MDCT of `n` coefficients into one window of `2n`
    /// windowed time samples, ready for 50% overlap-add.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn inverse(&self, coeffs: &[f32], time: &mut [f32]) {
        assert_eq!(coeffs.len(), self.n, "input must hold n coefficients");
        assert_eq!(time.len(), 2 * self.n, "output must be one full window");
        match &self.engine {
            Engine::Direct(d) => d.inverse(coeffs, time),
            Engine::Fft {
                fft,
                window,
                pre,
                post,
            } => {
                let mut freq = self.freq.borrow_mut();
                let (head, tail) = freq.split_at_mut(self.n);
                for ((slot, &c), p) in head.iter_mut().zip(coeffs).zip(post) {
                    *slot = p.scale(c);
                }
                tail.fill(Complex32::ZERO);
                fft.forward(&mut freq);
                let scale = 2.0 / self.n as f32;
                for ((out, f), (p, &w)) in
                    time.iter_mut().zip(freq.iter()).zip(pre.iter().zip(window))
                {
                    // Re(pre[t] · D[t])
                    *out = scale * w * (p.re * f.re - p.im * f.im);
                }
            }
        }
    }

    /// Multiply-accumulate operations billed per forward (or inverse)
    /// transform — the codec's unit of CPU work for the Figure 4 cost
    /// model. Under [`CostModel::Direct`] this is the `n·2n` table walk
    /// of the direct transform regardless of execution path; under
    /// [`CostModel::Fft`] it is the butterfly-plus-twiddle count of the
    /// fast path (falling back to the direct figure when the direct
    /// engine actually runs).
    pub fn ops_per_transform(&self) -> u64 {
        let direct = (self.n * 2 * self.n) as u64;
        match (self.cost_model, &self.engine) {
            (CostModel::Direct, _) | (CostModel::Fft, Engine::Direct(_)) => direct,
            (CostModel::Fft, Engine::Fft { .. }) => {
                let n = self.n as u64;
                let log2_len = (2 * self.n).trailing_zeros() as u64;
                // n butterflies per pass × log2(2n) passes × ~6 MACs,
                // plus the pre (2n) and post (n) twiddle applications
                // at ~4 MACs each.
                6 * n * log2_len + 12 * n
            }
        }
    }

    /// Windows produced when analyzing `padded_len` samples
    /// (`padded_len / n + 1`; the signal is logically extended with `n`
    /// zeros on both sides).
    pub fn analyze_windows(&self, padded_len: usize) -> usize {
        padded_len / self.n + 1
    }

    /// Transforms a padded signal into flat MDCT coefficients with 50%
    /// overlap: window `w` lands in `out[w*n..(w+1)*n]`. `padded` must
    /// be a multiple of `n` samples and `out` must hold exactly
    /// [`Mdct::analyze_windows`]`(padded.len()) * n` values. No
    /// allocation is performed.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn analyze_into(&self, padded: &[f32], out: &mut [f32]) {
        let n = self.n;
        assert!(
            padded.len().is_multiple_of(n),
            "input must be a multiple of n"
        );
        let windows = self.analyze_windows(padded.len());
        assert_eq!(out.len(), windows * n, "output must hold windows * n");
        let mut asm = self.asm.borrow_mut();
        for w in 0..windows {
            // Window w covers padded[(w-1)*n .. (w+1)*n] with zero fill
            // outside the signal; each half is either a straight copy
            // or all zeros, so assembly is two memcpy-shaped moves
            // instead of a per-sample branch.
            {
                let (head, tail) = asm.split_at_mut(n);
                if w == 0 {
                    head.fill(0.0);
                } else {
                    head.copy_from_slice(&padded[(w - 1) * n..w * n]);
                }
                if w * n >= padded.len() {
                    tail.fill(0.0);
                } else {
                    tail.copy_from_slice(&padded[w * n..(w + 1) * n]);
                }
            }
            self.forward(&asm, &mut out[w * n..(w + 1) * n]);
        }
    }

    /// Reconstructs the signal from [`Mdct::analyze_into`]-shaped flat
    /// coefficients via overlap-add. `coeffs` holds `windows`
    /// consecutive blocks of `n` values; `out` is resized to
    /// `(windows - 1) * n` samples. The only allocation is `out`'s own
    /// growth.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` is not a multiple of `n`.
    pub fn synthesize_into(&self, coeffs: &[f32], out: &mut Vec<f32>) {
        let n = self.n;
        assert!(
            coeffs.len().is_multiple_of(n),
            "coefficients must be whole windows"
        );
        let windows = coeffs.len() / n;
        out.clear();
        if windows == 0 {
            return;
        }
        let out_len = (windows - 1) * n;
        out.resize(out_len, 0.0);
        let mut asm = self.asm.borrow_mut();
        for w in 0..windows {
            // es-allow(panic-path): windows = coeffs.len()/n and out is resized to (windows-1)*n, so every slice range is in bounds
            self.inverse(&coeffs[w * n..(w + 1) * n], &mut asm);
            // Window w overlaps out[(w-1)*n..(w+1)*n]; the first
            // window's left half and the last window's right half fall
            // outside the signal and are discarded, so each remaining
            // half is one chunked elementwise add.
            let (head, tail) = asm.split_at(n);
            if w > 0 {
                crate::dsp::accumulate(&mut out[(w - 1) * n..w * n], head);
            }
            if w + 1 < windows {
                crate::dsp::accumulate(&mut out[w * n..(w + 1) * n], tail);
            }
        }
    }
}

/// Convenience wrapper over [`Mdct::analyze_into`] that allocates the
/// flat coefficient buffer. Hot paths should reuse a scratch buffer
/// instead.
pub fn analyze(mdct: &Mdct, padded: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; mdct.analyze_windows(padded.len()) * mdct.half_len()];
    mdct.analyze_into(padded, &mut out);
    out
}

/// Convenience wrapper over [`Mdct::synthesize_into`] that allocates
/// the output buffer. Hot paths should reuse a scratch buffer instead.
pub fn synthesize(mdct: &Mdct, coeffs: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    mdct.synthesize_into(coeffs, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
    }

    #[test]
    fn perfect_reconstruction_without_quantization() {
        let mdct = Mdct::new(64);
        let signal = random_signal(640, 1);
        let coeffs = analyze(&mdct, &signal);
        assert_eq!(coeffs.len(), 11 * 64);
        let rec = synthesize(&mdct, &coeffs);
        assert_eq!(rec.len(), signal.len());
        for (i, (&a, &b)) in signal.iter().zip(&rec).enumerate() {
            assert!((a - b).abs() < 1e-4, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn reconstruction_holds_for_codec_block_size() {
        let mdct = Mdct::new(512);
        let signal = random_signal(2_048, 2);
        let rec = synthesize(&mdct, &analyze(&mdct, &signal));
        let err: f32 = signal
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 1e-3, "max err {err}");
    }

    #[test]
    fn fft_path_matches_direct_reference() {
        for n in [64usize, 256, 512] {
            let fast = Mdct::new(n);
            assert!(fast.uses_fft());
            let reference = crate::reference::DirectMdct::new(n);
            let signal = random_signal(2 * n, n as u64);
            let mut got = vec![0.0f32; n];
            let mut want = vec![0.0f32; n];
            fast.forward(&signal, &mut got);
            reference.forward(&signal, &mut want);
            // 1e-3 relative to the window's coefficient scale: the
            // O(N²) reference evaluates its cosine table at f32 angles
            // in the thousands of radians, so its own entries carry
            // ~3e-4 of phase noise at n=512.
            let scale = want.iter().fold(1.0f32, |m, &c| m.max(c.abs()));
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-3 * scale, "n {n} coeff {k}: {g} vs {w}");
            }
            let mut t_got = vec![0.0f32; 2 * n];
            let mut t_want = vec![0.0f32; 2 * n];
            fast.inverse(&want, &mut t_got);
            reference.inverse(&want, &mut t_want);
            let scale = t_want.iter().fold(1.0f32, |m, &c| m.max(c.abs()));
            for (t, (g, w)) in t_got.iter().zip(&t_want).enumerate() {
                assert!((g - w).abs() < 1e-3 * scale, "n {n} sample {t}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn sine_concentrates_energy_in_few_coefficients() {
        let n = 256;
        let mdct = Mdct::new(n);
        // A bin-centered-ish sine: most energy should land in a couple
        // of coefficients (that is why transform coding compresses).
        let freq_bin = 10.5f32;
        let signal: Vec<f32> = (0..2 * n)
            .map(|t| (core::f32::consts::PI / n as f32 * freq_bin * (t as f32 + 0.5)).sin())
            .collect();
        let mut coeffs = vec![0.0f32; n];
        mdct.forward(&signal, &mut coeffs);
        let total: f32 = coeffs.iter().map(|c| c * c).sum();
        let mut sorted: Vec<f32> = coeffs.iter().map(|c| c * c).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top4: f32 = sorted.iter().take(4).sum();
        assert!(
            top4 / total > 0.95,
            "energy not concentrated: {}",
            top4 / total
        );
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mdct = Mdct::new(32);
        let rec = synthesize(&mdct, &analyze(&mdct, &vec![0.0; 128]));
        assert!(rec.iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn non_power_of_two_falls_back_to_direct() {
        // 2n = 60 is not a power of two; the engine must still be
        // correct (via the direct fallback) and bill direct cost.
        let mdct = Mdct::new(30);
        assert!(!mdct.uses_fft());
        assert_eq!(mdct.ops_per_transform(), 30 * 60);
        let signal = random_signal(300, 3);
        let rec = synthesize(&mdct, &analyze(&mdct, &signal));
        for (i, (&a, &b)) in signal.iter().zip(&rec).enumerate() {
            assert!((a - b).abs() < 1e-4, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn ops_accounting_follows_cost_model() {
        // Paper-fidelity billing: the full n·2n table walk.
        let direct = Mdct::with_cost_model(512, CostModel::Direct);
        assert_eq!(direct.ops_per_transform(), 512 * 1024);
        // Fast-path billing: 6·n·log2(2n) + 12·n.
        let fft = Mdct::new(512);
        assert_eq!(fft.cost_model(), CostModel::Fft);
        assert_eq!(fft.ops_per_transform(), 6 * 512 * 10 + 12 * 512);
        // The switch is accounting-only: both run the same engine.
        assert!(direct.uses_fft() && fft.uses_fft());
        assert!(direct.ops_per_transform() > 5 * fft.ops_per_transform());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_n_panics() {
        let _ = Mdct::new(63);
    }

    #[test]
    #[should_panic(expected = "full window")]
    fn wrong_window_length_panics() {
        let mdct = Mdct::new(32);
        let mut coeffs = vec![0.0; 32];
        mdct.forward(&[0.0; 10], &mut coeffs);
    }

    #[test]
    #[should_panic(expected = "windows * n")]
    fn analyze_into_checks_output_length() {
        let mdct = Mdct::new(32);
        let mut out = vec![0.0; 32];
        mdct.analyze_into(&[0.0; 64], &mut out);
    }
}
