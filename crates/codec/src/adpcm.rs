//! IMA ADPCM (DVI4) — the cheap 4:1 compressor.
//!
//! §2.2 argues for *selective* compression: Ogg Vorbis buys the best
//! ratio but costs real CPU and latency, so low-bitrate channels go
//! uncompressed. ADPCM sits between the two: fixed 4 bits per sample,
//! negligible CPU, decent quality — a useful middle policy point for
//! the bandwidth/CPU trade-off experiments. The implementation is the
//! standard IMA step-size algorithm; packets are self-contained (each
//! carries its initial predictor state per channel).

/// IMA ADPCM step size table.
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adjustment per 4-bit code.
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// ADPCM decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdpcmError {
    /// Payload shorter than its header.
    ShortPayload,
    /// Header fields out of range.
    BadHeader(&'static str),
}

impl core::fmt::Display for AdpcmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdpcmError::ShortPayload => f.write_str("adpcm payload truncated"),
            AdpcmError::BadHeader(w) => write!(f, "adpcm header invalid: {w}"),
        }
    }
}

impl std::error::Error for AdpcmError {}

#[derive(Debug, Clone, Copy)]
struct ChannelState {
    predictor: i32,
    index: i32,
}

impl ChannelState {
    fn encode_sample(&mut self, sample: i16) -> u8 {
        let step = STEP_TABLE[self.index as usize];
        let mut diff = sample as i32 - self.predictor;
        let mut code: u8 = 0;
        if diff < 0 {
            code = 8;
            diff = -diff;
        }
        // Quantize diff/step to 3 magnitude bits.
        let mut temp = step;
        if diff >= temp {
            code |= 4;
            diff -= temp;
        }
        temp >>= 1;
        if diff >= temp {
            code |= 2;
            diff -= temp;
        }
        temp >>= 1;
        if diff >= temp {
            code |= 1;
        }
        self.step(code);
        code
    }

    /// Applies a 4-bit code to the predictor (shared by both encode and
    /// decode so their states stay bit-identical).
    fn step(&mut self, code: u8) {
        // es-allow(panic-path): index is clamped to 0..=88 below and STEP_TABLE holds 89 entries
        let step = STEP_TABLE[self.index as usize];
        let mut diff = step >> 3;
        if code & 4 != 0 {
            diff += step;
        }
        if code & 2 != 0 {
            diff += step >> 1;
        }
        if code & 1 != 0 {
            diff += step >> 2;
        }
        if code & 8 != 0 {
            self.predictor -= diff;
        } else {
            self.predictor += diff;
        }
        self.predictor = self.predictor.clamp(i16::MIN as i32, i16::MAX as i32);
        self.index = (self.index + INDEX_TABLE[code as usize]).clamp(0, 88);
    }
}

/// Encodes interleaved samples to a self-contained ADPCM packet.
///
/// Layout: `channels:u8`, `samples_per_channel:u32le`, then per channel
/// `predictor:i16le`, `index:u8`, then the nibble stream (per frame,
/// channel-interleaved, two codes per byte, zero-padded).
///
/// # Panics
///
/// Panics if `channels` is 0 or the sample count is not a multiple of
/// the channel count.
pub fn adpcm_encode(samples: &[i16], channels: u8) -> Vec<u8> {
    assert!(channels >= 1, "need at least one channel");
    assert!(
        samples.len().is_multiple_of(channels as usize),
        "sample count must be a multiple of the channel count"
    );
    let ch = channels as usize;
    let per_ch = samples.len() / ch;
    let mut out = Vec::with_capacity(5 + 3 * ch + samples.len() / 2 + 1);
    out.push(channels);
    out.extend_from_slice(&(per_ch as u32).to_le_bytes());

    let mut states: Vec<ChannelState> = (0..ch)
        .map(|c| {
            // Seed the predictor with the first sample and the step
            // index near the channel's early slope so the coder does
            // not spend its first hundred samples attacking.
            let predictor = if per_ch > 0 { samples[c] as i32 } else { 0 };
            let probe = per_ch.min(64);
            let mut mean_diff = 0i64;
            for f in 1..probe {
                mean_diff += (samples[f * ch + c] as i64 - samples[(f - 1) * ch + c] as i64).abs();
            }
            let mean_diff = if probe > 1 {
                (mean_diff / (probe as i64 - 1)) as i32
            } else {
                0
            };
            let index = STEP_TABLE
                .iter()
                .position(|&s| s >= mean_diff)
                .unwrap_or(STEP_TABLE.len() - 1) as i32;
            ChannelState { predictor, index }
        })
        .collect();
    for st in &states {
        out.extend_from_slice(&(st.predictor as i16).to_le_bytes());
        out.push(st.index as u8);
    }

    let mut nibble: Option<u8> = None;
    for f in 0..per_ch {
        for c in 0..ch {
            let code = states[c].encode_sample(samples[f * ch + c]);
            match nibble.take() {
                None => nibble = Some(code),
                Some(hi) => out.push((hi << 4) | code),
            }
        }
    }
    if let Some(hi) = nibble {
        out.push(hi << 4);
    }
    out
}

/// Decodes a packet produced by [`adpcm_encode`]. Returns interleaved
/// samples and the channel count.
pub fn adpcm_decode(bytes: &[u8]) -> Result<(Vec<i16>, u8), AdpcmError> {
    let mut out = Vec::new();
    let channels = adpcm_decode_into(bytes, &mut out)?;
    Ok((out, channels))
}

// es-hot-path
/// [`adpcm_decode`] into a caller-provided buffer (cleared and
/// resized), returning the channel count. Reusing `out` across packets
/// makes steady-state decode allocation-free; channel predictor state
/// lives in a fixed stack array (the header caps channels at 8).
pub fn adpcm_decode_into(bytes: &[u8], out: &mut Vec<i16>) -> Result<u8, AdpcmError> {
    if bytes.len() < 5 {
        return Err(AdpcmError::ShortPayload);
    }
    // es-allow(panic-path): every index is guarded — header reads by the len() < 5 bail-out, per-channel state by state_end, code bytes by the need_bytes check
    let channels = bytes[0];
    if !(1..=8).contains(&channels) {
        return Err(AdpcmError::BadHeader("channel count"));
    }
    let per_ch = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
    if per_ch > 1 << 24 {
        return Err(AdpcmError::BadHeader("sample count"));
    }
    let ch = channels as usize;
    let state_end = 5 + 3 * ch;
    if bytes.len() < state_end {
        return Err(AdpcmError::ShortPayload);
    }
    let mut states = [ChannelState {
        predictor: 0,
        index: 0,
    }; 8];
    for (c, state) in states.iter_mut().enumerate().take(ch) {
        let off = 5 + 3 * c;
        let predictor = i16::from_le_bytes([bytes[off], bytes[off + 1]]) as i32;
        let index = bytes[off + 2] as i32;
        if index > 88 {
            return Err(AdpcmError::BadHeader("step index"));
        }
        *state = ChannelState { predictor, index };
    }

    let total_codes = per_ch * ch;
    let need_bytes = total_codes.div_ceil(2);
    if bytes.len() < state_end + need_bytes {
        return Err(AdpcmError::ShortPayload);
    }
    let data = &bytes[state_end..];
    out.clear();
    out.resize(total_codes, 0);
    for (i, slot) in out.iter_mut().enumerate() {
        let byte = data[i / 2];
        let code = if i % 2 == 0 { byte >> 4 } else { byte & 0x0F };
        let c = i % ch;
        states[c].step(code);
        *slot = states[c].predictor as i16;
    }
    Ok(channels)
}

// es-hot-path-end

#[cfg(test)]
mod tests {
    use super::*;
    use es_audio::analysis::snr_db;
    use es_audio::gen::{render_stereo, MultiTone, Sine};

    fn stereo(frames: usize) -> Vec<i16> {
        let mut l = MultiTone::music(44_100);
        let mut r = Sine::new(660.0, 44_100, 0.5);
        render_stereo(&mut l, &mut r, frames)
    }

    #[test]
    fn compresses_4_to_1() {
        let s = stereo(4_096);
        let enc = adpcm_encode(&s, 2);
        let raw = s.len() * 2;
        // 4 bits/sample plus a small header.
        assert!(enc.len() < raw / 3, "{} vs {raw}", enc.len());
    }

    #[test]
    fn roundtrip_snr_is_reasonable() {
        let s = stereo(8_192);
        let (dec, ch) = adpcm_decode(&adpcm_encode(&s, 2)).unwrap();
        assert_eq!(ch, 2);
        assert_eq!(dec.len(), s.len());
        let snr = snr_db(&s, &dec).unwrap();
        assert!(snr > 20.0, "snr {snr}");
    }

    #[test]
    fn mono_and_odd_lengths() {
        let mut m = MultiTone::music(22_050);
        let s: Vec<i16> = (0..1_001)
            .map(|_| es_audio::gen::f32_to_i16(es_audio::gen::Signal::next_sample(&mut m)))
            .collect();
        let (dec, ch) = adpcm_decode(&adpcm_encode(&s, 1)).unwrap();
        assert_eq!(ch, 1);
        assert_eq!(dec.len(), 1_001);
        assert!(snr_db(&s, &dec).unwrap() > 15.0);
    }

    #[test]
    fn empty_input() {
        let enc = adpcm_encode(&[], 2);
        let (dec, _) = adpcm_decode(&enc).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn step_changes_track_signal_slope() {
        // A steep ramp should drive the index up.
        let ramp: Vec<i16> = (0..200).map(|i| (i * 300 - 30_000) as i16).collect();
        let enc = adpcm_encode(&ramp, 1);
        let (dec, _) = adpcm_decode(&enc).unwrap();
        // The decoded ramp must track within a coarse bound.
        for (a, b) in ramp.iter().zip(&dec).skip(20) {
            assert!((*a as i32 - *b as i32).abs() < 3_000, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_corrupt_headers() {
        assert_eq!(adpcm_decode(&[]), Err(AdpcmError::ShortPayload));
        assert_eq!(
            adpcm_decode(&[0, 1, 0, 0, 0]),
            Err(AdpcmError::BadHeader("channel count"))
        );
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            adpcm_decode(&bytes),
            Err(AdpcmError::BadHeader("sample count"))
        );
        // Bad step index.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 99]);
        bytes.extend_from_slice(&[0, 0]);
        assert_eq!(
            adpcm_decode(&bytes),
            Err(AdpcmError::BadHeader("step index"))
        );
    }

    #[test]
    fn rejects_truncated_nibble_stream() {
        let s = stereo(512);
        let enc = adpcm_encode(&s, 2);
        let cut = &enc[..enc.len() - 10];
        assert_eq!(adpcm_decode(cut), Err(AdpcmError::ShortPayload));
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip_shape(samples in proptest::collection::vec(-20_000i16..20_000, 2..500)) {
            // Any input decodes to the same length without panicking.
            let samples = if samples.len() % 2 == 1 { samples[..samples.len()-1].to_vec() } else { samples };
            let (dec, ch) = adpcm_decode(&adpcm_encode(&samples, 2)).unwrap();
            proptest::prop_assert_eq!(ch, 2);
            proptest::prop_assert_eq!(dec.len(), samples.len());
        }
    }
}
