//! The retained direct O(N²) MDCT, kept as a correctness reference.
//!
//! This is the transform the workspace originally shipped in
//! [`crate::mdct`]: a literal evaluation of the MDCT definition against
//! a precomputed cosine table. It is quadratic in the window length, so
//! the hot path now uses the FFT-based engine instead — but the direct
//! form is trivially auditable against the textbook formula, which
//! makes it the ground truth the property tests compare the fast path
//! to. It also remains the execution fallback for window lengths that
//! are not powers of two.

/// A direct MDCT/IMDCT engine for a fixed half-length `n` (window
/// length `2n`, producing `n` coefficients per window).
pub struct DirectMdct {
    n: usize,
    window: Vec<f32>,
    // cos_table[k * 2n + t] = cos(pi/n * (t + 0.5 + n/2) * (k + 0.5))
    cos_table: Vec<f32>,
}

impl DirectMdct {
    /// Creates an engine. `n` must be a positive even number.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd.
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(2),
            "MDCT half-length must be positive and even"
        );
        let two_n = 2 * n;
        let mut window = Vec::with_capacity(two_n);
        for t in 0..two_n {
            let w = (core::f32::consts::PI / two_n as f32 * (t as f32 + 0.5)).sin();
            window.push(w);
        }
        let mut cos_table = Vec::with_capacity(n * two_n);
        let base = core::f32::consts::PI / n as f32;
        for k in 0..n {
            for t in 0..two_n {
                cos_table.push((base * (t as f32 + 0.5 + n as f32 / 2.0) * (k as f32 + 0.5)).cos());
            }
        }
        DirectMdct {
            n,
            window,
            cos_table,
        }
    }

    /// The half-length (coefficients per window).
    pub fn half_len(&self) -> usize {
        self.n
    }

    /// The sine analysis/synthesis window, length `2n`.
    pub fn window(&self) -> &[f32] {
        &self.window
    }

    /// Forward MDCT of one window of `2n` time samples into `n`
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward(&self, time: &[f32], coeffs: &mut [f32]) {
        assert_eq!(time.len(), 2 * self.n, "input must be one full window");
        assert_eq!(coeffs.len(), self.n, "output must hold n coefficients");
        let two_n = 2 * self.n;
        for (k, c) in coeffs.iter_mut().enumerate() {
            let row = &self.cos_table[k * two_n..(k + 1) * two_n];
            let mut acc = 0.0f32;
            for t in 0..two_n {
                acc += time[t] * self.window[t] * row[t];
            }
            *c = acc;
        }
    }

    /// Inverse MDCT of `n` coefficients into one window of `2n`
    /// windowed time samples, ready for 50% overlap-add.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn inverse(&self, coeffs: &[f32], time: &mut [f32]) {
        assert_eq!(coeffs.len(), self.n, "input must hold n coefficients");
        assert_eq!(time.len(), 2 * self.n, "output must be one full window");
        let two_n = 2 * self.n;
        let scale = 2.0 / self.n as f32;
        for (t, out) in time.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (k, &c) in coeffs.iter().enumerate() {
                // es-allow(panic-path): cos_table holds n*2n entries and k < n, t < 2n are asserted above
                acc += c * self.cos_table[k * two_n + t];
            }
            *out = acc * self.window[t] * scale;
        }
    }

    /// Multiply-accumulate operations per forward (or inverse)
    /// transform: one MAC per cosine-table entry.
    pub fn ops_per_transform(&self) -> u64 {
        (self.n * 2 * self.n) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_reconstruction_is_exact_without_quantization() {
        let n = 64;
        let mdct = DirectMdct::new(n);
        // Two overlapping windows reconstruct the shared middle half
        // exactly (time-domain alias cancellation).
        let signal: Vec<f32> = (0..3 * n)
            .map(|t| ((t * 37 % 101) as f32 - 50.0) / 50.0)
            .collect();
        let mut c0 = vec![0.0f32; n];
        let mut c1 = vec![0.0f32; n];
        mdct.forward(&signal[..2 * n], &mut c0);
        mdct.forward(&signal[n..3 * n], &mut c1);
        let mut t0 = vec![0.0f32; 2 * n];
        let mut t1 = vec![0.0f32; 2 * n];
        mdct.inverse(&c0, &mut t0);
        mdct.inverse(&c1, &mut t1);
        for t in 0..n {
            let rec = t0[n + t] + t1[t];
            assert!((rec - signal[n + t]).abs() < 1e-4, "sample {t}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_n_panics() {
        let _ = DirectMdct::new(63);
    }
}
