//! A minimal JSON encoder/decoder.
//!
//! The workspace builds offline (no serde); the telemetry export
//! formats are flat JSON-lines objects, so a small hand-rolled value
//! model covers them completely. Numbers are kept as `f64` with an
//! integer fast path, strings support the standard escapes, and the
//! parser accepts exactly the subset the encoder emits (plus
//! insignificant whitespace).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is normalized (sorted) on parse.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn items(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A malformed JSON input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` into a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a number the way the encoder emits it: integers without a
/// fractional part, everything else via `{}` (shortest roundtrip).
pub fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

/// Parses one JSON document (one line of a JSON-lines stream).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_flat_object() {
        let line = r#"{"key":"net/lan0/frames","type":"counter","value":42}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("key").unwrap().as_str(), Some("net/lan0/frames"));
        assert_eq!(v.get("value").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn escapes_roundtrip() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn nested_arrays_and_numbers() {
        let v = parse(r#"{"buckets":[[3,5],[10,2]],"g":-0.25}"#).unwrap();
        let b = v.get("buckets").unwrap().items().unwrap();
        assert_eq!(b[0].items().unwrap()[0].as_u64(), Some(3));
        assert_eq!(v.get("g").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2] x").is_err());
        assert!(parse("").is_err());
    }
}
