//! Shard-local telemetry buffers with a deterministic merge.
//!
//! The fleet executor (`es_sim::fleet`) runs per-speaker work on
//! worker lanes. Lanes must not contend on one shared [`Journal`] —
//! and, worse, interleaving their writes would make the journal's
//! sequence numbers depend on thread scheduling, breaking the
//! bit-identical-at-any-lane-count guarantee. Instead each lane
//! records into its own [`ShardBuffer`]; when the batch completes the
//! coordinator calls [`merge_shards`], which folds the buffers in
//! *shard-index* order (submission order, never completion order).
//! The merged output is therefore a pure function of the work
//! submitted, independent of `ES_FLEET_THREADS`.
//!
//! Merge semantics per metric kind follow the registry's own rules:
//! counters add, histograms pool their buckets, gauges are last-write
//! -wins where "last" means the highest shard index — a deterministic
//! stand-in for "most recent".

use crate::journal::{Event, Journal, Severity, Stamp};
use crate::metrics::{Registry, Scope};

/// One worker lane's private telemetry: a registry plus buffered
/// journal events. `Send` (no shared interior state), so it can ride
/// into a fleet job and back out with the result.
#[derive(Debug)]
pub struct ShardBuffer {
    shard: usize,
    registry: Registry,
    events: Vec<Event>,
}

impl ShardBuffer {
    /// An empty buffer for shard `shard` (its submission index, which
    /// fixes its position in the merge order).
    pub fn new(shard: usize) -> Self {
        ShardBuffer {
            shard,
            registry: Registry::new(),
            // es-allow(hot-path-transitive): one buffer per lane job; stays empty unless the lane records telemetry
            events: Vec::new(),
        }
    }

    /// The submission index this buffer merges at.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Sets the instance label for subsequently recorded metrics,
    /// mirroring [`Registry::set_instance`].
    pub fn set_instance(&mut self, instance: &str) {
        self.registry.set_instance(instance);
    }

    /// Opens a metric recording scope, mirroring
    /// [`Registry::component`].
    pub fn component(&mut self, component: &str) -> Scope<'_> {
        self.registry.component(component)
    }

    /// Buffers a journal event. The sequence number is assigned at
    /// merge time, not here — a shard cannot know how many events the
    /// shards before it recorded.
    pub fn emit(
        &mut self,
        stamp: Stamp,
        severity: Severity,
        component: &str,
        message: &str,
        fields: &[(&str, String)],
    ) {
        self.events.push(Event {
            seq: 0,
            stamp,
            severity,
            component: component.to_string(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                // es-allow(hot-path-transitive): shard journal events record faults (resync, drops), not steady-state frames
                .collect(),
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.registry.is_empty()
    }
}

/// Incrementally folds shard buffers into a shared registry and
/// journal as they complete, without waiting for the whole batch.
///
/// The deterministic contract is the same as [`merge_shards`]: the
/// merged output is a function of shard *indices*, never completion
/// order. The drain achieves it without a barrier — a buffer offered
/// in index order merges immediately (overlapping the lanes still
/// executing); one that arrives early is parked until the indices
/// before it have landed. [`finish`](Self::finish) flushes whatever is
/// still parked (index gaps are allowed) and returns the total merged.
pub struct ShardDrain<'a> {
    /// The next in-order shard index; buffers below it merged already.
    next: usize,
    /// Early arrivals, keyed by shard index, in arrival order within
    /// one index.
    parked: std::collections::BTreeMap<usize, Vec<ShardBuffer>>,
    registry: &'a mut Registry,
    journal: &'a Journal,
    merged: usize,
}

impl<'a> ShardDrain<'a> {
    /// A drain folding into `registry` and replaying events to
    /// `journal`.
    pub fn new(registry: &'a mut Registry, journal: &'a Journal) -> Self {
        ShardDrain {
            next: 0,
            parked: std::collections::BTreeMap::new(),
            registry,
            journal,
            merged: 0,
        }
    }

    /// Offers one completed shard. Merges now if every lower index has
    /// already merged (or this index is a duplicate of one that has);
    /// parks it otherwise.
    pub fn offer(&mut self, shard: ShardBuffer) {
        let idx = shard.shard;
        if idx > self.next {
            self.parked.entry(idx).or_default().push(shard);
            return;
        }
        self.merge_one(shard);
        self.next = self.next.max(idx + 1);
        // The new frontier may release parked successors.
        while let Some(bufs) = self.parked.remove(&self.next) {
            for b in bufs {
                self.merge_one(b);
            }
            self.next += 1;
        }
    }

    /// Number of shards merged so far.
    pub fn merged(&self) -> usize {
        self.merged
    }

    /// Flushes any still-parked buffers (submission indices with gaps
    /// never unblock on their own) in index order and returns the
    /// total number of shards merged.
    pub fn finish(mut self) -> usize {
        let parked = std::mem::take(&mut self.parked);
        for (_, bufs) in parked {
            for b in bufs {
                self.merge_one(b);
            }
        }
        self.merged
    }

    fn merge_one(&mut self, shard: ShardBuffer) {
        self.registry.merge_from(&shard.registry);
        for ev in shard.events {
            let fields: Vec<(&str, String)> = ev
                .fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                // es-allow(hot-path-transitive): merge replays buffered fault events post-batch, not steady-state frames
                .collect();
            self.journal
                .emit(ev.stamp, ev.severity, &ev.component, &ev.message, &fields);
        }
        self.merged += 1;
    }
}

/// Folds shard buffers into a shared registry and journal.
///
/// The caller may pass buffers in completion order (or any order): the
/// result is identical — this is [`ShardDrain`] fed all at once.
/// Within a shard, events keep their recording order; across shards,
/// lower indices come first. The journal assigns its own contiguous
/// sequence numbers as events are replayed.
pub fn merge_shards(shards: Vec<ShardBuffer>, registry: &mut Registry, journal: &Journal) {
    let mut drain = ShardDrain::new(registry, journal);
    for shard in shards {
        drain.offer(shard);
    }
    drain.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(shard: usize, played: u64) -> ShardBuffer {
        let mut b = ShardBuffer::new(shard);
        b.set_instance(&format!("es{shard}"));
        b.component("speaker")
            .counter("samples_played", played)
            .observe("decode_ns", 100 * (shard as u64 + 1));
        b.emit(
            Stamp::virtual_ns(1_000 * shard as u64),
            Severity::Debug,
            "speaker",
            "shard done",
            &[("shard", shard.to_string())],
        );
        b
    }

    #[test]
    fn counters_add_across_shards_on_one_instance() {
        let mut a = ShardBuffer::new(0);
        a.component("net").counter("packets", 3);
        let mut b = ShardBuffer::new(1);
        b.component("net").counter("packets", 4);
        let mut reg = Registry::new();
        merge_shards(vec![a, b], &mut reg, &Journal::new());
        assert_eq!(reg.snapshot().counter("net/0/packets"), Some(7));
    }

    #[test]
    fn merge_is_independent_of_completion_order() {
        let journal_fwd = Journal::new();
        let mut reg_fwd = Registry::new();
        merge_shards(
            (0..4).map(|i| buffer(i, 10 + i as u64)).collect(),
            &mut reg_fwd,
            &journal_fwd,
        );

        let journal_rev = Journal::new();
        let mut reg_rev = Registry::new();
        merge_shards(
            (0..4).rev().map(|i| buffer(i, 10 + i as u64)).collect(),
            &mut reg_rev,
            &journal_rev,
        );

        assert_eq!(
            reg_fwd.snapshot().to_json_lines(),
            reg_rev.snapshot().to_json_lines()
        );
        assert_eq!(journal_fwd.to_json_lines(), journal_rev.to_json_lines());
    }

    #[test]
    fn events_are_renumbered_in_shard_order() {
        let journal = Journal::new();
        let mut reg = Registry::new();
        merge_shards(
            vec![buffer(2, 1), buffer(0, 1), buffer(1, 1)],
            &mut reg,
            &journal,
        );
        let events = journal.events();
        assert_eq!(events.len(), 3);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(
                ev.fields.get("shard").map(String::as_str),
                Some(i.to_string()).as_deref()
            );
        }
    }

    #[test]
    fn gauge_last_write_is_highest_shard() {
        let mut a = ShardBuffer::new(0);
        a.component("dev").gauge("volume", 0.25);
        let mut b = ShardBuffer::new(1);
        b.component("dev").gauge("volume", 0.75);
        let mut reg = Registry::new();
        // Passed backwards: the sort must still let shard 1 win.
        merge_shards(vec![b, a], &mut reg, &Journal::new());
        assert_eq!(reg.snapshot().gauge("dev/0/volume"), Some(0.75));
    }

    #[test]
    fn histograms_pool_their_samples() {
        let mut a = ShardBuffer::new(0);
        a.component("speaker").observe("lat", 8);
        let mut b = ShardBuffer::new(1);
        b.component("speaker").observe("lat", 8_000);
        let mut reg = Registry::new();
        merge_shards(vec![a, b], &mut reg, &Journal::new());
        let snap = reg.snapshot();
        let h = snap.histogram("speaker/0/lat").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 8_008);
    }

    #[test]
    fn shard_buffer_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ShardBuffer>();
    }

    #[test]
    fn drain_matches_batch_merge_for_any_completion_order() {
        // Feed the drain in a scrambled completion order and compare
        // against the one-shot merge of the same buffers in index
        // order: registry and journal must be byte-identical.
        let order = [3usize, 0, 4, 1, 2];
        let drain_journal = Journal::new();
        let mut drain_reg = Registry::new();
        let drain = {
            let mut d = ShardDrain::new(&mut drain_reg, &drain_journal);
            for &i in &order {
                d.offer(buffer(i, 10 + i as u64));
            }
            d.finish()
        };
        assert_eq!(drain, 5);

        let batch_journal = Journal::new();
        let mut batch_reg = Registry::new();
        merge_shards(
            (0..5).map(|i| buffer(i, 10 + i as u64)).collect(),
            &mut batch_reg,
            &batch_journal,
        );
        assert_eq!(
            drain_reg.snapshot().to_json_lines(),
            batch_reg.snapshot().to_json_lines()
        );
        assert_eq!(drain_journal.to_json_lines(), batch_journal.to_json_lines());
    }

    #[test]
    fn drain_merges_in_order_arrivals_eagerly() {
        let journal = Journal::new();
        let mut reg = Registry::new();
        let mut d = ShardDrain::new(&mut reg, &journal);
        d.offer(buffer(0, 1));
        assert_eq!(d.merged(), 1, "in-order shard merges without waiting");
        d.offer(buffer(2, 1));
        assert_eq!(d.merged(), 1, "early shard parks until 1 lands");
        d.offer(buffer(1, 1));
        assert_eq!(d.merged(), 3, "frontier release drains the park");
        assert_eq!(d.finish(), 3);
    }

    #[test]
    fn drain_finish_flushes_index_gaps() {
        let journal = Journal::new();
        let mut reg = Registry::new();
        let mut d = ShardDrain::new(&mut reg, &journal);
        d.offer(buffer(5, 7));
        d.offer(buffer(3, 7));
        assert_eq!(d.merged(), 0);
        assert_eq!(d.finish(), 2);
        // Gap flush still runs in index order: events 3 then 5.
        let events = journal.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].fields.get("shard").map(String::as_str), Some("3"));
        assert_eq!(events[1].fields.get("shard").map(String::as_str), Some("5"));
    }
}
