//! Unified observability for the Ethernet Speaker system.
//!
//! §5.3 of the paper calls for central fleet management ("create an
//! SNMP MIB to allow any NMS console to manage ESs"). A MIB is two
//! things: a namespace of numbers and a stream of notifications. This
//! crate provides both, for every component in the stack:
//!
//! - [`Registry`] / [`MetricsSnapshot`] — counters, gauges, and
//!   log-scale histograms keyed `component/instance/name`, exportable
//!   as JSON lines for dashboards;
//! - [`Journal`] — a structured event log (severity, timestamp,
//!   component, message, `key=value` fields) with pluggable sinks,
//!   replacing ad-hoc `eprintln!` diagnostics;
//! - the [`Telemetry`] trait — implemented by each component's stats
//!   snapshot so new components surface in `EsSystem::metrics()`
//!   without touching `es-core`.
//!
//! # Time sources
//!
//! The crate is deliberately time-source-agnostic: nothing here reads a
//! clock on its own. Every journal event carries an explicit
//! [`Stamp`] — a nanosecond count plus a [`TimeDomain`] saying whether
//! it came from the simulator's virtual clock or the machine's wall
//! clock — so the same instrumented code path works unchanged in
//! `es-sim` experiments and in `es-core::live`. Metric values are
//! plain numbers and need no clock at all.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod journal;
pub mod json;
mod metrics;
mod shard;

pub use journal::{Event, Journal, JournalSink, Severity, Stamp, TimeDomain};
pub use json::{JsonError, JsonValue};
pub use metrics::{Histogram, Metric, MetricKey, MetricValue, MetricsSnapshot, Registry, Scope};
pub use shard::{merge_shards, ShardBuffer, ShardDrain};

/// A component whose statistics can be recorded into a [`Registry`].
///
/// Implementations call [`Registry::component`] with their fixed
/// component name and emit counters/gauges/histograms under it; the
/// caller selects the instance label (which speaker, which link) via
/// [`Registry::set_instance`] before invoking `record`.
pub trait Telemetry {
    /// Records this snapshot's values into `registry`.
    fn record(&self, registry: &mut Registry);
}
