//! The structured event journal.
//!
//! Components log notable moments — a late packet discarded, a config
//! change, a link joining a group — as [`Event`]s: severity, explicit
//! timestamp, component, message, and `key=value` fields. The journal
//! buffers a bounded window in memory (oldest events drop first) and
//! fans every event out to pluggable [`JournalSink`]s, so a live
//! deployment can stream JSON lines to a collector while tests inspect
//! the ring directly.
//!
//! The journal never reads a clock: callers stamp events with
//! [`Stamp::virtual_ns`] (simulator time) or [`Stamp::wall_now`]
//! (machine time), which keeps the same instrumentation valid in both
//! worlds and is what makes event ordering reproducible in tests.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::json::{self, JsonValue};

/// How urgent an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Developer detail.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Degradation the system survived.
    Warn,
    /// Something was lost or refused.
    Error,
}

impl Severity {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses [`Self::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which clock a timestamp came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeDomain {
    /// The discrete-event simulator's clock.
    Virtual,
    /// The machine's wall clock (nanoseconds since the Unix epoch).
    Wall,
}

impl TimeDomain {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            TimeDomain::Virtual => "virtual",
            TimeDomain::Wall => "wall",
        }
    }

    /// Parses [`Self::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "virtual" => Some(TimeDomain::Virtual),
            "wall" => Some(TimeDomain::Wall),
            _ => None,
        }
    }
}

impl fmt::Display for TimeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An explicit timestamp: nanoseconds in a named [`TimeDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stamp {
    /// The clock the nanoseconds belong to.
    pub domain: TimeDomain,
    /// Nanoseconds since that clock's zero.
    pub nanos: u64,
}

impl Stamp {
    /// A simulator-time stamp.
    pub fn virtual_ns(nanos: u64) -> Self {
        Stamp {
            domain: TimeDomain::Virtual,
            nanos,
        }
    }

    /// A wall-clock stamp with explicit nanoseconds since the epoch.
    pub fn wall_ns(nanos: u64) -> Self {
        Stamp {
            domain: TimeDomain::Wall,
            nanos,
        }
    }

    /// A wall-clock stamp read from the system clock now — the only
    /// clock access in the crate, and only on the live path.
    pub fn wall_now() -> Self {
        #[allow(clippy::disallowed_methods)]
        // es-allow(wall-clock): the one sanctioned wall read — live-path stamps only
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Stamp::wall_ns(nanos)
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number assigned by the journal; total order
    /// even when timestamps tie.
    pub seq: u64,
    /// When it happened, and on which clock.
    pub stamp: Stamp,
    /// How urgent it is.
    pub severity: Severity,
    /// The component that emitted it.
    pub component: String,
    /// Human-readable one-liner.
    pub message: String,
    /// Structured context.
    pub fields: BTreeMap<String, String>,
}

impl Event {
    /// Serializes as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"seq\":{},\"domain\":\"{}\",\"ts_ns\":{},\"severity\":\"{}\",\"component\":",
            self.seq, self.stamp.domain, self.stamp.nanos, self.severity
        ));
        json::write_str(&mut out, &self.component);
        out.push_str(",\"message\":");
        json::write_str(&mut out, &self.message);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            json::write_str(&mut out, v);
        }
        out.push_str("}}");
        out
    }

    /// Parses [`Self::to_json_line`] output.
    pub fn from_json_line(line: &str) -> Result<Self, crate::JsonError> {
        let v = json::parse(line)?;
        let bad = |message: &str| crate::JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let fields = match v.get("fields") {
            Some(JsonValue::Obj(m)) => m
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| bad("field values must be strings"))
                })
                .collect::<Result<_, _>>()?,
            None => BTreeMap::new(),
            _ => return Err(bad("fields must be an object")),
        };
        Ok(Event {
            seq: v
                .get("seq")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad("missing seq"))?,
            stamp: Stamp {
                domain: v
                    .get("domain")
                    .and_then(JsonValue::as_str)
                    .and_then(TimeDomain::parse)
                    .ok_or_else(|| bad("missing domain"))?,
                nanos: v
                    .get("ts_ns")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("missing ts_ns"))?,
            },
            severity: v
                .get("severity")
                .and_then(JsonValue::as_str)
                .and_then(Severity::parse)
                .ok_or_else(|| bad("missing severity"))?,
            component: v
                .get("component")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("missing component"))?
                .to_string(),
            message: v
                .get("message")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("missing message"))?
                .to_string(),
            fields,
        })
    }
}

/// A destination events are fanned out to as they are recorded.
pub trait JournalSink: Send {
    /// Receives one event (already sequence-stamped).
    fn emit(&mut self, event: &Event);
}

struct Inner {
    events: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    sinks: Vec<Box<dyn JournalSink>>,
}

/// The shared journal handle. Cloning is cheap and every clone feeds
/// the same buffer, so one journal can thread through a whole system —
/// single-threaded simulator or multi-threaded live deployment alike.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// A journal retaining the last 4096 events.
    pub fn new() -> Self {
        Journal::with_capacity(4096)
    }

    /// A journal retaining the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            inner: Arc::new(Mutex::new(Inner {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
                // es-allow(hot-path-transitive): journal construction happens once per scenario, not per frame
                sinks: Vec::new(),
            })),
        }
    }

    /// Adds a sink that will see every subsequent event.
    pub fn add_sink(&self, sink: Box<dyn JournalSink>) {
        self.inner.lock().unwrap().sinks.push(sink);
    }

    /// Records an event with structured fields.
    pub fn emit(
        &self,
        stamp: Stamp,
        severity: Severity,
        component: &str,
        message: &str,
        fields: &[(&str, String)],
    ) {
        // es-allow(panic-path): a poisoned journal mutex means a sink panicked mid-emit; propagating is the intended failure mode
        let mut inner = self.inner.lock().unwrap();
        let event = Event {
            seq: inner.next_seq,
            stamp,
            severity,
            component: component.to_string(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                // es-allow(hot-path-transitive): journal events on lane paths fire on resync/drop faults, not steady-state frames
                .collect(),
        };
        inner.next_seq += 1;
        for sink in &mut inner.sinks {
            sink.emit(&event);
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Records a debug event without fields.
    pub fn debug(&self, stamp: Stamp, component: &str, message: &str) {
        self.emit(stamp, Severity::Debug, component, message, &[]);
    }

    /// Records an info event without fields.
    pub fn info(&self, stamp: Stamp, component: &str, message: &str) {
        self.emit(stamp, Severity::Info, component, message, &[]);
    }

    /// Records a warning without fields.
    pub fn warn(&self, stamp: Stamp, component: &str, message: &str) {
        self.emit(stamp, Severity::Warn, component, message, &[]);
    }

    /// Records an error without fields.
    pub fn error(&self, stamp: Stamp, component: &str, message: &str) {
        self.emit(stamp, Severity::Error, component, message, &[]);
    }

    /// A copy of the buffered events, in record order.
    pub fn events(&self) -> Vec<Event> {
        // es-allow(hot-path-transitive): inspection API for reports and tests, never called from lane code
        // es-allow(panic-path): journal mutex is never poisoned — emit/len/clear hold it without panicking
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        // es-allow(panic-path): a poisoned journal mutex means a sink panicked mid-emit; propagating is the intended failure mode
        self.inner.lock().unwrap().events.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the bounded buffer so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Clears the buffer (sequence numbers keep counting).
    pub fn clear(&self) {
        // es-allow(panic-path): a poisoned journal mutex means a sink panicked mid-emit; propagating is the intended failure mode
        self.inner.lock().unwrap().events.clear();
    }

    /// Serializes the buffered events as JSON lines.
    pub fn to_json_lines(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in &inner.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Journal")
            .field("len", &inner.events.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_under_virtual_time() {
        let j = Journal::new();
        // Three events at the same virtual instant, one earlier.
        j.info(Stamp::virtual_ns(500), "net", "b");
        j.info(Stamp::virtual_ns(500), "vad", "c");
        j.warn(Stamp::virtual_ns(100), "speaker", "a");
        j.info(Stamp::virtual_ns(500), "net", "d");
        let evs = j.events();
        // Record order is preserved and seq is strictly increasing,
        // even though timestamps tie or go backwards.
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        let msgs: Vec<&str> = evs.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["b", "c", "a", "d"]);
        assert!(evs.iter().all(|e| e.stamp.domain == TimeDomain::Virtual));
    }

    #[test]
    fn bounded_buffer_drops_oldest() {
        let j = Journal::with_capacity(2);
        j.info(Stamp::virtual_ns(1), "x", "one");
        j.info(Stamp::virtual_ns(2), "x", "two");
        j.info(Stamp::virtual_ns(3), "x", "three");
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 1);
        let msgs: Vec<String> = j.events().into_iter().map(|e| e.message).collect();
        assert_eq!(msgs, vec!["two", "three"]);
    }

    #[test]
    fn sinks_see_every_event_including_evicted() {
        struct Collect(std::sync::mpsc::Sender<String>);
        impl JournalSink for Collect {
            fn emit(&mut self, event: &Event) {
                self.0.send(event.message.clone()).unwrap();
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let j = Journal::with_capacity(1);
        j.add_sink(Box::new(Collect(tx)));
        j.info(Stamp::wall_ns(1), "x", "a");
        j.info(Stamp::wall_ns(2), "x", "b");
        let got: Vec<String> = rx.try_iter().collect();
        assert_eq!(got, vec!["a", "b"]);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn event_json_roundtrip() {
        let j = Journal::new();
        j.emit(
            Stamp::virtual_ns(1_500_000),
            Severity::Warn,
            "speaker",
            "packet discarded: \"late\"",
            &[("late_by_us", "120".to_string()), ("seq", "7".to_string())],
        );
        let original = &j.events()[0];
        let line = original.to_json_line();
        let back = Event::from_json_line(&line).unwrap();
        assert_eq!(&back, original);
        assert!(Event::from_json_line("{}").is_err());
    }

    #[test]
    fn clones_share_one_buffer() {
        let j = Journal::new();
        let j2 = j.clone();
        j2.info(Stamp::wall_now(), "live", "hello");
        assert_eq!(j.len(), 1);
        assert_eq!(j.events()[0].stamp.domain, TimeDomain::Wall);
    }
}
