//! The metrics registry: counters, gauges, log-scale histograms.
//!
//! Every metric is keyed `component/instance/name` — the component is
//! fixed by the code that owns the number (`"net"`, `"speaker"`, …),
//! the instance distinguishes replicas (which speaker, which link) and
//! is chosen by whoever walks the system, and the name is the quantity.
//! Snapshots export as JSON lines, one metric per line, and parse back
//! for round-trip tests and offline analysis.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, JsonValue};

/// Number of histogram buckets. Bucket `i > 0` holds values whose
/// base-2 magnitude is `i` (upper bound `2^i - 1`); bucket 0 holds
/// exact zeros. 64 buckets cover the full `u64` domain.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log-scale (power-of-two bucket) histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            // es-allow(hot-path-transitive): bucket array built once when a key is first recorded
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        if self.buckets.is_empty() {
            // es-allow(hot-path-transitive): one-shot lazy init for Default-built histograms; steady-state never allocates
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        // es-allow(panic-path): bucket_index() caps at 64 and buckets holds HISTOGRAM_BUCKETS = 65 slots
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// The bucket a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The largest value bucket `i` can hold (`0`, then `2^i - 1`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`q` in `[0, 1]`), or 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// `(bucket_index, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.is_empty() {
            // es-allow(hot-path-transitive): one-shot lazy init for Default-built histograms during post-batch merge
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (i, c) in other.nonzero_buckets() {
            // es-allow(panic-path): nonzero_buckets yields indices below HISTOGRAM_BUCKETS, the length both sides share
            self.buckets[i] += c;
        }
    }
}

/// The full identity of a metric: `component/instance/name`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// The subsystem that owns the number (`"net"`, `"speaker"`, …).
    pub component: String,
    /// Which replica of the component (speaker name, link id, …).
    pub instance: String,
    /// The quantity itself (`"samples_played"`, …).
    pub name: String,
}

impl MetricKey {
    /// Builds a key from its three parts.
    pub fn new(component: &str, instance: &str, name: &str) -> Self {
        MetricKey {
            component: component.to_string(),
            instance: instance.to_string(),
            name: name.to_string(),
        }
    }

    /// Parses `component/instance/name` (the name may itself contain
    /// slashes).
    pub fn from_path(path: &str) -> Option<Self> {
        let mut it = path.splitn(3, '/');
        Some(MetricKey::new(it.next()?, it.next()?, it.next()?))
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.component, self.instance, self.name)
    }
}

/// A metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulating count.
    Counter(u64),
    /// A point-in-time measurement; last write wins.
    Gauge(f64),
    /// A log-scale distribution of samples.
    Histogram(Histogram),
}

impl MetricValue {
    /// The `type` tag used in the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// The mutable collection point instrumented code records into.
#[derive(Debug, Default)]
pub struct Registry {
    instance: String,
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl Registry {
    /// An empty registry with the default instance label `"0"`.
    pub fn new() -> Self {
        Registry {
            instance: "0".to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Sets the instance label applied to subsequently recorded
    /// metrics. The caller that walks the system knows which replica
    /// it is visiting; the component code does not.
    pub fn set_instance(&mut self, instance: &str) {
        self.instance = instance.to_string();
    }

    /// Opens a recording scope for one component under the current
    /// instance label.
    pub fn component<'a>(&'a mut self, component: &str) -> Scope<'a> {
        Scope {
            registry: self,
            component: component.to_string(),
        }
    }

    fn key(&self, component: &str, name: &str) -> MetricKey {
        MetricKey::new(component, &self.instance, name)
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Replays every metric of `other` into this registry under the
    /// [`Scope`] merge rules: counters add, gauges overwrite,
    /// histograms pool their buckets. Each metric keeps the instance
    /// label it was recorded under; neither registry's *current*
    /// instance label is consulted or changed. This is the primitive
    /// the shard-merge path folds worker-lane registries with.
    pub fn merge_from(&mut self, other: &Registry) {
        for (k, v) in &other.metrics {
            match v {
                MetricValue::Counter(c) => {
                    match self
                        .metrics
                        .entry(k.clone())
                        .or_insert(MetricValue::Counter(0))
                    {
                        MetricValue::Counter(dst) => *dst += c,
                        slot => *slot = MetricValue::Counter(*c),
                    }
                }
                MetricValue::Gauge(g) => {
                    self.metrics.insert(k.clone(), MetricValue::Gauge(*g));
                }
                MetricValue::Histogram(h) => {
                    match self
                        .metrics
                        .entry(k.clone())
                        .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
                    {
                        MetricValue::Histogram(dst) => dst.merge(h),
                        slot => *slot = MetricValue::Histogram(h.clone()),
                    }
                }
            }
        }
    }

    /// Freezes the current contents into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|(k, v)| Metric {
                    key: k.clone(),
                    value: v.clone(),
                })
                .collect(),
        }
    }
}

/// A recording scope: one component, one instance.
pub struct Scope<'a> {
    registry: &'a mut Registry,
    component: String,
}

impl Scope<'_> {
    /// Adds to a counter (creating it at zero).
    pub fn counter(&mut self, name: &str, delta: u64) -> &mut Self {
        let key = self.registry.key(&self.component, name);
        match self
            .registry
            .metrics
            .entry(key)
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += delta,
            other => *other = MetricValue::Counter(delta),
        }
        self
    }

    /// Sets a gauge (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        let key = self.registry.key(&self.component, name);
        self.registry.metrics.insert(key, MetricValue::Gauge(value));
        self
    }

    /// Records one sample into a histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) -> &mut Self {
        let key = self.registry.key(&self.component, name);
        match self
            .registry
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => {
                let mut h = Histogram::new();
                h.observe(value);
                *other = MetricValue::Histogram(h);
            }
        }
        self
    }

    /// Merges an externally maintained histogram under `name`.
    pub fn histogram(&mut self, name: &str, hist: &Histogram) -> &mut Self {
        let key = self.registry.key(&self.component, name);
        match self
            .registry
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.merge(hist),
            other => *other = MetricValue::Histogram(hist.clone()),
        }
        self
    }
}

/// One exported metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Its identity.
    pub key: MetricKey,
    /// Its value.
    pub value: MetricValue,
}

/// An immutable, sorted set of metrics from one walk of the system.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All metrics, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    /// Looks up a metric by `component/instance/name` path.
    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        let key = MetricKey::from_path(path)?;
        self.metrics
            .binary_search_by(|m| m.key.cmp(&key))
            .ok()
            // es-allow(panic-path): binary_search Ok(i) is a proven in-bounds position
            .map(|i| &self.metrics[i].value)
    }

    /// A counter's value by path.
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.get(path)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// A gauge's value by path.
    pub fn gauge(&self, path: &str) -> Option<f64> {
        match self.get(path)? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// A histogram by path.
    pub fn histogram(&self, path: &str) -> Option<&Histogram> {
        match self.get(path)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// How much a counter grew since an earlier snapshot — `None` if it
    /// is absent from either side. The chaos suite's "`frames_dropped`
    /// stops growing after the network heals" invariants are this with
    /// an expected delta of zero.
    pub fn counter_delta(&self, earlier: &MetricsSnapshot, path: &str) -> Option<u64> {
        Some(self.counter(path)?.saturating_sub(earlier.counter(path)?))
    }

    /// Sums a counter across every instance of a component — the
    /// fleet-wide total an NMS console would chart.
    pub fn sum_counters(&self, component: &str, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.key.component == component && m.key.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// The distinct instance labels recorded under one component, in
    /// sorted order — the monitor loop's roster of replicas to examine
    /// each epoch.
    pub fn instances(&self, component: &str) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if m.key.component == component && out.last() != Some(&m.key.instance.as_str()) {
                out.push(&m.key.instance);
            }
        }
        out
    }

    /// Every counter of one component instance as `(name, value)`
    /// pairs, in name order (the snapshot is key-sorted).
    pub fn counters_for<'a>(
        &'a self,
        component: &'a str,
        instance: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.metrics.iter().filter_map(move |m| {
            if m.key.component != component || m.key.instance != instance {
                return None;
            }
            match &m.value {
                MetricValue::Counter(c) => Some((m.key.name.as_str(), *c)),
                _ => None,
            }
        })
    }

    /// Per-counter growth for one component instance since `earlier`,
    /// as `(name, delta)` pairs in name order. Counters absent from
    /// `earlier` (born this epoch) report their full current value;
    /// shrunken counters saturate to zero like
    /// [`counter_delta`](Self::counter_delta).
    pub fn counter_deltas_for<'s>(
        &'s self,
        earlier: &MetricsSnapshot,
        component: &str,
        instance: &str,
    ) -> Vec<(&'s str, u64)> {
        self.metrics
            .iter()
            .filter(|m| m.key.component == component && m.key.instance == instance)
            .filter_map(|m| match &m.value {
                MetricValue::Counter(now) => {
                    let before = earlier
                        .counter(&format!("{component}/{instance}/{}", m.key.name))
                        .unwrap_or(0);
                    Some((m.key.name.as_str(), now.saturating_sub(before)))
                }
                _ => None,
            })
            .collect()
    }

    /// Serializes to JSON lines, one metric per line, sorted by key.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str("{\"key\":");
            json::write_str(&mut out, &m.key.to_string());
            out.push_str(",\"type\":\"");
            out.push_str(m.value.kind());
            out.push('"');
            match &m.value {
                MetricValue::Counter(c) => {
                    out.push_str(",\"value\":");
                    json::write_num(&mut out, *c as f64);
                }
                MetricValue::Gauge(g) => {
                    out.push_str(",\"value\":");
                    json::write_num(&mut out, *g);
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(",\"count\":{},\"sum\":{}", h.count(), h.sum()));
                    out.push_str(",\"buckets\":[");
                    for (n, (i, c)) in h.nonzero_buckets().enumerate() {
                        if n > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{i},{c}]"));
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parses the output of [`Self::to_json_lines`].
    pub fn from_json_lines(input: &str) -> Result<Self, crate::JsonError> {
        let mut metrics = Vec::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line)?;
            let bad = |message: &str| crate::JsonError {
                message: message.to_string(),
                offset: 0,
            };
            let key = v
                .get("key")
                .and_then(JsonValue::as_str)
                .and_then(MetricKey::from_path)
                .ok_or_else(|| bad("missing or malformed key"))?;
            let value = match v.get("type").and_then(JsonValue::as_str) {
                Some("counter") => MetricValue::Counter(
                    v.get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| bad("counter needs an integer value"))?,
                ),
                Some("gauge") => MetricValue::Gauge(
                    v.get("value")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| bad("gauge needs a numeric value"))?,
                ),
                Some("histogram") => {
                    let mut h = Histogram::new();
                    h.count = v
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| bad("histogram needs a count"))?;
                    h.sum = v
                        .get("sum")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| bad("histogram needs a sum"))?;
                    for pair in v
                        .get("buckets")
                        .and_then(JsonValue::items)
                        .ok_or_else(|| bad("histogram needs buckets"))?
                    {
                        let (i, c) = match pair.items() {
                            Some([i, c]) => (
                                i.as_u64().ok_or_else(|| bad("bad bucket index"))?,
                                c.as_u64().ok_or_else(|| bad("bad bucket count"))?,
                            ),
                            _ => return Err(bad("bucket must be [index, count]")),
                        };
                        if i as usize >= HISTOGRAM_BUCKETS {
                            return Err(bad("bucket index out of range"));
                        }
                        h.buckets[i as usize] = c;
                    }
                    MetricValue::Histogram(h)
                }
                _ => return Err(bad("unknown metric type")),
            };
            metrics.push(Metric { key, value });
        }
        metrics.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(MetricsSnapshot { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..63 {
            // Every bucket's upper bound maps back into that bucket.
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper_bound(i)), i);
            assert_eq!(
                Histogram::bucket_index(Histogram::bucket_upper_bound(i) + 1),
                i + 1
            );
        }
    }

    #[test]
    fn histogram_count_sum_quantile() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1107);
        assert!((h.mean() - 1107.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
        // The third of six samples is a 1 (bucket 1, bound 1).
        assert_eq!(h.quantile(0.5), 1);
        // Five of six samples are <= 100 (bucket 7, bound 127).
        assert_eq!(h.quantile(0.8), 127);
        assert_eq!(h.quantile(1.0), Histogram::bucket_upper_bound(10));
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        a.observe(3);
        let mut b = Histogram::new();
        b.observe(3);
        b.observe(900);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 906);
        assert_eq!(a.nonzero_buckets().count(), 2);
    }

    #[test]
    fn counter_accumulates_gauge_overwrites() {
        let mut r = Registry::new();
        r.set_instance("spk-a");
        {
            let mut s = r.component("speaker");
            s.counter("samples_played", 10);
            s.counter("samples_played", 5);
            s.gauge("sync_offset_us", 250.0);
            s.gauge("sync_offset_us", -40.0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("speaker/spk-a/samples_played"), Some(15));
        assert_eq!(snap.gauge("speaker/spk-a/sync_offset_us"), Some(-40.0));
        assert_eq!(snap.counter("speaker/spk-a/nope"), None);
    }

    #[test]
    fn instances_are_distinct() {
        let mut r = Registry::new();
        r.set_instance("a");
        r.component("net").counter("frames_delivered", 1);
        r.set_instance("b");
        r.component("net").counter("frames_delivered", 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("net/a/frames_delivered"), Some(1));
        assert_eq!(snap.counter("net/b/frames_delivered"), Some(2));
        assert_eq!(snap.sum_counters("net", "frames_delivered"), 3);
    }

    #[test]
    fn counter_delta_between_snapshots() {
        let snap = |v: u64| {
            let mut r = Registry::new();
            r.set_instance("lan0");
            r.component("net").counter("frames_dropped", v);
            r.snapshot()
        };
        let (early, late) = (snap(10), snap(17));
        assert_eq!(
            late.counter_delta(&early, "net/lan0/frames_dropped"),
            Some(7)
        );
        assert_eq!(
            late.counter_delta(&late, "net/lan0/frames_dropped"),
            Some(0)
        );
        // Saturates rather than panicking on a counter that went down
        // (a restarted component).
        assert_eq!(
            early.counter_delta(&late, "net/lan0/frames_dropped"),
            Some(0)
        );
        assert_eq!(late.counter_delta(&early, "net/lan0/nope"), None);
    }

    #[test]
    fn delta_iteration_helpers() {
        let snap = |played: u64, missed: u64| {
            let mut r = Registry::new();
            r.set_instance("es0");
            {
                let mut s = r.component("speaker");
                s.counter("samples_played", played);
                s.counter("deadline_misses", missed);
                s.gauge("sync_offset_us", 12.0);
            }
            r.set_instance("es1");
            r.component("speaker").counter("samples_played", 5);
            r.set_instance("lan0");
            r.component("net").counter("frames_sent", 9);
            r.snapshot()
        };
        let (early, late) = (snap(100, 2), snap(180, 3));
        assert_eq!(late.instances("speaker"), vec!["es0", "es1"]);
        assert_eq!(late.instances("net"), vec!["lan0"]);
        assert!(late.instances("heal").is_empty());
        // Gauges are excluded from counter iteration.
        let counters: Vec<_> = late.counters_for("speaker", "es0").collect();
        assert_eq!(
            counters,
            vec![("deadline_misses", 3u64), ("samples_played", 180)]
        );
        assert_eq!(
            late.counter_deltas_for(&early, "speaker", "es0"),
            vec![("deadline_misses", 1u64), ("samples_played", 80)]
        );
        // A counter born after `earlier` reports its full value.
        assert_eq!(
            late.counter_deltas_for(&MetricsSnapshot::default(), "speaker", "es1"),
            vec![("samples_played", 5u64)]
        );
    }

    #[test]
    fn snapshot_json_lines_roundtrip() {
        let mut r = Registry::new();
        r.set_instance("lan0");
        {
            let mut s = r.component("net");
            s.counter("frames_delivered", 123);
            s.gauge("utilization", 0.375);
            for v in [0u64, 9, 17, 300_000] {
                s.observe("queue_delay_us", v);
            }
        }
        let snap = r.snapshot();
        let lines = snap.to_json_lines();
        assert_eq!(lines.lines().count(), 3);
        let back = MetricsSnapshot::from_json_lines(&lines).unwrap();
        assert_eq!(back, snap);
        // And a second generation survives too (stable format).
        assert_eq!(back.to_json_lines(), lines);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(MetricsSnapshot::from_json_lines("{\"key\":\"x\"}").is_err());
        assert!(MetricsSnapshot::from_json_lines("not json").is_err());
        let ok = MetricsSnapshot::from_json_lines("").unwrap();
        assert!(ok.is_empty());
    }
}
