//! The DHCP model: network identity plus Ethernet-Speaker options.
//!
//! §2.4: "Network setup may be done via DHCP, but we also need
//! additional data such as the multicast addresses used for the audio
//! channels, channel selection, etc." The server hands out leases keyed
//! by MAC address with stable (reservation-style) assignment, carrying
//! the ES-specific options alongside the usual address/boot-server
//! fields.

use std::collections::BTreeMap;

/// A MAC address (the machine's identity for reservations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mac(pub [u8; 6]);

impl core::fmt::Display for Mac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// Site-wide DHCP parameters.
#[derive(Debug, Clone)]
pub struct DhcpConfig {
    /// First address of the dynamic pool (last octet).
    pub pool_start: u8,
    /// Pool size.
    pub pool_size: u8,
    /// Boot server address advertised in every lease ("next-server").
    pub boot_server: [u8; 4],
    /// Multicast group of the announce catalog, an ES-specific option.
    pub announce_group: u16,
    /// Default channel for speakers with no reservation.
    pub default_channel: u16,
}

impl Default for DhcpConfig {
    fn default() -> Self {
        DhcpConfig {
            pool_start: 100,
            pool_size: 100,
            boot_server: [10, 0, 0, 1],
            announce_group: 0,
            default_channel: 1,
        }
    }
}

/// A granted lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Assigned IPv4 address.
    pub ip: [u8; 4],
    /// Boot server to fetch the kernel and config from.
    pub boot_server: [u8; 4],
    /// Catalog multicast group.
    pub announce_group: u16,
    /// Channel this speaker should tune at boot.
    pub channel: u16,
    /// Optional host name from a reservation.
    pub hostname: Option<String>,
}

/// A per-MAC reservation: fixed last octet, channel, hostname.
type Reservation = (Option<u8>, Option<u16>, Option<String>);

/// The DHCP server with per-MAC reservations.
#[derive(Debug)]
pub struct DhcpServer {
    config: DhcpConfig,
    reservations: BTreeMap<Mac, Reservation>,
    assigned: BTreeMap<Mac, u8>,
    next_free: u8,
}

impl DhcpServer {
    /// Creates a server.
    pub fn new(config: DhcpConfig) -> Self {
        let next_free = config.pool_start;
        DhcpServer {
            config,
            reservations: BTreeMap::new(),
            assigned: BTreeMap::new(),
            next_free,
        }
    }

    /// Adds a reservation: fixed last octet and/or channel and/or
    /// hostname for a MAC.
    pub fn reserve(
        &mut self,
        mac: Mac,
        last_octet: Option<u8>,
        channel: Option<u16>,
        hostname: Option<&str>,
    ) {
        self.reservations
            .insert(mac, (last_octet, channel, hostname.map(String::from)));
    }

    /// Handles a DISCOVER/REQUEST: returns a lease, stable per MAC.
    /// `None` when the pool is exhausted.
    pub fn request(&mut self, mac: Mac) -> Option<Lease> {
        let (res_ip, res_channel, res_host) = self
            .reservations
            .get(&mac)
            .cloned()
            .unwrap_or((None, None, None));
        let last = match res_ip {
            Some(octet) => octet,
            None => match self.assigned.get(&mac) {
                Some(&octet) => octet,
                None => {
                    let end = self.config.pool_start.saturating_add(self.config.pool_size);
                    if self.next_free >= end {
                        return None;
                    }
                    let octet = self.next_free;
                    self.next_free += 1;
                    octet
                }
            },
        };
        self.assigned.insert(mac, last);
        let mut ip = self.config.boot_server;
        ip[3] = last;
        Some(Lease {
            ip,
            boot_server: self.config.boot_server,
            announce_group: self.config.announce_group,
            channel: res_channel.unwrap_or(self.config.default_channel),
            hostname: res_host,
        })
    }

    /// Number of active assignments.
    pub fn active_leases(&self) -> usize {
        self.assigned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u8) -> Mac {
        Mac([0x02, 0, 0, 0, 0, n])
    }

    #[test]
    fn leases_are_stable_per_mac() {
        let mut s = DhcpServer::new(DhcpConfig::default());
        let a1 = s.request(mac(1)).unwrap();
        let b = s.request(mac(2)).unwrap();
        let a2 = s.request(mac(1)).unwrap();
        assert_eq!(a1.ip, a2.ip, "same MAC, same address");
        assert_ne!(a1.ip, b.ip);
        assert_eq!(s.active_leases(), 2);
    }

    #[test]
    fn reservations_override_pool_and_channel() {
        let mut s = DhcpServer::new(DhcpConfig::default());
        s.reserve(mac(9), Some(250), Some(7), Some("lobby-west"));
        let l = s.request(mac(9)).unwrap();
        assert_eq!(l.ip[3], 250);
        assert_eq!(l.channel, 7);
        assert_eq!(l.hostname.as_deref(), Some("lobby-west"));
        // Unreserved machines get the default channel.
        let l2 = s.request(mac(1)).unwrap();
        assert_eq!(l2.channel, 1);
        assert_eq!(l2.hostname, None);
    }

    #[test]
    fn pool_exhaustion() {
        let mut s = DhcpServer::new(DhcpConfig {
            pool_start: 10,
            pool_size: 2,
            ..DhcpConfig::default()
        });
        assert!(s.request(mac(1)).is_some());
        assert!(s.request(mac(2)).is_some());
        assert!(s.request(mac(3)).is_none(), "pool of 2 exhausted");
        // Existing leases still renew.
        assert!(s.request(mac(1)).is_some());
    }

    #[test]
    fn lease_carries_es_options() {
        let mut s = DhcpServer::new(DhcpConfig {
            announce_group: 42,
            ..DhcpConfig::default()
        });
        let l = s.request(mac(5)).unwrap();
        assert_eq!(l.announce_group, 42);
        assert_eq!(l.boot_server, [10, 0, 0, 1]);
    }

    #[test]
    fn mac_display() {
        assert_eq!(format!("{}", mac(0xAB)), "02:00:00:00:00:ab");
    }
}
