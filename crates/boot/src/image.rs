//! The boot server: versioned ramdisk kernels and per-machine config
//! bundles.
//!
//! §2.4: "the network boot option (was) more appealing" because "we
//! should be able to update the software on these machines without
//! having to visit each machine separately" — one image, rebooted
//! everywhere. The per-machine state travels as "a tar file that is
//! scp'd from a boot server (note that the boot server's ssh public
//! keys are stored in the ramdisk)": fetches are authenticated by a
//! key pinned inside the image.

use std::collections::BTreeMap;

use crate::dhcp::Mac;
use crate::overlay::RamdiskFs;

/// A simple keyed fingerprint standing in for the boot server's ssh
/// host key (the pinned trust root of §2.4 / §5.1).
pub type HostKey = [u8; 32];

/// A versioned ramdisk kernel image.
#[derive(Debug, Clone)]
pub struct BootImage {
    /// Monotone image version.
    pub version: u32,
    /// The common root filesystem (skeleton `/etc`, binaries).
    pub ramdisk: RamdiskFs,
    /// The boot server host key pinned inside the image.
    pub pinned_key: HostKey,
}

/// The boot server: current image plus per-MAC configuration bundles.
#[derive(Debug)]
pub struct BootServer {
    host_key: HostKey,
    image: BootImage,
    bundles: BTreeMap<Mac, RamdiskFs>,
    image_downloads: u64,
    bundle_downloads: u64,
}

impl BootServer {
    /// Creates a server with version-1 image built from `skeleton`.
    pub fn new(host_key: HostKey, skeleton: RamdiskFs) -> Self {
        BootServer {
            host_key,
            image: BootImage {
                version: 1,
                ramdisk: skeleton,
                pinned_key: host_key,
            },
            bundles: BTreeMap::new(),
            image_downloads: 0,
            bundle_downloads: 0,
        }
    }

    /// The server's host key.
    pub fn host_key(&self) -> HostKey {
        self.host_key
    }

    /// Current image version.
    pub fn image_version(&self) -> u32 {
        self.image.version
    }

    /// Replaces the fleet image (the "update one image, reboot
    /// everywhere" path). Bumps the version.
    pub fn update_image(&mut self, ramdisk: RamdiskFs) -> u32 {
        self.image = BootImage {
            version: self.image.version + 1,
            ramdisk,
            pinned_key: self.host_key,
        };
        self.image.version
    }

    /// Installs or replaces a machine's configuration bundle.
    pub fn set_bundle(&mut self, mac: Mac, bundle: RamdiskFs) {
        self.bundles.insert(mac, bundle);
    }

    /// TFTP/PXE image download.
    pub fn download_image(&mut self) -> BootImage {
        self.image_downloads += 1;
        self.image.clone()
    }

    /// The scp'd config bundle fetch. The client presents the key it
    /// has pinned; a mismatch (rogue boot server) yields nothing.
    pub fn download_bundle(&mut self, mac: Mac, presented_key: HostKey) -> Option<RamdiskFs> {
        if presented_key != self.host_key {
            return None;
        }
        self.bundle_downloads += 1;
        Some(self.bundles.get(&mac).cloned().unwrap_or_default())
    }

    /// `(image, bundle)` download counters.
    pub fn download_counts(&self) -> (u64, u64) {
        (self.image_downloads, self.bundle_downloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u8) -> Mac {
        Mac([2, 0, 0, 0, 0, n])
    }

    fn server() -> BootServer {
        let skel = RamdiskFs::new().with_file("/etc/es/channel", "1\n");
        BootServer::new([7u8; 32], skel)
    }

    #[test]
    fn image_versioning() {
        let mut s = server();
        assert_eq!(s.image_version(), 1);
        let v = s.update_image(RamdiskFs::new().with_file("/etc/es/channel", "2\n"));
        assert_eq!(v, 2);
        let img = s.download_image();
        assert_eq!(img.version, 2);
        assert_eq!(img.ramdisk.read_str("/etc/es/channel"), Some("2\n"));
        assert_eq!(img.pinned_key, s.host_key());
    }

    #[test]
    fn bundles_are_per_machine() {
        let mut s = server();
        s.set_bundle(mac(1), RamdiskFs::new().with_file("/etc/es/name", "a\n"));
        s.set_bundle(mac(2), RamdiskFs::new().with_file("/etc/es/name", "b\n"));
        let key = s.host_key();
        let b1 = s.download_bundle(mac(1), key).unwrap();
        let b2 = s.download_bundle(mac(2), key).unwrap();
        assert_eq!(b1.read_str("/etc/es/name"), Some("a\n"));
        assert_eq!(b2.read_str("/etc/es/name"), Some("b\n"));
        // Unknown machines get an empty (all-common) bundle.
        assert!(s.download_bundle(mac(3), key).unwrap().is_empty());
    }

    #[test]
    fn wrong_key_is_refused() {
        let mut s = server();
        s.set_bundle(mac(1), RamdiskFs::new().with_file("/etc/es/name", "a\n"));
        assert!(s.download_bundle(mac(1), [0u8; 32]).is_none());
        assert_eq!(s.download_counts().1, 0);
    }

    #[test]
    fn download_counters() {
        let mut s = server();
        let key = s.host_key();
        s.download_image();
        s.download_image();
        s.download_bundle(mac(1), key);
        assert_eq!(s.download_counts(), (2, 1));
    }
}
