//! # es-boot — netboot, DHCP and ramdisk configuration (§2.4)
//!
//! The paper's Ethernet Speakers are maintenance-free appliances: they
//! PXE-boot a ramdisk kernel over the network, acquire their network
//! identity from DHCP, and fetch a per-machine configuration tar that
//! is "expanded over the skeleton `/etc` directory, thus the
//! machine-specific information overwrites any common configuration".
//! The boot server's ssh public key ships inside the ramdisk, so the
//! fetch is authenticated; updating the fleet means updating one image
//! and rebooting.
//!
//! This crate models that logic faithfully enough to test it: an image
//! store with versioned ramdisks, a lease-handing DHCP server, an
//! overlay filesystem with exactly the paper's overwrite rule, and a
//! boot state machine (PXE → DHCP → kernel → config fetch → service
//! start) that refuses images or config bundles signed by the wrong
//! server key.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod dhcp;
pub mod image;
pub mod machine;
pub mod overlay;

pub use dhcp::{DhcpConfig, DhcpServer, Lease};
pub use image::{BootImage, BootServer};
pub use machine::{BootError, BootPhase, BootedSystem, SpeakerMachine};
pub use overlay::RamdiskFs;
