//! The speaker appliance's boot state machine.
//!
//! PXE → DHCP → kernel/ramdisk download → config bundle fetch (key
//! pinned in the ramdisk) → overlay → service start. The sequence is
//! §2.4's, including the two failure properties the design buys:
//! a machine that loses power mid-boot simply reboots into the same
//! sequence (no writable boot medium to corrupt), and a machine that
//! reaches a rogue boot server refuses the config fetch because the
//! pinned key does not match.

use crate::dhcp::{DhcpServer, Lease, Mac};
use crate::image::{BootServer, HostKey};
use crate::overlay::RamdiskFs;

/// Where in the boot sequence a machine is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootPhase {
    /// Powered off.
    PoweredOff,
    /// PXE firmware broadcasting for DHCP.
    Dhcp,
    /// Downloading the ramdisk kernel.
    LoadingKernel,
    /// Fetching the machine-specific configuration bundle.
    FetchingConfig,
    /// Up and running the rebroadcast/speaker software.
    Running,
    /// Boot failed (reason retained).
    Failed,
}

/// Boot failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootError {
    /// No DHCP lease (pool exhausted or no server).
    NoLease,
    /// The config fetch was refused (key mismatch — rogue server).
    ConfigFetchRefused,
}

impl core::fmt::Display for BootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BootError::NoLease => f.write_str("no DHCP lease"),
            BootError::ConfigFetchRefused => {
                f.write_str("config fetch refused: boot server key mismatch")
            }
        }
    }
}

impl std::error::Error for BootError {}

/// A fully booted system: the live filesystem plus identity.
#[derive(Debug, Clone)]
pub struct BootedSystem {
    /// Network identity.
    pub lease: Lease,
    /// Image version running.
    pub image_version: u32,
    /// The live root filesystem (skeleton + overlay).
    pub fs: RamdiskFs,
}

impl BootedSystem {
    /// Convenience: the channel this speaker should tune, from
    /// configuration (file overrides lease option).
    pub fn configured_channel(&self) -> u16 {
        self.fs
            .read_str("/etc/es/channel")
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(self.lease.channel)
    }

    /// Convenience: the configured volume (1.0 when absent).
    pub fn configured_volume(&self) -> f64 {
        self.fs
            .read_str("/etc/es/volume")
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(1.0)
    }
}

/// One Ethernet Speaker appliance.
#[derive(Debug)]
pub struct SpeakerMachine {
    mac: Mac,
    phase: BootPhase,
    boots: u32,
}

impl SpeakerMachine {
    /// A powered-off machine with the given MAC.
    pub fn new(mac: Mac) -> Self {
        SpeakerMachine {
            mac,
            phase: BootPhase::PoweredOff,
            boots: 0,
        }
    }

    /// The machine's MAC.
    pub fn mac(&self) -> Mac {
        self.mac
    }

    /// Current phase.
    pub fn phase(&self) -> BootPhase {
        self.phase
    }

    /// Number of boot attempts.
    pub fn boot_count(&self) -> u32 {
        self.boots
    }

    /// Runs the whole boot sequence against the given servers. The
    /// `reachable_key` is the host key of whatever machine answers the
    /// config fetch — normally `boot.host_key()`, different under a
    /// rogue-server attack.
    pub fn boot(
        &mut self,
        dhcp: &mut DhcpServer,
        boot: &mut BootServer,
        reachable_key: HostKey,
    ) -> Result<BootedSystem, BootError> {
        self.boots += 1;
        self.phase = BootPhase::Dhcp;
        let Some(lease) = dhcp.request(self.mac) else {
            self.phase = BootPhase::Failed;
            return Err(BootError::NoLease);
        };
        self.phase = BootPhase::LoadingKernel;
        let image = boot.download_image();
        self.phase = BootPhase::FetchingConfig;
        // The ramdisk's pinned key must match the server we reached.
        if image.pinned_key != reachable_key {
            self.phase = BootPhase::Failed;
            return Err(BootError::ConfigFetchRefused);
        }
        let Some(bundle) = boot.download_bundle(self.mac, image.pinned_key) else {
            self.phase = BootPhase::Failed;
            return Err(BootError::ConfigFetchRefused);
        };
        let mut fs = image.ramdisk.clone();
        fs.overlay(&bundle);
        self.phase = BootPhase::Running;
        Ok(BootedSystem {
            lease,
            image_version: image.version,
            fs,
        })
    }

    /// Power cycle: back to the start, no state carried (ramdisk).
    pub fn power_off(&mut self) {
        self.phase = BootPhase::PoweredOff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dhcp::DhcpConfig;

    fn mac(n: u8) -> Mac {
        Mac([2, 0, 0, 0, 0, n])
    }

    fn servers() -> (DhcpServer, BootServer) {
        let dhcp = DhcpServer::new(DhcpConfig::default());
        let skel = RamdiskFs::new()
            .with_file("/etc/es/channel", "1\n")
            .with_file("/etc/es/volume", "1.0\n");
        let boot = BootServer::new([9u8; 32], skel);
        (dhcp, boot)
    }

    #[test]
    fn clean_boot_reaches_running() {
        let (mut dhcp, mut boot) = servers();
        let key = boot.host_key();
        let mut m = SpeakerMachine::new(mac(1));
        let sys = m.boot(&mut dhcp, &mut boot, key).unwrap();
        assert_eq!(m.phase(), BootPhase::Running);
        assert_eq!(sys.image_version, 1);
        assert_eq!(sys.configured_channel(), 1);
        assert_eq!(sys.configured_volume(), 1.0);
    }

    #[test]
    fn machine_specific_config_wins() {
        let (mut dhcp, mut boot) = servers();
        let key = boot.host_key();
        boot.set_bundle(
            mac(1),
            RamdiskFs::new()
                .with_file("/etc/es/channel", "5\n")
                .with_file("/etc/es/volume", "0.25\n"),
        );
        let mut m = SpeakerMachine::new(mac(1));
        let sys = m.boot(&mut dhcp, &mut boot, key).unwrap();
        assert_eq!(sys.configured_channel(), 5);
        assert_eq!(sys.configured_volume(), 0.25);
        // A different machine keeps the defaults.
        let mut m2 = SpeakerMachine::new(mac(2));
        let sys2 = m2.boot(&mut dhcp, &mut boot, key).unwrap();
        assert_eq!(sys2.configured_channel(), 1);
    }

    #[test]
    fn fleet_update_is_one_image_bump() {
        let (mut dhcp, mut boot) = servers();
        let key = boot.host_key();
        let mut machines: Vec<SpeakerMachine> =
            (1..=5).map(|n| SpeakerMachine::new(mac(n))).collect();
        for m in &mut machines {
            assert_eq!(m.boot(&mut dhcp, &mut boot, key).unwrap().image_version, 1);
        }
        boot.update_image(RamdiskFs::new().with_file("/etc/es/channel", "2\n"));
        for m in &mut machines {
            m.power_off();
            let sys = m.boot(&mut dhcp, &mut boot, key).unwrap();
            assert_eq!(sys.image_version, 2);
            assert_eq!(sys.configured_channel(), 2);
        }
    }

    #[test]
    fn rogue_boot_server_is_refused() {
        let (mut dhcp, mut boot) = servers();
        let rogue_key = [0xBAu8; 32];
        let mut m = SpeakerMachine::new(mac(1));
        let err = m.boot(&mut dhcp, &mut boot, rogue_key).unwrap_err();
        assert_eq!(err, BootError::ConfigFetchRefused);
        assert_eq!(m.phase(), BootPhase::Failed);
        assert!(format!("{err}").contains("key mismatch"));
    }

    #[test]
    fn dhcp_exhaustion_fails_boot_and_reboot_recovers() {
        let mut dhcp = DhcpServer::new(DhcpConfig {
            pool_start: 10,
            pool_size: 1,
            ..DhcpConfig::default()
        });
        let skel = RamdiskFs::new();
        let mut boot = BootServer::new([9u8; 32], skel);
        let key = boot.host_key();
        let mut a = SpeakerMachine::new(mac(1));
        let mut b = SpeakerMachine::new(mac(2));
        a.boot(&mut dhcp, &mut boot, key).unwrap();
        assert_eq!(
            b.boot(&mut dhcp, &mut boot, key).unwrap_err(),
            BootError::NoLease
        );
        assert_eq!(b.phase(), BootPhase::Failed);
        // Power-failure-mid-boot property: a reboots fine, state fresh.
        a.power_off();
        assert!(a.boot(&mut dhcp, &mut boot, key).is_ok());
        assert_eq!(a.boot_count(), 2);
    }

    #[test]
    fn lease_channel_used_when_no_config_file() {
        let mut dhcp = DhcpServer::new(DhcpConfig {
            default_channel: 9,
            ..DhcpConfig::default()
        });
        let mut boot = BootServer::new([9u8; 32], RamdiskFs::new());
        let key = boot.host_key();
        let mut m = SpeakerMachine::new(mac(1));
        let sys = m.boot(&mut dhcp, &mut boot, key).unwrap();
        assert_eq!(
            sys.configured_channel(),
            9,
            "falls back to the lease option"
        );
    }
}
