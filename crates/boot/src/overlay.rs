//! The ramdisk filesystem with configuration overlay.
//!
//! "The ramdisk contains only programs and data that are common to all
//! ESs. ... The configuration tar file is expanded over the skeleton
//! /etc directory, thus the machine-specific information overwrites
//! the any common configuration" (§2.4). Mounted read-only is the whole
//! point: "if we use a Flash boot medium, we would not be able to have
//! it mounted read-write because a power (or any other) failure may
//! create a non-bootable machine" — a ramdisk can be scribbled on and
//! is rebuilt fresh at every boot.

use std::collections::BTreeMap;

/// An in-memory filesystem image: path → contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RamdiskFs {
    files: BTreeMap<String, Vec<u8>>,
}

impl RamdiskFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a file; returns `self` for builder chains.
    pub fn with_file(mut self, path: impl Into<String>, contents: impl Into<Vec<u8>>) -> Self {
        self.insert(path, contents);
        self
    }

    /// Adds or replaces a file.
    pub fn insert(&mut self, path: impl Into<String>, contents: impl Into<Vec<u8>>) {
        let path = normalize(&path.into());
        self.files.insert(path, contents.into());
    }

    /// Reads a file.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(&normalize(path)).map(|v| v.as_slice())
    }

    /// Reads a file as UTF-8 (configuration files are text).
    pub fn read_str(&self, path: &str) -> Option<&str> {
        self.read(path).and_then(|b| core::str::from_utf8(b).ok())
    }

    /// True if the path exists.
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(&normalize(path))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Paths under a directory prefix, sorted.
    pub fn list(&self, dir: &str) -> Vec<&str> {
        let prefix = {
            let mut d = normalize(dir);
            if !d.ends_with('/') {
                d.push('/');
            }
            d
        };
        self.files
            .keys()
            .filter(|p| p.starts_with(&prefix))
            .map(|p| p.as_str())
            .collect()
    }

    /// Expands `bundle` over this filesystem — the paper's overwrite
    /// rule: bundle files win, everything else is preserved. Returns
    /// the number of files overwritten (as opposed to added).
    pub fn overlay(&mut self, bundle: &RamdiskFs) -> usize {
        let mut overwritten = 0;
        for (path, contents) in &bundle.files {
            if self.files.insert(path.clone(), contents.clone()).is_some() {
                overwritten += 1;
            }
        }
        overwritten
    }
}

fn normalize(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    if !path.starts_with('/') {
        out.push('/');
    }
    let mut prev_slash = false;
    for c in path.chars() {
        if c == '/' {
            if prev_slash {
                continue;
            }
            prev_slash = true;
        } else {
            prev_slash = false;
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skeleton() -> RamdiskFs {
        RamdiskFs::new()
            .with_file("/etc/hosts", "127.0.0.1 localhost\n")
            .with_file("/etc/es/channel", "0\n")
            .with_file("/etc/es/volume", "1.0\n")
            .with_file("/bin/rebroadcast", vec![0x7f, b'E', b'L', b'F'])
    }

    #[test]
    fn machine_config_overwrites_common() {
        let mut fs = skeleton();
        let bundle = RamdiskFs::new()
            .with_file("/etc/es/channel", "3\n")
            .with_file("/etc/es/name", "lobby-west\n");
        let overwritten = fs.overlay(&bundle);
        assert_eq!(overwritten, 1);
        assert_eq!(fs.read_str("/etc/es/channel"), Some("3\n"));
        assert_eq!(fs.read_str("/etc/es/name"), Some("lobby-west\n"));
        // Common files not in the bundle survive.
        assert_eq!(fs.read_str("/etc/es/volume"), Some("1.0\n"));
        assert!(fs.contains("/bin/rebroadcast"));
    }

    #[test]
    fn path_normalization() {
        let fs = RamdiskFs::new().with_file("etc//es/channel", "7");
        assert_eq!(fs.read_str("/etc/es/channel"), Some("7"));
        assert_eq!(fs.read_str("etc/es/channel"), Some("7"));
        assert!(!fs.contains("/etc/es"));
    }

    #[test]
    fn listing_is_sorted_and_prefix_scoped() {
        let fs = skeleton();
        let etc = fs.list("/etc");
        assert_eq!(etc, vec!["/etc/es/channel", "/etc/es/volume", "/etc/hosts"]);
        assert_eq!(fs.list("/bin").len(), 1);
        assert!(fs.list("/nonexistent").is_empty());
    }

    #[test]
    fn binary_contents_roundtrip() {
        let fs = skeleton();
        assert_eq!(
            fs.read("/bin/rebroadcast"),
            Some(&[0x7f, b'E', b'L', b'F'][..])
        );
        assert_eq!(fs.read_str("/bin/rebroadcast"), Some("\u{7f}ELF"));
        let fs = RamdiskFs::new().with_file("/x", vec![0xFF, 0xFE]);
        assert_eq!(fs.read_str("/x"), None, "invalid utf-8 is not text");
    }

    #[test]
    fn empty_overlay_is_noop() {
        let mut fs = skeleton();
        let before = fs.clone();
        assert_eq!(fs.overlay(&RamdiskFs::new()), 0);
        assert_eq!(fs, before);
        assert_eq!(fs.len(), 4);
        assert!(!fs.is_empty());
    }
}
