//! The fleet executor: a persistent worker pool for parallel
//! per-speaker work inside a simulation tick.
//!
//! The paper's speakers are fully independent receivers (§2.3) — each
//! decodes the same multicast stream with no cross-speaker state — so
//! the per-speaker work of one delivery instant is embarrassingly
//! parallel. The executor exploits that while keeping the simulation
//! bit-deterministic:
//!
//! - **Only pure work is offloaded.** A job is a `FnOnce` with no
//!   access to simulator state; it computes a value (packet parse +
//!   codec decode) from `Send` inputs and returns it. All stateful
//!   mutation — stats, RNG draws, CPU billing, journal writes,
//!   scheduling — stays on the simulation thread.
//! - **Results merge in submission order.** [`run_batch`] returns
//!   outputs indexed exactly like its inputs, so the caller consumes
//!   them in speaker-index order regardless of which worker finished
//!   first. A run with 1 thread is bit-identical to a run with 8.
//! - **Stable lane assignment.** Job `i` of a batch always runs on
//!   lane `i % threads`; lane 0 is the caller itself, lanes `1..n` are
//!   the pool workers. Thread-local scratch (per-worker codec
//!   workspaces) therefore sees a stable job stream for a fixed thread
//!   count.
//!
//! The pool is process-global and lazy: the first batch spawns the
//! workers, later batches reuse them, and changing the thread count
//! (via [`set_threads`] or `ES_FLEET_THREADS`) retires the old pool
//! and builds a fresh one. Batches of fewer than two jobs — and any
//! batch when the executor is configured single-threaded — run inline
//! on the caller with no synchronization at all.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of pure work: runs on an arbitrary pool lane and returns an
/// arbitrary `Send` value for the caller to downcast.
pub type Job = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

/// One batch entry handed to a worker: the job, its index in the
/// batch, and the channel the indexed result (plus the job's execution
/// time in nanoseconds, for work/span accounting) goes back on.
type WorkItem = (usize, Job, Sender<(usize, ThreadResult, u64)>);

type ThreadResult = std::thread::Result<Box<dyn Any + Send>>;

struct Worker {
    tx: Sender<WorkItem>,
    handle: JoinHandle<()>,
}

struct PoolState {
    /// Spawned workers (lanes `1..threads`); empty when inline.
    workers: Vec<Worker>,
    /// Thread count the current pool was built for.
    built_for: usize,
}

/// `set_threads` override; 0 = unset (fall back to env / hardware).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

static POOL: OnceLock<Mutex<PoolState>> = OnceLock::new();

fn pool() -> &'static Mutex<PoolState> {
    POOL.get_or_init(|| {
        Mutex::new(PoolState {
            // es-allow(hot-path-transitive): pool bootstrap runs once per process via OnceLock
            workers: Vec::new(),
            built_for: 1,
        })
    })
}

/// The effective worker-lane count: a [`set_threads`] override wins,
/// then the `ES_FLEET_THREADS` environment variable, then the
/// machine's available parallelism.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Ok(v) = std::env::var("ES_FLEET_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the lane count for this process, overriding the environment.
/// `set_threads(0)` clears the override. The pool itself is rebuilt
/// lazily on the next batch.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Per-job execution times collected across batches while
/// [`record_timing`] is on (the fleet bench uses it; the simulation
/// itself never reads clocks).
///
/// `batches[b][i]` is the nanoseconds job `i` of batch `b` took, in
/// submission order. Because lane assignment is the fixed rule
/// `i % lanes`, the cost of running the same batches at *any* lane
/// count can be computed from one measurement: [`span_ns`] folds the
/// per-job times into each lane's busy time and takes the per-batch
/// maximum (the critical path). Collect the durations on a single
/// lane — an oversubscribed host preempts worker threads mid-job and
/// inflates their measured times, so an uncontended run is the only
/// trustworthy source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetTiming {
    /// Per-batch, per-job execution nanoseconds in submission order.
    pub batches: Vec<Vec<u64>>,
}

impl FleetTiming {
    /// The *work*: summed execution time of every job, in ns.
    pub fn work_ns(&self) -> u64 {
        self.batches.iter().flatten().sum()
    }

    /// The *span* at `lanes` lanes: per batch, the busiest lane's
    /// summed job time under the `i % lanes` assignment rule, in ns.
    /// This is what the parallel phases cost in wall time once every
    /// lane has a real core under it.
    pub fn span_ns(&self, lanes: usize) -> u64 {
        let lanes = lanes.max(1);
        // es-allow(hot-path-transitive): span accounting runs in post-run reporting, not in the lane loop
        let mut busy = vec![0u64; lanes];
        let mut span = 0u64;
        for batch in &self.batches {
            busy.iter_mut().for_each(|b| *b = 0);
            // Batches the executor would run inline stay on one lane.
            if batch.len() < 2 {
                busy[0] = batch.iter().sum();
            } else {
                for (i, &ns) in batch.iter().enumerate() {
                    busy[i % lanes] += ns;
                }
            }
            span += busy.iter().copied().max().unwrap_or(0);
        }
        span
    }
}

static TIMING_ON: AtomicBool = AtomicBool::new(false);
static TIMING: Mutex<FleetTiming> = Mutex::new(FleetTiming {
    batches: Vec::new(),
});

/// Turns per-job timing collection on or off for subsequent batches.
pub fn record_timing(on: bool) {
    TIMING_ON.store(on, Ordering::Relaxed);
}

/// Returns the timing collected since the last take, and resets it.
pub fn take_timing() -> FleetTiming {
    std::mem::take(&mut *TIMING.lock().unwrap_or_else(|e| e.into_inner()))
}

fn accumulate_timing(job_ns: Vec<u64>) {
    TIMING
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .batches
        .push(job_ns);
}

fn spawn_worker(lane: usize) -> Worker {
    let (tx, rx): (Sender<WorkItem>, Receiver<WorkItem>) = channel();
    let handle = std::thread::Builder::new()
        .name(format!("es-fleet-{lane}"))
        .spawn(move || {
            while let Ok((idx, job, out)) = rx.recv() {
                #[allow(clippy::disallowed_methods)]
                // es-allow(wall-clock): FleetTiming perf observation; never feeds sim state
                let start = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                let spent = start.elapsed().as_nanos() as u64;
                // The batch may have already unwound on the caller
                // side; a dead result channel is not our problem.
                let _ = out.send((idx, result, spent));
            }
        })
        .expect("spawn fleet worker");
    Worker { tx, handle }
}

fn ensure_pool(state: &mut PoolState, want: usize) {
    if state.built_for == want && (want <= 1 || !state.workers.is_empty()) {
        return;
    }
    // Retire the old pool: dropping the senders ends each worker's
    // recv loop; join so thread-local scratch is torn down before the
    // replacement lanes appear.
    for w in state.workers.drain(..) {
        drop(w.tx);
        let _ = w.handle.join();
    }
    if want > 1 {
        // es-allow(hot-path-transitive): worker (re)spawn happens only when the lane count changes
        state.workers = (1..want).map(spawn_worker).collect();
    }
    state.built_for = want;
}

/// Runs a batch of independent jobs and returns their results in
/// submission order.
///
/// Job `i` runs on lane `i % threads()`; lane 0 is the calling thread.
/// With one lane (or fewer than two jobs) everything runs inline. If
/// any job panics, the panic is re-raised on the caller after the
/// batch drains. This is [`run_batch_each`] collecting into a `Vec`.
pub fn run_batch(jobs: Vec<Job>) -> Vec<Box<dyn Any + Send>> {
    let mut out = Vec::with_capacity(jobs.len());
    run_batch_each(jobs, |_, r| out.push(r));
    out
}

/// Sinks contiguously completed results, in submission order, and
/// stashes the first panic payload instead of delivering past it.
fn flush_ready(
    next: &mut usize,
    staged: &mut [Option<ThreadResult>],
    panic: &mut Option<Box<dyn Any + Send>>,
    sink: &mut impl FnMut(usize, Box<dyn Any + Send>),
) {
    while *next < staged.len() {
        // es-allow(panic-path): next < staged.len() is the loop condition one line up
        let Some(r) = staged[*next].take() else { break };
        match r {
            Ok(v) => {
                if panic.is_none() {
                    sink(*next, v);
                }
            }
            Err(p) => {
                if panic.is_none() {
                    *panic = Some(p);
                }
            }
        }
        *next += 1;
    }
}

/// Runs a batch of independent jobs, streaming each result to `sink`
/// in submission order — without waiting for the whole batch.
///
/// `sink(i, result)` is called on the calling thread as soon as job
/// `i` and every job before it have completed, so the serial
/// consumption of early results overlaps the lane execution of later
/// ones (the incremental alternative to `run_batch`'s collect-then-
/// iterate barrier). Lane assignment, timing capture and panic
/// semantics match [`run_batch`]: the first panic (by submission
/// index) is re-raised on the caller after the batch drains, and no
/// results at or past the panicking index reach the sink.
///
/// The sink runs while the pool lock is held; it must not submit
/// another fleet batch.
pub fn run_batch_each(jobs: Vec<Job>, mut sink: impl FnMut(usize, Box<dyn Any + Send>)) {
    let n = threads();
    let timing = TIMING_ON.load(Ordering::Relaxed);
    if n <= 1 || jobs.len() < 2 {
        if !timing {
            for (i, j) in jobs.into_iter().enumerate() {
                sink(i, j());
            }
            return;
        }
        let mut job_ns = Vec::with_capacity(jobs.len());
        for (i, j) in jobs.into_iter().enumerate() {
            #[allow(clippy::disallowed_methods)]
            // es-allow(wall-clock): FleetTiming perf observation; never feeds sim state
            let start = Instant::now();
            let r = j();
            job_ns.push(start.elapsed().as_nanos() as u64);
            sink(i, r);
        }
        if !job_ns.is_empty() {
            accumulate_timing(job_ns);
        }
        return;
    }

    let guard = pool().lock().unwrap_or_else(|e| e.into_inner());
    let mut state = guard;
    ensure_pool(&mut state, n);

    let total = jobs.len();
    let (res_tx, res_rx) = channel::<(usize, ThreadResult, u64)>();
    // es-allow(hot-path-transitive): per-batch executor staging, amortized across the batch's jobs
    let mut local: Vec<(usize, Job)> = Vec::new();
    let mut remote = 0usize;
    for (i, job) in jobs.into_iter().enumerate() {
        let lane = i % n;
        if lane == 0 {
            local.push((i, job));
        } else {
            // es-allow(panic-path): lane is 1..n here and ensure_pool built exactly n-1 workers; job_ns/staged are sized to total
            state.workers[lane - 1]
                .tx
                .send((i, job, res_tx.clone()))
                // es-allow(panic-path): a dead worker lane is unrecoverable — failing the batch loudly is the intended behavior
                .expect("fleet worker hung up");
            remote += 1;
        }
    }
    drop(res_tx);

    // es-allow(hot-path-transitive): per-batch executor staging, amortized across the batch's jobs
    let mut job_ns = vec![0u64; total];
    // es-allow(hot-path-transitive): per-batch executor staging, amortized across the batch's jobs
    let mut staged: Vec<Option<ThreadResult>> = (0..total).map(|_| None).collect();
    let mut next = 0usize;
    let mut panic: Option<Box<dyn Any + Send>> = None;
    // Lane 0 is the caller: run its share while the workers chew,
    // draining finished worker results and the sink between jobs —
    // job 0 is local, so the sink starts flowing after the very first
    // job even though most of the batch is still in flight.
    for (i, job) in local {
        #[allow(clippy::disallowed_methods)]
        // es-allow(wall-clock): FleetTiming perf observation; never feeds sim state
        let start = Instant::now();
        staged[i] = Some(std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)));
        job_ns[i] = start.elapsed().as_nanos() as u64;
        while let Ok((j, r, spent)) = res_rx.try_recv() {
            job_ns[j] = spent;
            staged[j] = Some(r);
            remote -= 1;
        }
        flush_ready(&mut next, &mut staged, &mut panic, &mut sink);
    }
    for _ in 0..remote {
        let (j, r, spent) = res_rx.recv().expect("fleet worker died mid-batch");
        job_ns[j] = spent;
        staged[j] = Some(r);
        flush_ready(&mut next, &mut staged, &mut panic, &mut sink);
    }
    drop(state);
    if timing {
        accumulate_timing(job_ns);
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// The pool and the override are process-global, and Rust runs
    /// tests in parallel threads; serialize the tests that touch them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for n in [1usize, 2, 4, 8] {
            with_threads(n, || {
                let jobs: Vec<Job> = (0..64u64)
                    .map(|i| {
                        Box::new(move || {
                            // Stagger so fast jobs finish before slow
                            // earlier ones; order must still hold.
                            if i.is_multiple_of(3) {
                                std::thread::yield_now();
                            }
                            Box::new(i * i) as Box<dyn Any + Send>
                        }) as Job
                    })
                    .collect();
                let out = run_batch(jobs);
                let vals: Vec<u64> = out
                    .into_iter()
                    .map(|b| *b.downcast::<u64>().unwrap())
                    .collect();
                let want: Vec<u64> = (0..64).map(|i| i * i).collect();
                assert_eq!(vals, want, "threads={n}");
            });
        }
    }

    #[test]
    fn streamed_results_arrive_in_submission_order_on_caller() {
        for n in [1usize, 2, 4] {
            with_threads(n, || {
                let caller = std::thread::current().id();
                let jobs: Vec<Job> = (0..32u64)
                    .map(|i| {
                        Box::new(move || {
                            if i.is_multiple_of(3) {
                                std::thread::yield_now();
                            }
                            Box::new(i + 100) as Box<dyn Any + Send>
                        }) as Job
                    })
                    .collect();
                let mut seen: Vec<(usize, u64)> = Vec::new();
                run_batch_each(jobs, |i, r| {
                    assert_eq!(std::thread::current().id(), caller);
                    seen.push((i, *r.downcast::<u64>().unwrap()));
                });
                let want: Vec<(usize, u64)> = (0..32).map(|i| (i as usize, i + 100)).collect();
                assert_eq!(seen, want, "threads={n}");
            });
        }
    }

    #[test]
    fn streaming_sink_overlaps_lane_execution() {
        // Job 0 runs on the caller lane; job 1 on a worker that
        // refuses to finish until the sink has consumed job 0's
        // result. If the sink only ran after the whole batch (the old
        // barrier), the worker would time out and the assertion fail.
        with_threads(2, || {
            let sank_zero: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
            let observed: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
            let jobs: Vec<Job> = vec![
                Box::new(|| Box::new(0u64) as Box<dyn Any + Send>) as Job,
                Box::new(move || {
                    #[allow(clippy::disallowed_methods)]
                    // es-allow(wall-clock): test-only bounded spin; never feeds sim state
                    let start = Instant::now();
                    while sank_zero.load(Ordering::SeqCst) == 0 && start.elapsed().as_secs() < 5 {
                        std::thread::yield_now();
                    }
                    observed.store(sank_zero.load(Ordering::SeqCst), Ordering::SeqCst);
                    Box::new(1u64) as Box<dyn Any + Send>
                }) as Job,
            ];
            run_batch_each(jobs, |i, _| {
                if i == 0 {
                    sank_zero.store(1, Ordering::SeqCst);
                }
            });
            assert_eq!(
                observed.load(Ordering::SeqCst),
                1,
                "sink(0) must run while job 1 is still executing"
            );
        });
    }

    #[test]
    fn set_threads_overrides_environment() {
        with_threads(3, || assert_eq!(threads(), 3));
    }

    #[test]
    fn zero_clears_override() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(5);
        assert_eq!(threads(), 5);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn single_job_runs_inline_on_caller() {
        with_threads(8, || {
            let caller = std::thread::current().id();
            let out = run_batch(vec![Box::new(move || {
                Box::new(std::thread::current().id() == caller) as Box<dyn Any + Send>
            }) as Job]);
            assert!(*out[0].downcast_ref::<bool>().unwrap());
        });
    }

    #[test]
    fn work_actually_lands_on_multiple_threads() {
        with_threads(4, || {
            let ids: &'static Mutex<Vec<std::thread::ThreadId>> = Box::leak(Box::default());
            let jobs: Vec<Job> = (0..16)
                .map(|_| {
                    Box::new(move || {
                        ids.lock().unwrap().push(std::thread::current().id());
                        Box::new(()) as Box<dyn Any + Send>
                    }) as Job
                })
                .collect();
            run_batch(jobs);
            // es-allow(hash-iter-order): only counted, never iterated; ThreadId is not Ord
            let seen: std::collections::HashSet<_> = ids.lock().unwrap().iter().copied().collect();
            assert_eq!(seen.len(), 4, "expected all 4 lanes used");
        });
    }

    #[test]
    fn pool_persists_worker_thread_locals_across_batches() {
        thread_local! {
            static CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        with_threads(2, || {
            let run = || {
                let jobs: Vec<Job> = (0..4)
                    .map(|_| {
                        Box::new(|| {
                            let prior = CALLS.with(|c| {
                                let v = c.get();
                                c.set(v + 1);
                                v
                            });
                            Box::new(prior) as Box<dyn Any + Send>
                        }) as Job
                    })
                    .collect();
                run_batch(jobs)
                    .into_iter()
                    .map(|b| *b.downcast::<u64>().unwrap())
                    .sum::<u64>()
            };
            let first = run();
            let second = run();
            // Second batch sees the first batch's counters: the worker
            // threads (and their thread-locals) survived.
            assert!(second > first, "{second} vs {first}");
        });
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        with_threads(2, || {
            let counted: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
            let res = std::panic::catch_unwind(|| {
                let jobs: Vec<Job> = (0..4)
                    .map(|i| {
                        Box::new(move || {
                            if i == 1 {
                                panic!("boom");
                            }
                            counted.fetch_add(1, Ordering::Relaxed);
                            Box::new(()) as Box<dyn Any + Send>
                        }) as Job
                    })
                    .collect();
                run_batch(jobs);
            });
            assert!(res.is_err(), "panic must surface");
        });
    }

    #[test]
    fn timing_accounts_work_and_span() {
        with_threads(2, || {
            record_timing(true);
            take_timing(); // discard anything a prior test accumulated
            let jobs: Vec<Job> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        // Enough work to register on the monotonic clock.
                        let mut acc = 0u64;
                        for i in 0..50_000u64 {
                            acc = acc.wrapping_add(i * i);
                        }
                        Box::new(acc) as Box<dyn Any + Send>
                    }) as Job
                })
                .collect();
            run_batch(jobs);
            let t = take_timing();
            record_timing(false);
            assert_eq!(t.batches.len(), 1);
            assert_eq!(t.batches[0].len(), 4, "one duration per job");
            assert!(t.batches[0].iter().all(|&ns| ns > 0));
            // One lane holds everything; more lanes can only shrink
            // the span, never below the largest single job.
            assert_eq!(t.span_ns(1), t.work_ns());
            assert!(t.span_ns(2) <= t.work_ns());
            assert!(t.span_ns(2) >= *t.batches[0].iter().max().unwrap());
            assert_eq!(take_timing(), FleetTiming::default(), "take resets");
        });
    }

    #[test]
    fn span_folds_jobs_by_lane_assignment() {
        let t = FleetTiming {
            batches: vec![vec![10, 20, 30, 40], vec![5]],
        };
        assert_eq!(t.work_ns(), 105);
        // Two lanes: jobs 0,2 vs 1,3 -> max(40, 60) = 60; the
        // single-job batch runs inline on one lane.
        assert_eq!(t.span_ns(2), 60 + 5);
        // Four lanes: busiest is job 3 alone.
        assert_eq!(t.span_ns(4), 40 + 5);
        assert_eq!(t.span_ns(1), 105);
    }

    #[test]
    fn timing_off_accumulates_nothing() {
        with_threads(2, || {
            record_timing(false);
            take_timing();
            let jobs: Vec<Job> = (0..4)
                .map(|_| Box::new(|| Box::new(()) as Box<dyn Any + Send>) as Job)
                .collect();
            run_batch(jobs);
            assert!(take_timing().batches.is_empty());
        });
    }

    #[test]
    fn env_parsing_ignores_garbage() {
        // Can't portably mutate the environment mid-test; exercise the
        // parse path shape instead.
        assert!("not-a-number".trim().parse::<usize>().is_err());
        assert_eq!("  4 ".trim().parse::<usize>().ok(), Some(4));
    }
}
