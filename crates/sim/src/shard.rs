//! Engine sharding: configuration, the deterministic cross-shard
//! channel, and per-segment accounting.
//!
//! The sharded [`Sim`](crate::Sim) partitions its event queue into N
//! physical shards, keyed by each event's logical *segment* (a fixed
//! topology label, e.g. "the speakers behind relay 2"). Segments map
//! onto shards by `segment % num_shards`, so the same scenario can run
//! at any shard count. Determinism is by construction: a single global
//! sequence counter totally orders simultaneous events across shards,
//! and the engine always executes the globally smallest `(time, seq)`
//! key — `ES_SIM_SHARDS=1` and `=4` therefore produce bit-identical
//! telemetry fingerprints.
//!
//! Cross-shard traffic must flow through [`ShardRouter`], the
//! deterministic channel facade. Scheduling into a foreign segment
//! with `Sim::schedule_at_segment` directly is flagged by the
//! `shard-channel` es-analyze rule outside this crate; the router is
//! the sanctioned API, and it maintains the conservative-lookahead
//! horizon the engine's burst fast-path relies on.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::engine::{EventId, Sim};
use crate::time::SimTime;

/// `set_shards` override; 0 = unset (fall back to env / default 1).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The effective shard count for newly created simulators: a
/// [`set_shards`] override wins, then the `ES_SIM_SHARDS` environment
/// variable, then 1 (the classic single-queue engine).
pub fn shards() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Ok(v) = std::env::var("ES_SIM_SHARDS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    1
}

/// Pins the shard count for simulators created after this call,
/// overriding the environment. `set_shards(0)` clears the override.
/// Sharding only changes how the event queue is partitioned — every
/// fingerprint and metric is identical at any shard count.
pub fn set_shards(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Per-segment busy time collected while
/// [`Sim::enable_shard_timing`](crate::Sim::enable_shard_timing) is on
/// (the segments bench uses it; the simulation itself never reads
/// clocks).
///
/// Keyed by *logical segment*, not physical shard, so one single-shard
/// measurement can project the cost of running the same scenario at
/// any shard count: [`span_ns`](Self::span_ns) folds segments onto
/// `n` shards with the engine's own `segment % n` rule and returns the
/// busiest shard's total (the critical path). Collect on a one-shard
/// run — an oversubscribed host preempts nothing there, so the
/// per-segment times are the only trustworthy source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardTiming {
    /// Busy nanoseconds per logical segment.
    pub busy_ns: BTreeMap<u32, u64>,
}

impl ShardTiming {
    /// Adds `ns` of handler execution to `segment`'s busy time.
    pub fn record(&mut self, segment: u32, ns: u64) {
        *self.busy_ns.entry(segment).or_insert(0) += ns;
    }

    /// Total busy time across all segments (the serial work).
    pub fn work_ns(&self) -> u64 {
        self.busy_ns.values().sum()
    }

    /// The critical-path busy time when segments are folded onto
    /// `shards` shards by the engine's `segment % shards` rule: the
    /// busiest shard's total. `work_ns == span_ns(1)`.
    pub fn span_ns(&self, shards: usize) -> u64 {
        let shards = shards.max(1);
        let mut lanes = vec![0u64; shards];
        for (&seg, &ns) in &self.busy_ns {
            lanes[seg as usize % shards] += ns;
        }
        lanes.into_iter().max().unwrap_or(0)
    }
}

/// The deterministic cross-shard channel.
///
/// A router is a cheap cloneable handle; components that deliver work
/// into other segments (the LAN fabric, segment relays) hold one and
/// call [`post`](Self::post) instead of scheduling directly. Posts
/// into the executing event's own segment are plain local schedules;
/// posts into a foreign segment are counted and handed to the engine's
/// cross-shard path, which lowers the conservative-lookahead horizon
/// so the receiving shard never runs past an undelivered message.
///
/// Delivery order is the engine's global `(time, seq)` order — the
/// same submission-order-merge discipline the fleet executor uses —
/// so the observable execution sequence is independent of the shard
/// count.
#[derive(Clone, Default)]
pub struct ShardRouter {
    cross_posts: Rc<Cell<u64>>,
}

impl ShardRouter {
    /// Creates a router with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `f` at `at` in `segment`, which may differ from the
    /// executing event's segment. Returns the event's cancel handle.
    pub fn post(
        &self,
        sim: &mut Sim,
        segment: u32,
        at: SimTime,
        f: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        if segment != sim.current_segment() {
            self.cross_posts.set(self.cross_posts.get() + 1);
        }
        sim.schedule_at_segment(segment, at, f)
    }

    /// Number of posts that crossed a segment boundary. Segments are
    /// topology, not partitioning, so this count is identical at any
    /// shard count.
    pub fn cross_posts(&self) -> u64 {
        self.cross_posts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn shard_timing_folds_segments_onto_shards() {
        let mut t = ShardTiming::default();
        t.record(0, 100);
        t.record(1, 50);
        t.record(2, 30);
        t.record(5, 20); // 5 % 4 == 1
        assert_eq!(t.work_ns(), 200);
        assert_eq!(t.span_ns(1), 200);
        // 4 shards: lane0=100, lane1=50+20, lane2=30.
        assert_eq!(t.span_ns(4), 100);
        // 2 shards: lane0=100+30, lane1=50+20.
        assert_eq!(t.span_ns(2), 130);
        assert_eq!(ShardTiming::default().span_ns(3), 0);
    }

    #[test]
    fn router_counts_only_cross_segment_posts() {
        let mut sim = Sim::with_shards(1, 4);
        let router = ShardRouter::new();
        let r2 = router.clone();
        router.post(&mut sim, 2, SimTime::from_millis(1), move |sim| {
            // Executing in segment 2: a same-segment post is local.
            r2.post(sim, 2, SimTime::from_millis(2), |_| {});
            r2.post(sim, 0, SimTime::from_millis(2), |_| {});
        });
        sim.run();
        // The t=0 post crossed (current segment 0 -> 2), the inner
        // same-segment post did not, the inner post back to 0 did.
        assert_eq!(router.cross_posts(), 2);
    }

    #[test]
    fn set_shards_overrides_new_sims() {
        set_shards(3);
        let mut sim = Sim::new(1);
        assert_eq!(sim.num_shards(), 3);
        set_shards(0);
        // Sharding is invisible to event semantics: a quick sanity run.
        let fired = crate::shared(0u32);
        let f = fired.clone();
        sim.schedule_in(SimDuration::from_millis(1), move |_| *f.borrow_mut() += 1);
        sim.run();
        assert_eq!(*fired.borrow(), 1);
    }
}
