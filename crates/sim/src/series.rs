//! Time series collection and summary statistics.
//!
//! Every experiment harness reports one or more series of
//! `(virtual time, value)` samples — CPU utilization per second,
//! context switches per vmstat interval, playback offsets. This module
//! holds the shared representation plus the summary statistics the
//! paper quotes (means over an observation window, maxima).

use crate::time::{SimDuration, SimTime};

/// A named series of timestamped samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples should be pushed in time order; order
    /// is preserved as given.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// The sample values without timestamps.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|&(_, v)| v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.values().sum::<f64>() / self.samples.len() as f64)
    }

    /// Maximum value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Minimum value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var =
            self.values().map(|v| (v - mean).powi(2)).sum::<f64>() / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// The `q`-th quantile (0.0..=1.0) by nearest-rank on a sorted copy;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut vs: Vec<f64> = self.values().collect();
        vs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((vs.len() - 1) as f64 * q).round() as usize;
        Some(vs[idx])
    }

    /// Restricts to samples with `start <= t < end` (a measurement
    /// window, e.g. "after warm-up").
    pub fn window(&self, start: SimTime, end: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            samples: self
                .samples
                .iter()
                .filter(|&&(t, _)| t >= start && t < end)
                .copied()
                .collect(),
        }
    }

    /// Renders the series as gnuplot-style `time value` rows, one per
    /// line, with seconds on the time axis — the same form the paper's
    /// figures plot.
    pub fn to_rows(&self) -> String {
        let mut out = String::new();
        for &(t, v) in &self.samples {
            out.push_str(&format!("{:.3} {:.3}\n", t.as_secs_f64(), v));
        }
        out
    }
}

/// Accumulates a quantity into fixed-width time buckets, producing one
/// sample per bucket — the shape of `vmstat`-style periodic sampling.
///
/// Used for "context switches per one-second interval" (Figure 5) and
/// "CPU usage per second" (Figure 4).
#[derive(Debug, Clone)]
pub struct BucketAccumulator {
    interval: SimDuration,
    current_bucket: u64,
    current_sum: f64,
    series: TimeSeries,
}

impl BucketAccumulator {
    /// Creates an accumulator with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(name: impl Into<String>, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "bucket interval must be non-zero");
        BucketAccumulator {
            interval,
            current_bucket: 0,
            current_sum: 0.0,
            series: TimeSeries::new(name),
        }
    }

    fn bucket_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.interval.as_nanos()
    }

    /// Adds `amount` to the bucket containing `at`. Times must be
    /// non-decreasing across calls; earlier buckets are flushed as the
    /// clock passes them (empty intermediate buckets emit zero).
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let b = self.bucket_of(at);
        debug_assert!(b >= self.current_bucket, "samples must be time-ordered");
        while self.current_bucket < b {
            self.flush_current();
        }
        self.current_sum += amount;
    }

    fn flush_current(&mut self) {
        let stamp = SimTime::from_nanos((self.current_bucket + 1) * self.interval.as_nanos());
        self.series.push(stamp, self.current_sum);
        self.current_sum = 0.0;
        self.current_bucket += 1;
    }

    /// Flushes all buckets up to (and including) the one containing
    /// `until`, then returns the finished series.
    pub fn finish(mut self, until: SimTime) -> TimeSeries {
        let last = self.bucket_of(until);
        while self.current_bucket < last {
            self.flush_current();
        }
        self.series
    }

    /// The series of already-completed buckets (not including the one
    /// in progress).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(pairs: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("t");
        for &(ms, v) in pairs {
            s.push(SimTime::from_millis(ms), v);
        }
        s
    }

    #[test]
    fn empty_series_stats_are_none() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn basic_stats() {
        let s = ts(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.min(), Some(1.0));
        let sd = s.std_dev().unwrap();
        assert!((sd - 1.118).abs() < 0.001, "sd {sd}");
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
    }

    #[test]
    fn window_filters_half_open() {
        let s = ts(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        let w = s.window(SimTime::from_millis(10), SimTime::from_millis(30));
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(2.5));
    }

    #[test]
    fn rows_render_time_in_seconds() {
        let s = ts(&[(1500, 2.0)]);
        assert_eq!(s.to_rows(), "1.500 2.000\n");
    }

    #[test]
    fn buckets_accumulate_and_flush() {
        let mut acc = BucketAccumulator::new("cs", SimDuration::from_secs(1));
        acc.add(SimTime::from_millis(100), 1.0);
        acc.add(SimTime::from_millis(900), 1.0);
        acc.add(SimTime::from_millis(1100), 1.0);
        // Skips a bucket entirely: bucket for t in [2s,3s) stays empty.
        acc.add(SimTime::from_millis(3500), 5.0);
        let s = acc.finish(SimTime::from_secs(4));
        let vals: Vec<f64> = s.values().collect();
        assert_eq!(vals, vec![2.0, 1.0, 0.0, 5.0]);
        // Bucket stamps are the bucket end times.
        assert_eq!(s.samples()[0].0, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bucket_interval_panics() {
        let _ = BucketAccumulator::new("x", SimDuration::ZERO);
    }
}
