//! Virtual time for the discrete-event simulator.
//!
//! All simulated subsystems (the network, the audio hardware, the rate
//! limiter, the speaker playback deadlines) schedule against a single
//! nanosecond-resolution virtual clock. Nothing in a simulated code path
//! may read the wall clock; this is what makes a 60-second experiment
//! run in milliseconds and produce bit-identical results for a fixed
//! RNG seed.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is ordered and supports arithmetic with [`SimDuration`].
/// The simulation epoch (`SimTime::ZERO`) is the moment the simulator
/// was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for run-until bounds.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The duration needed to transfer `bytes` at `bits_per_sec`,
    /// rounded up to the next nanosecond.
    ///
    /// This is the serialization-delay helper used by both the network
    /// model and the audio rate limiter. Returns zero for a zero rate
    /// (treated as "infinitely fast").
    pub fn for_bytes_at_rate(bytes: u64, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration(0);
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!((t - SimDuration::from_millis(15)), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn serialization_delay() {
        // 1500 bytes at 100 Mbps = 120 microseconds.
        let d = SimDuration::for_bytes_at_rate(1500, 100_000_000);
        assert_eq!(d.as_micros(), 120);
        // Zero rate means "no delay" by convention.
        assert_eq!(SimDuration::for_bytes_at_rate(1500, 0), SimDuration::ZERO);
        // Rounds up: 1 byte at 1 Gbps is 8 ns exactly.
        assert_eq!(
            SimDuration::for_bytes_at_rate(1, 1_000_000_000).as_nanos(),
            8
        );
    }

    #[test]
    fn secs_f64_conversion() {
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(15)), "15.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(20)), "20.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }
}
