//! # es-sim — discrete-event simulation substrate
//!
//! The Ethernet Speaker reproduction runs its experiments against a
//! deterministic discrete-event simulator rather than a campus LAN and
//! a rack of Geode thin clients. This crate is the foundation every
//! other simulated subsystem builds on:
//!
//! - [`SimTime`]/[`SimDuration`]: nanosecond virtual time.
//! - [`Sim`]: the event engine (closure events, cancellable, seeded RNG).
//! - [`RepeatingTimer`]: cancellable periodic callbacks.
//! - [`TimeSeries`]/[`BucketAccumulator`]: experiment output series and
//!   `vmstat`-style interval sampling.
//! - [`SimCpu`]: a cycle-budget CPU model (Figure 4, §3.4 experiments).
//! - [`sched`]: a kernel-scheduler model with context-switch accounting
//!   (Figure 5).
//!
//! Nothing here knows about audio or networks; see `es-net`, `es-vad`
//! and the crates above them.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod cpu;
pub mod engine;
pub mod fleet;
pub mod random;
pub mod sched;
pub mod series;
pub mod shard;
pub mod time;

pub use cpu::{CostModel, SimCpu};
pub use engine::{shared, EventId, RepeatingTimer, Shared, Sim};
pub use series::{BucketAccumulator, TimeSeries};
pub use shard::{ShardRouter, ShardTiming};
pub use time::{SimDuration, SimTime};
