//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a virtual clock and a priority queue of events. An
//! event is a boxed `FnOnce(&mut Sim)`; components hold their state in
//! `Rc<RefCell<...>>` cells, capture clones in the closures they
//! schedule, and re-schedule themselves from inside the handler. The
//! engine is single-threaded and deterministic: events at the same
//! instant fire in scheduling order (FIFO ties), and all randomness
//! flows from one seeded RNG.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Queued {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulator: virtual clock, event queue, seeded RNG.
///
/// # Examples
///
/// ```
/// use es_sim::{Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(42);
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// sim.schedule_in(SimDuration::from_millis(10), move |_sim| f.set(true));
/// sim.run();
/// assert!(fired.get());
/// assert_eq!(sim.now(), SimTime::from_millis(10));
/// ```
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Queued>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    rng: StdRng,
    seed: u64,
    processed: u64,
}

impl Sim {
    /// Creates a simulator at time zero with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            seed,
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seed this simulator was created with. Components that keep
    /// their own derived RNG streams (e.g. per-node network
    /// impairments) mix this with a stable component index so their
    /// draws are independent of global event interleaving.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seeded RNG; all simulated randomness must come from here.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including cancelled
    /// tombstones not yet popped).
    pub fn events_pending(&self) -> usize {
        self.queue.len().saturating_sub(self.cancelled.len())
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now" (the event fires
    /// before the clock advances further), which keeps handlers that
    /// compute deadlines from stale state safe.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at(self.now.saturating_add(delay), f)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.processed += 1;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Runs events until the queue is empty. Returns the number of
    /// events processed by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Runs events with timestamps `<= t`, then advances the clock to
    /// exactly `t` (even if the queue empties earlier). Returns the
    /// number of events processed by this call.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let before = self.processed;
        loop {
            let next_at = loop {
                match self.queue.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.queue.pop().expect("peeked");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.at),
                    None => break None,
                }
            };
            match next_at {
                Some(at) if at <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        if t > self.now && t != SimTime::MAX {
            self.now = t;
        }
        self.processed - before
    }

    /// Runs for a span of virtual time from "now".
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let t = self.now.saturating_add(d);
        self.run_until(t)
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.events_pending())
            .field("processed", &self.processed)
            .finish()
    }
}

/// A shared mutable cell for simulation components.
///
/// Components live in `Rc<RefCell<...>>` so that event closures can
/// capture cheap clones. This alias plus [`shared`] keeps signatures
/// readable across the workspace.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a value in a [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

/// A cancellable repeating timer.
///
/// Fires `f(&mut Sim)` every `period`, starting one period from the
/// moment [`RepeatingTimer::start`] is called (or at a given phase).
/// Dropping the handle does not stop the timer; call
/// [`RepeatingTimer::stop`].
pub struct RepeatingTimer {
    inner: Shared<TimerInner>,
}

struct TimerInner {
    period: SimDuration,
    active: bool,
    fires: u64,
}

impl RepeatingTimer {
    /// Creates and starts a timer that first fires after `period`.
    pub fn start(sim: &mut Sim, period: SimDuration, f: impl FnMut(&mut Sim) + 'static) -> Self {
        Self::start_with_phase(sim, period, period, f)
    }

    /// Creates and starts a timer whose first firing is after `phase`
    /// and which then repeats every `period`.
    pub fn start_with_phase(
        sim: &mut Sim,
        period: SimDuration,
        phase: SimDuration,
        f: impl FnMut(&mut Sim) + 'static,
    ) -> Self {
        assert!(!period.is_zero(), "a zero-period timer would livelock");
        let inner = shared(TimerInner {
            period,
            active: true,
            fires: 0,
        });
        let f = shared(f);
        schedule_tick(sim, phase, inner.clone(), f);
        RepeatingTimer { inner }
    }

    /// Stops the timer; the pending tick becomes a no-op.
    pub fn stop(&self) {
        self.inner.borrow_mut().active = false;
    }

    /// True if the timer is still running.
    pub fn is_active(&self) -> bool {
        self.inner.borrow().active
    }

    /// Number of times the timer has fired.
    pub fn fire_count(&self) -> u64 {
        self.inner.borrow().fires
    }
}

fn schedule_tick(
    sim: &mut Sim,
    delay: SimDuration,
    inner: Shared<TimerInner>,
    f: Shared<impl FnMut(&mut Sim) + 'static>,
) {
    sim.schedule_in(delay, move |sim| {
        let period = {
            let mut t = inner.borrow_mut();
            if !t.active {
                return;
            }
            t.fires += 1;
            t.period
        };
        (f.borrow_mut())(sim);
        // The callback may have stopped the timer; re-check before
        // re-arming.
        if inner.borrow().active {
            schedule_tick(sim, period, inner, f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(1);
        let order = shared(Vec::new());
        for (label, ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let order = order.clone();
            sim.schedule_in(SimDuration::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_ties_fire_fifo() {
        let mut sim = Sim::new(1);
        let order = shared(Vec::new());
        for label in 0..5 {
            let order = order.clone();
            sim.schedule_at(SimTime::from_millis(5), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = sim.schedule_in(SimDuration::from_millis(1), move |_| f.set(true));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel must report false");
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim = Sim::new(1);
        let fired_at = Rc::new(Cell::new(SimTime::ZERO));
        let fa = fired_at.clone();
        // From a handler at t=10ms, schedule "at 1ms": must clamp to now.
        sim.schedule_in(SimDuration::from_millis(10), move |sim| {
            let fa = fa.clone();
            sim.schedule_at(SimTime::from_millis(1), move |sim| {
                fa.set(sim.now());
            });
        });
        sim.run();
        assert_eq!(fired_at.get(), SimTime::from_millis(10));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Sim::new(1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // And does not run later events.
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        sim.schedule_in(SimDuration::from_secs(10), move |_| f.set(true));
        sim.run_until(SimTime::from_secs(7));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_secs(7));
        sim.run_for(SimDuration::from_secs(10));
        assert!(fired.get());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Sim::new(1);
        let count = Rc::new(Cell::new(0u32));
        fn chain(sim: &mut Sim, count: Rc<Cell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                count.set(count.get() + 1);
                chain(sim, count.clone(), left - 1);
            });
        }
        chain(&mut sim, count.clone(), 100);
        sim.run();
        assert_eq!(count.get(), 100);
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn repeating_timer_fires_on_period_and_stops() {
        let mut sim = Sim::new(1);
        let ticks = shared(Vec::new());
        let t = ticks.clone();
        let timer = RepeatingTimer::start(&mut sim, SimDuration::from_millis(100), move |sim| {
            t.borrow_mut().push(sim.now().as_millis());
        });
        sim.run_until(SimTime::from_millis(450));
        assert_eq!(*ticks.borrow(), vec![100, 200, 300, 400]);
        assert_eq!(timer.fire_count(), 4);
        timer.stop();
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(timer.fire_count(), 4, "no ticks after stop");
    }

    #[test]
    fn timer_phase_offsets_first_fire() {
        let mut sim = Sim::new(1);
        let ticks = shared(Vec::new());
        let t = ticks.clone();
        let _timer = RepeatingTimer::start_with_phase(
            &mut sim,
            SimDuration::from_millis(100),
            SimDuration::from_millis(30),
            move |sim| t.borrow_mut().push(sim.now().as_millis()),
        );
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(*ticks.borrow(), vec![30, 130, 230]);
    }

    #[test]
    fn determinism_same_seed_same_rng_stream() {
        use rand::Rng;
        let mut a = Sim::new(7);
        let mut b = Sim::new(7);
        let xs: Vec<u32> = (0..16).map(|_| a.rng().gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.rng().gen()).collect();
        assert_eq!(xs, ys);
    }
}
