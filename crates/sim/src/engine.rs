//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a virtual clock and a priority queue of events. An
//! event is a boxed `FnOnce(&mut Sim)`; components hold their state in
//! `Rc<RefCell<...>>` cells, capture clones in the closures they
//! schedule, and re-schedule themselves from inside the handler. The
//! engine is single-threaded and deterministic: events at the same
//! instant fire in scheduling order (FIFO ties), and all randomness
//! flows from one seeded RNG.
//!
//! # Sharding
//!
//! The queue is physically partitioned into N shards (see
//! [`crate::shard`]). Every event carries a logical *segment* label —
//! inherited from the event that scheduled it, or set explicitly via
//! [`Sim::schedule_at_segment`] — and lives in shard
//! `segment % num_shards`. Execution order is defined globally: the
//! engine always pops the smallest `(time, seq)` key across all
//! shards, where `seq` is one process-wide counter. Because neither
//! the labels nor the counter depend on the shard count, the execution
//! order — and therefore every telemetry fingerprint — is bit-identical
//! for any `ES_SIM_SHARDS` value.
//!
//! Popping scans all shard heads only when it must. The engine runs a
//! conservative-lookahead fast path: after one full scan it caches the
//! winning shard and the next-best key across the *other* shards (the
//! horizon), then keeps popping from the winner while its head stays
//! below the horizon. A cross-shard post into another shard lowers the
//! horizon, so the winner never runs past an undelivered message.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::shard::ShardTiming;
use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Queued {
    at: SimTime,
    seq: u64,
    segment: u32,
    f: EventFn,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The conservative-lookahead cache: the shard the engine is currently
/// draining and the smallest `(time, seq)` key pending in any *other*
/// shard (`None` = the other shards are empty, the horizon is open).
#[derive(Clone, Copy)]
struct Burst {
    shard: usize,
    horizon: Option<(SimTime, u64)>,
}

/// The discrete-event simulator: virtual clock, event queue, seeded RNG.
///
/// # Examples
///
/// ```
/// use es_sim::{Sim, SimDuration, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(42);
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// sim.schedule_in(SimDuration::from_millis(10), move |_sim| f.set(true));
/// sim.run();
/// assert!(fired.get());
/// assert_eq!(sim.now(), SimTime::from_millis(10));
/// ```
pub struct Sim {
    now: SimTime,
    /// Per-shard event heaps; `segment % shards.len()` owns an event.
    shards: Vec<BinaryHeap<Queued>>,
    cancelled: BTreeSet<u64>,
    /// One global counter: total order for same-instant events across
    /// every shard, independent of the shard count.
    next_seq: u64,
    rng: StdRng,
    seed: u64,
    processed: u64,
    /// Segment of the event currently executing (0 outside handlers);
    /// plain `schedule_at` inherits it.
    current_segment: u32,
    burst: Option<Burst>,
    /// Events executed per physical shard (engine diagnostics only —
    /// shard-count-dependent, so never exported to telemetry).
    shard_events: Vec<u64>,
    /// Full cross-shard head scans (lookahead cache misses).
    merge_scans: u64,
    /// Per-segment busy time, collected only when enabled (bench use).
    timing: Option<ShardTiming>,
}

impl Sim {
    /// Creates a simulator at time zero with a deterministic RNG seed
    /// and the process-default shard count (see
    /// [`crate::shard::shards`]).
    pub fn new(seed: u64) -> Self {
        Self::with_shards(seed, crate::shard::shards())
    }

    /// Creates a simulator with an explicit shard count (≥ 1).
    pub fn with_shards(seed: u64, shards: usize) -> Self {
        let shards = shards.max(1);
        Sim {
            now: SimTime::ZERO,
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            seed,
            processed: 0,
            current_segment: 0,
            burst: None,
            shard_events: vec![0; shards],
            merge_scans: 0,
            timing: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seed this simulator was created with. Components that keep
    /// their own derived RNG streams (e.g. per-node network
    /// impairments) mix this with a stable component index so their
    /// draws are independent of global event interleaving.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seeded RNG; all simulated randomness must come from here.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including cancelled
    /// tombstones not yet popped).
    pub fn events_pending(&self) -> usize {
        let queued: usize = self.shards.iter().map(|q| q.len()).sum();
        queued.saturating_sub(self.cancelled.len())
    }

    /// The number of physical shards the event queue is split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The segment of the currently executing event (0 outside event
    /// handlers). Plain [`Sim::schedule_at`] inherits this label.
    pub fn current_segment(&self) -> u32 {
        self.current_segment
    }

    /// The physical shard a logical segment maps onto.
    pub fn shard_of(&self, segment: u32) -> usize {
        segment as usize % self.shards.len()
    }

    /// Events executed per physical shard. Diagnostics only: the split
    /// depends on the shard count, so these numbers must never feed a
    /// telemetry fingerprint.
    pub fn events_processed_by_shard(&self) -> &[u64] {
        &self.shard_events
    }

    /// Full cross-shard head scans performed (conservative-lookahead
    /// cache misses); `events_processed() - merge_scans()` events were
    /// popped on the fast path. Diagnostics only, like
    /// [`Sim::events_processed_by_shard`].
    pub fn merge_scans(&self) -> u64 {
        self.merge_scans
    }

    /// Starts collecting per-segment busy time into a [`ShardTiming`].
    /// Bench-only: handler execution is timed with the host clock, so
    /// the collected numbers are not deterministic (the event order
    /// still is).
    pub fn enable_shard_timing(&mut self) {
        self.timing = Some(ShardTiming::default());
    }

    /// Takes the busy-time accounting collected since
    /// [`Sim::enable_shard_timing`] and keeps collecting.
    pub fn take_shard_timing(&mut self) -> ShardTiming {
        self.timing
            .replace(ShardTiming::default())
            .unwrap_or_default()
    }

    /// Schedules `f` to run at absolute time `at`, in the segment of
    /// the currently executing event.
    ///
    /// Scheduling in the past is clamped to "now" (the event fires
    /// before the clock advances further), which keeps handlers that
    /// compute deadlines from stale state safe.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at_segment(self.current_segment, at, f)
    }

    /// Schedules `f` at absolute time `at` in an explicit segment —
    /// the cross-shard primitive. Outside `es-sim`, route through
    /// [`crate::shard::ShardRouter`] (the `shard-channel` lint flags
    /// direct calls): the router is the deterministic channel API and
    /// keeps cross-shard accounting in one place.
    pub fn schedule_at_segment(
        &mut self,
        segment: u32,
        at: SimTime,
        f: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = segment as usize % self.shards.len();
        self.shards[shard].push(Queued {
            at,
            seq,
            segment,
            f: Box::new(f),
        });
        // A post into another shard lowers the lookahead horizon: the
        // burst shard must not run past this message.
        if let Some(b) = &mut self.burst {
            if b.shard != shard {
                let key = (at, seq);
                b.horizon = Some(match b.horizon {
                    Some(h) if h < key => h,
                    _ => key,
                });
            }
        }
        EventId(seq)
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at(self.now.saturating_add(delay), f)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Pops cancelled tombstones off the head of one shard.
    fn clear_tombstones(&mut self, shard: usize) {
        loop {
            let seq = match self.shards[shard].peek() {
                Some(h) if self.cancelled.contains(&h.seq) => h.seq,
                _ => return,
            };
            self.cancelled.remove(&seq);
            self.shards[shard].pop();
        }
    }

    /// The shard owning the globally next event, or `None` when every
    /// shard is idle. Fast path: while the cached burst shard's head
    /// stays below the cross-shard horizon, no other shard needs
    /// looking at. Miss: one full scan re-elects the winner and caches
    /// the runner-up key as the new horizon.
    fn choose_shard(&mut self) -> Option<usize> {
        if self.shards.len() == 1 {
            self.clear_tombstones(0);
            return (!self.shards[0].is_empty()).then_some(0);
        }
        if let Some(b) = self.burst {
            self.clear_tombstones(b.shard);
            if let Some(head) = self.shards[b.shard].peek() {
                if b.horizon.is_none_or(|h| (head.at, head.seq) < h) {
                    return Some(b.shard);
                }
            }
            self.burst = None;
        }
        self.merge_scans += 1;
        let mut best: Option<(SimTime, u64, usize)> = None;
        let mut second: Option<(SimTime, u64)> = None;
        for i in 0..self.shards.len() {
            self.clear_tombstones(i);
            let Some(h) = self.shards[i].peek() else {
                continue;
            };
            let key = (h.at, h.seq);
            match best {
                Some((ba, bs, _)) if key < (ba, bs) => {
                    second = Some((ba, bs));
                    best = Some((key.0, key.1, i));
                }
                Some(_) => {
                    if second.is_none_or(|s| key < s) {
                        second = Some(key);
                    }
                }
                None => best = Some((key.0, key.1, i)),
            }
        }
        let (_, _, i) = best?;
        self.burst = Some(Burst {
            shard: i,
            horizon: second,
        });
        Some(i)
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(idx) = self.choose_shard() else {
            return false;
        };
        let ev = self.shards[idx]
            .pop()
            .expect("chosen shard has a live head");
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.current_segment = ev.segment;
        self.processed += 1;
        self.shard_events[idx] += 1;
        let segment = ev.segment;
        if self.timing.is_some() {
            #[allow(clippy::disallowed_methods)]
            // es-allow(wall-clock): bench-only per-segment busy-time accounting, off unless enable_shard_timing() was called; the measured durations never influence event order
            let start = Instant::now();
            (ev.f)(self);
            let ns = start.elapsed().as_nanos() as u64;
            if let Some(t) = &mut self.timing {
                t.record(segment, ns);
            }
        } else {
            (ev.f)(self);
        }
        true
    }

    /// Runs events until the queue is empty. Returns the number of
    /// events processed by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// The timestamp of the globally next live event, if any.
    fn next_event_at(&mut self) -> Option<SimTime> {
        let idx = self.choose_shard()?;
        self.shards[idx].peek().map(|h| h.at)
    }

    /// Runs events with timestamps `<= t`, then advances the clock to
    /// exactly `t` (even if the queue empties earlier). Returns the
    /// number of events processed by this call.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let before = self.processed;
        while let Some(at) = self.next_event_at() {
            if at > t {
                break;
            }
            self.step();
        }
        if t > self.now && t != SimTime::MAX {
            self.now = t;
        }
        self.processed - before
    }

    /// Runs for a span of virtual time from "now".
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let t = self.now.saturating_add(d);
        self.run_until(t)
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("shards", &self.shards.len())
            .field("pending", &self.events_pending())
            .field("processed", &self.processed)
            .finish()
    }
}

/// A shared mutable cell for simulation components.
///
/// Components live in `Rc<RefCell<...>>` so that event closures can
/// capture cheap clones. This alias plus [`shared`] keeps signatures
/// readable across the workspace.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a value in a [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

/// A cancellable repeating timer.
///
/// Fires `f(&mut Sim)` every `period`, starting one period from the
/// moment [`RepeatingTimer::start`] is called (or at a given phase).
/// Dropping the handle does not stop the timer; call
/// [`RepeatingTimer::stop`].
pub struct RepeatingTimer {
    inner: Shared<TimerInner>,
}

struct TimerInner {
    period: SimDuration,
    active: bool,
    fires: u64,
}

impl RepeatingTimer {
    /// Creates and starts a timer that first fires after `period`.
    pub fn start(sim: &mut Sim, period: SimDuration, f: impl FnMut(&mut Sim) + 'static) -> Self {
        Self::start_with_phase(sim, period, period, f)
    }

    /// Creates and starts a timer whose first firing is after `phase`
    /// and which then repeats every `period`.
    pub fn start_with_phase(
        sim: &mut Sim,
        period: SimDuration,
        phase: SimDuration,
        f: impl FnMut(&mut Sim) + 'static,
    ) -> Self {
        assert!(!period.is_zero(), "a zero-period timer would livelock");
        let inner = shared(TimerInner {
            period,
            active: true,
            fires: 0,
        });
        let f = shared(f);
        schedule_tick(sim, phase, inner.clone(), f);
        RepeatingTimer { inner }
    }

    /// Stops the timer; the pending tick becomes a no-op.
    pub fn stop(&self) {
        self.inner.borrow_mut().active = false;
    }

    /// True if the timer is still running.
    pub fn is_active(&self) -> bool {
        self.inner.borrow().active
    }

    /// Number of times the timer has fired.
    pub fn fire_count(&self) -> u64 {
        self.inner.borrow().fires
    }
}

fn schedule_tick(
    sim: &mut Sim,
    delay: SimDuration,
    inner: Shared<TimerInner>,
    f: Shared<impl FnMut(&mut Sim) + 'static>,
) {
    sim.schedule_in(delay, move |sim| {
        let period = {
            let mut t = inner.borrow_mut();
            if !t.active {
                return;
            }
            t.fires += 1;
            t.period
        };
        (f.borrow_mut())(sim);
        // The callback may have stopped the timer; re-check before
        // re-arming.
        if inner.borrow().active {
            schedule_tick(sim, period, inner, f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(1);
        let order = shared(Vec::new());
        for (label, ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let order = order.clone();
            sim.schedule_in(SimDuration::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_ties_fire_fifo() {
        let mut sim = Sim::new(1);
        let order = shared(Vec::new());
        for label in 0..5 {
            let order = order.clone();
            sim.schedule_at(SimTime::from_millis(5), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_instant_ties_fire_fifo_across_segments() {
        // The global seq counter orders same-instant events across
        // shards exactly as it would in one queue.
        for shards in [1, 2, 4, 5] {
            let mut sim = Sim::with_shards(1, shards);
            let order = shared(Vec::new());
            for label in 0..10u32 {
                let order = order.clone();
                sim.schedule_at_segment(label % 3, SimTime::from_millis(5), move |_| {
                    order.borrow_mut().push(label);
                });
            }
            sim.run();
            assert_eq!(
                *order.borrow(),
                (0..10).collect::<Vec<_>>(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn segment_is_inherited_and_routable() {
        let mut sim = Sim::with_shards(9, 4);
        assert_eq!(sim.num_shards(), 4);
        assert_eq!(sim.current_segment(), 0);
        let seen = shared(Vec::new());
        let s = seen.clone();
        sim.schedule_at_segment(7, SimTime::from_millis(1), move |sim| {
            s.borrow_mut().push(sim.current_segment());
            let s2 = s.clone();
            // Plain schedule_at inherits segment 7.
            sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                s2.borrow_mut().push(sim.current_segment());
            });
        });
        sim.run();
        assert_eq!(*seen.borrow(), vec![7, 7]);
        assert_eq!(sim.shard_of(7), 3);
        // Both events ran on shard 7 % 4 == 3.
        assert_eq!(sim.events_processed_by_shard(), &[0, 0, 0, 2]);
    }

    #[test]
    fn cross_shard_posts_interleave_identically_at_any_shard_count() {
        // A producer in segment 0 posts bursts into segments 1..4;
        // each receiver posts an ack back. The observable order must
        // not depend on the physical shard count.
        let run = |shards: usize| -> Vec<(u64, u32, u32)> {
            let mut sim = Sim::with_shards(3, shards);
            let log = shared(Vec::new());
            for k in 0..40u64 {
                let log = log.clone();
                let seg = (k % 4) as u32 + 1;
                sim.schedule_at_segment(seg, SimTime::from_micros(100 * (k / 4)), move |sim| {
                    log.borrow_mut().push((sim.now().as_micros(), seg, 0));
                    let log2 = log.clone();
                    sim.schedule_at_segment(0, sim.now() + SimDuration::from_micros(10), {
                        move |sim| {
                            log2.borrow_mut().push((sim.now().as_micros(), seg, 1));
                        }
                    });
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        };
        let base = run(1);
        assert_eq!(base.len(), 80);
        for shards in [2, 3, 4, 8] {
            assert_eq!(run(shards), base, "shards={shards}");
        }
    }

    #[test]
    fn lookahead_horizon_respects_cross_shard_posts_during_burst() {
        // Segment 1 has a long run of closely spaced events; partway
        // through, one of them posts into segment 2 at a time that
        // falls *inside* the remaining run. The posted event must fire
        // in global order, not after the burst drains.
        let mut sim = Sim::with_shards(1, 2);
        let order = shared(Vec::new());
        for i in 0..10u64 {
            let order = order.clone();
            sim.schedule_at_segment(1, SimTime::from_millis(10 * (i + 1)), move |sim| {
                order
                    .borrow_mut()
                    .push(format!("seg1@{}", sim.now().as_millis()));
                if i == 2 {
                    let o2 = order.clone();
                    // Lands between the i==3 and i==4 events.
                    sim.schedule_at_segment(2, SimTime::from_millis(45), move |sim| {
                        o2.borrow_mut()
                            .push(format!("seg2@{}", sim.now().as_millis()));
                    });
                }
            });
        }
        sim.run();
        let order = order.borrow();
        let pos = |s: &str| order.iter().position(|x| x == s).unwrap();
        assert!(pos("seg1@40") < pos("seg2@45"));
        assert!(pos("seg2@45") < pos("seg1@50"), "{order:?}");
        assert_eq!(order.len(), 11);
        // The burst fast-path actually engaged: far fewer full scans
        // than events.
        assert!(sim.merge_scans() < sim.events_processed());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim = Sim::new(1);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = sim.schedule_in(SimDuration::from_millis(1), move |_| f.set(true));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel must report false");
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn cancel_works_across_shards() {
        let mut sim = Sim::with_shards(1, 4);
        let fired = Rc::new(Cell::new(0u32));
        let mut ids = Vec::new();
        for seg in 0..8u32 {
            let f = fired.clone();
            ids.push(
                sim.schedule_at_segment(seg, SimTime::from_millis(1), move |_| {
                    f.set(f.get() + 1);
                }),
            );
        }
        for id in ids.iter().step_by(2) {
            assert!(sim.cancel(*id));
        }
        sim.run();
        assert_eq!(fired.get(), 4);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim = Sim::new(1);
        let fired_at = Rc::new(Cell::new(SimTime::ZERO));
        let fa = fired_at.clone();
        // From a handler at t=10ms, schedule "at 1ms": must clamp to now.
        sim.schedule_in(SimDuration::from_millis(10), move |sim| {
            let fa = fa.clone();
            sim.schedule_at(SimTime::from_millis(1), move |sim| {
                fa.set(sim.now());
            });
        });
        sim.run();
        assert_eq!(fired_at.get(), SimTime::from_millis(10));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Sim::new(1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // And does not run later events.
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        sim.schedule_in(SimDuration::from_secs(10), move |_| f.set(true));
        sim.run_until(SimTime::from_secs(7));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_secs(7));
        sim.run_for(SimDuration::from_secs(10));
        assert!(fired.get());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Sim::new(1);
        let count = Rc::new(Cell::new(0u32));
        fn chain(sim: &mut Sim, count: Rc<Cell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                count.set(count.get() + 1);
                chain(sim, count.clone(), left - 1);
            });
        }
        chain(&mut sim, count.clone(), 100);
        sim.run();
        assert_eq!(count.get(), 100);
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn repeating_timer_fires_on_period_and_stops() {
        let mut sim = Sim::new(1);
        let ticks = shared(Vec::new());
        let t = ticks.clone();
        let timer = RepeatingTimer::start(&mut sim, SimDuration::from_millis(100), move |sim| {
            t.borrow_mut().push(sim.now().as_millis());
        });
        sim.run_until(SimTime::from_millis(450));
        assert_eq!(*ticks.borrow(), vec![100, 200, 300, 400]);
        assert_eq!(timer.fire_count(), 4);
        timer.stop();
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(timer.fire_count(), 4, "no ticks after stop");
    }

    #[test]
    fn timer_phase_offsets_first_fire() {
        let mut sim = Sim::new(1);
        let ticks = shared(Vec::new());
        let t = ticks.clone();
        let _timer = RepeatingTimer::start_with_phase(
            &mut sim,
            SimDuration::from_millis(100),
            SimDuration::from_millis(30),
            move |sim| t.borrow_mut().push(sim.now().as_millis()),
        );
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(*ticks.borrow(), vec![30, 130, 230]);
    }

    #[test]
    fn determinism_same_seed_same_rng_stream() {
        use rand::Rng;
        let mut a = Sim::new(7);
        let mut b = Sim::new(7);
        let xs: Vec<u32> = (0..16).map(|_| a.rng().gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.rng().gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn shard_timing_collects_per_segment_busy_time() {
        let mut sim = Sim::with_shards(1, 2);
        sim.enable_shard_timing();
        for seg in [0u32, 1, 1] {
            sim.schedule_at_segment(seg, SimTime::from_millis(1), |_| {
                std::hint::black_box((0..100).sum::<u64>());
            });
        }
        sim.run();
        let timing = sim.take_shard_timing();
        assert_eq!(timing.busy_ns.len(), 2, "{timing:?}");
        assert!(timing.work_ns() > 0);
        // take() resets the accumulator.
        assert_eq!(sim.take_shard_timing(), ShardTiming::default());
    }
}
