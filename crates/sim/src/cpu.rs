//! A cycle-budget CPU model for slow embedded hosts.
//!
//! The paper's Ethernet Speaker runs on a 233 MHz Geode; Figure 4 and
//! §3.4 both hinge on the CPU being a scarce resource (compression
//! load grows with stream count; decode time stalls the playback
//! pipeline when buffers are large). We model the CPU as a single FIFO
//! server with a fixed clock rate: work is submitted in cycles, and the
//! model answers "when does this work finish" plus per-interval busy
//! fractions that reproduce a `top`-style utilization series.

use crate::series::{BucketAccumulator, TimeSeries};
use crate::time::{SimDuration, SimTime};

/// How codec transforms are priced when billing work to a [`SimCpu`].
///
/// The paper's Figure 4 was measured against a direct O(N²) MDCT-class
/// codec cost; the workspace's fast path now runs an O(N log N)
/// FFT-based transform. Experiments that reproduce the paper's CPU
/// curves select [`CostModel::Direct`] so the billed cycles still match
/// the 233 MHz Geode calibration, while production-shaped runs keep the
/// default [`CostModel::Fft`] and bill what the fast path actually
/// costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Bill the direct O(N²) transform cost (paper-fidelity mode; the
    /// Figure 4 calibration in `es-bench::calib` assumes this).
    Direct,
    /// Bill the O(N log N) FFT-based transform cost (the default: what
    /// the optimized hot path actually performs).
    #[default]
    Fft,
}

/// A single-core FIFO CPU with a fixed clock rate and utilization
/// accounting.
///
/// # Examples
///
/// ```
/// use es_sim::{SimCpu, SimDuration, SimTime};
///
/// // A 233 MHz Geode-class CPU sampled at 1-second intervals.
/// let mut cpu = SimCpu::new(233_000_000, SimDuration::from_secs(1));
/// // 233M cycles of work submitted at t=0 finish at t=1s.
/// let done = cpu.submit(SimTime::ZERO, 233_000_000);
/// assert_eq!(done, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone)]
pub struct SimCpu {
    clock_hz: u64,
    sample_interval: SimDuration,
    busy_until: SimTime,
    busy_ns: BucketAccumulator,
    total_busy: SimDuration,
    total_cycles: u64,
}

impl SimCpu {
    /// Creates a CPU with the given clock rate, sampling utilization
    /// into buckets of `sample_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is zero or `sample_interval` is zero.
    pub fn new(clock_hz: u64, sample_interval: SimDuration) -> Self {
        assert!(clock_hz > 0, "clock rate must be non-zero");
        SimCpu {
            clock_hz,
            sample_interval,
            busy_until: SimTime::ZERO,
            busy_ns: BucketAccumulator::new("cpu-busy-ns", sample_interval),
            total_busy: SimDuration::ZERO,
            total_cycles: 0,
        }
    }

    /// The modelled clock rate in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Converts a cycle count to execution time on this CPU, rounding
    /// up to the next nanosecond.
    pub fn cycles_to_duration(&self, cycles: u64) -> SimDuration {
        let ns = (cycles as u128 * 1_000_000_000).div_ceil(self.clock_hz as u128);
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Submits `cycles` of work at time `now`; returns the completion
    /// time. Work queues FIFO behind any outstanding work, which is how
    /// saturation (demand above capacity) manifests: completion times
    /// drift ever later and [`SimCpu::backlog`] grows.
    pub fn submit(&mut self, now: SimTime, cycles: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let dur = self.cycles_to_duration(cycles);
        let end = start + dur;
        self.record_busy_span(start, end);
        self.busy_until = end;
        self.total_busy += dur;
        self.total_cycles += cycles;
        end
    }

    /// The amount of queued-but-unfinished work at `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// True if the CPU has no outstanding work at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total busy time accumulated so far.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Total cycles consumed so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Mean utilization (0..=1) over the interval `[SimTime::ZERO, until]`.
    pub fn mean_utilization(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        // Busy time beyond `until` has been booked but not yet "spent".
        let spent = self
            .total_busy
            .saturating_sub(self.busy_until.saturating_since(until));
        (spent.as_nanos() as f64 / until.as_nanos() as f64).min(1.0)
    }

    fn record_busy_span(&mut self, start: SimTime, end: SimTime) {
        // Split the busy span across sample buckets so each bucket gets
        // exactly the nanoseconds spent inside it.
        let width = self.sample_interval.as_nanos();
        let mut cursor = start.as_nanos();
        let end_ns = end.as_nanos();
        while cursor < end_ns {
            let bucket_end = (cursor / width + 1) * width;
            let span_end = bucket_end.min(end_ns);
            self.busy_ns
                .add(SimTime::from_nanos(cursor), (span_end - cursor) as f64);
            cursor = span_end;
        }
    }

    /// Consumes the model and returns the utilization series in percent
    /// (0–100), one sample per interval, up to the bucket containing
    /// `until`.
    pub fn utilization_series(self, name: impl Into<String>, until: SimTime) -> TimeSeries {
        let interval_ns = self.sample_interval.as_nanos() as f64;
        let busy = self.busy_ns.finish(until);
        let mut out = TimeSeries::new(name);
        for &(t, busy_ns) in busy.samples() {
            out.push(t, (busy_ns / interval_ns * 100.0).min(100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> SimCpu {
        SimCpu::new(100_000_000, SimDuration::from_secs(1)) // 100 MHz
    }

    #[test]
    fn cycles_to_duration_scales_with_clock() {
        let c = cpu();
        assert_eq!(c.cycles_to_duration(100_000_000), SimDuration::from_secs(1));
        assert_eq!(
            c.cycles_to_duration(1_000_000),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn submit_on_idle_cpu_runs_immediately() {
        let mut c = cpu();
        let end = c.submit(SimTime::from_secs(5), 50_000_000);
        assert_eq!(end, SimTime::from_millis(5500));
        assert!(c.is_idle(SimTime::from_secs(6)));
    }

    #[test]
    fn work_queues_fifo_and_backlog_grows() {
        let mut c = cpu();
        // Submit 2 seconds of work at t=0, then more at t=0.
        let e1 = c.submit(SimTime::ZERO, 100_000_000);
        let e2 = c.submit(SimTime::ZERO, 100_000_000);
        assert_eq!(e1, SimTime::from_secs(1));
        assert_eq!(e2, SimTime::from_secs(2));
        assert_eq!(
            c.backlog(SimTime::from_millis(500)),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn utilization_reflects_duty_cycle() {
        let mut c = cpu();
        // 250 ms of work at the start of each of 4 seconds = 25%.
        for s in 0..4 {
            c.submit(SimTime::from_secs(s), 25_000_000);
        }
        let series = c.utilization_series("u", SimTime::from_secs(4));
        let vals: Vec<f64> = series.values().collect();
        assert_eq!(vals.len(), 4);
        for v in vals {
            assert!((v - 25.0).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn saturation_pins_utilization_at_100() {
        let mut c = cpu();
        // 2x capacity demand each second for 3 seconds.
        for s in 0..3 {
            c.submit(SimTime::from_secs(s), 200_000_000);
        }
        let series = c.utilization_series("u", SimTime::from_secs(3));
        for v in series.values() {
            assert!((v - 100.0).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn busy_span_splits_across_buckets() {
        let mut c = cpu();
        // 1 second of work starting at t=0.5s: 50% in bucket 0, 50% in bucket 1.
        c.submit(SimTime::from_millis(500), 100_000_000);
        let series = c.utilization_series("u", SimTime::from_secs(2));
        let vals: Vec<f64> = series.values().collect();
        assert!((vals[0] - 50.0).abs() < 1e-6);
        assert!((vals[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn mean_utilization_accounts_for_unfinished_work() {
        let mut c = cpu();
        c.submit(SimTime::ZERO, 400_000_000); // 4 s of work
                                              // After 2 s, exactly half the work is done: 100% busy so far.
        assert!((c.mean_utilization(SimTime::from_secs(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_clock_panics() {
        let _ = SimCpu::new(0, SimDuration::from_secs(1));
    }
}
