//! Distribution sampling helpers on top of the seeded engine RNG.
//!
//! `rand` 0.8 ships only uniform sampling in-core; the simulator needs
//! exponential inter-arrival times (Poisson daemon wakeups, packet
//! loss bursts) and Gaussian jitter (network delay variation). Both are
//! implemented here from first principles so no extra dependency is
//! pulled in.

use rand::Rng;

/// Samples an exponentially distributed value with the given rate
/// (events per unit). The mean of the distribution is `1 / rate`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite, got {rate}"
    );
    // Inverse-CDF: -ln(U) / rate with U in (0, 1]. `gen::<f64>()` is in
    // [0, 1), so flip it to avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a standard normal via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Two uniforms in (0,1]; reject u1 == 0 by flipping the interval.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Samples a normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "std_dev must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE5E5)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 0.1) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = rng();
        let _ = exponential(&mut r, 0.0);
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = rng();
        assert!(!chance(&mut r, 0.0));
        assert!(!chance(&mut r, -5.0));
        assert!(chance(&mut r, 1.0));
        assert!(chance(&mut r, 2.0));
    }

    #[test]
    fn chance_frequency_matches_probability() {
        let mut r = rng();
        let hits = (0..50_000).filter(|_| chance(&mut r, 0.25)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }
}
