//! Distribution sampling helpers on top of the seeded engine RNG.
//!
//! `rand` 0.8 ships only uniform sampling in-core; the simulator needs
//! exponential inter-arrival times (Poisson daemon wakeups, packet
//! loss bursts) and Gaussian jitter (network delay variation). Both are
//! implemented here from first principles so no extra dependency is
//! pulled in.

use rand::Rng;

/// Samples an exponentially distributed value with the given rate
/// (events per unit). The mean of the distribution is `1 / rate`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite, got {rate}"
    );
    // Inverse-CDF: -ln(U) / rate with U in (0, 1]. `gen::<f64>()` is in
    // [0, 1), so flip it to avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a standard normal via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Two uniforms in (0,1]; reject u1 == 0 by flipping the interval.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Samples a normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "std_dev must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

/// A Gilbert–Elliott two-state loss chain: a `Good` state with low loss
/// and a `Bad` (burst) state with high loss, with per-step transition
/// probabilities between them. Mean burst length is `1 / p_bad_to_good`
/// steps; stationary bad-state occupancy is
/// `p_good_to_bad / (p_good_to_bad + p_bad_to_good)`.
///
/// The chain holds only its current state; the caller supplies the
/// parameters and the RNG on every step so one seeded engine RNG stays
/// the single source of randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GilbertElliott {
    /// Whether the chain currently sits in the bursty `Bad` state.
    pub bad: bool,
}

impl GilbertElliott {
    /// A chain starting in the `Good` state.
    pub fn new() -> Self {
        GilbertElliott { bad: false }
    }

    /// Advances the chain one step and samples one loss decision:
    /// first the state transition, then a loss draw at the new state's
    /// rate. Returns `true` if this step's packet is lost.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> bool {
        let flip = if self.bad {
            chance(rng, p_bad_to_good)
        } else {
            chance(rng, p_good_to_bad)
        };
        if flip {
            self.bad = !self.bad;
        }
        chance(rng, if self.bad { loss_bad } else { loss_good })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE5E5)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 0.1) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = rng();
        let _ = exponential(&mut r, 0.0);
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = rng();
        assert!(!chance(&mut r, 0.0));
        assert!(!chance(&mut r, -5.0));
        assert!(chance(&mut r, 1.0));
        assert!(chance(&mut r, 2.0));
    }

    #[test]
    fn chance_frequency_matches_probability() {
        let mut r = rng();
        let hits = (0..50_000).filter(|_| chance(&mut r, 0.25)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn gilbert_elliott_occupancy_and_bursts() {
        let mut r = rng();
        let mut ge = GilbertElliott::new();
        // 10% of steps in the bad state on average; bursts of mean
        // length 10.
        let (g2b, b2g) = (1.0 / 90.0, 0.1);
        let n = 200_000;
        let mut bad_steps = 0u64;
        let mut losses = 0u64;
        let mut run = 0u64;
        let mut runs = Vec::new();
        for _ in 0..n {
            let lost = ge.step(&mut r, g2b, b2g, 0.0, 1.0);
            if ge.bad {
                bad_steps += 1;
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
            losses += lost as u64;
        }
        let occupancy = bad_steps as f64 / n as f64;
        assert!((occupancy - 0.1).abs() < 0.02, "occupancy {occupancy}");
        let mean_burst = runs.iter().sum::<u64>() as f64 / runs.len() as f64;
        assert!((mean_burst - 10.0).abs() < 1.5, "mean burst {mean_burst}");
        // With loss_good = 0 and loss_bad = 1, losses == bad steps.
        assert_eq!(losses, bad_steps);
    }

    #[test]
    fn gilbert_elliott_degenerate_rates() {
        let mut r = rng();
        // Never enters the bad state: loss follows loss_good exactly.
        let mut ge = GilbertElliott::new();
        for _ in 0..1_000 {
            assert!(!ge.step(&mut r, 0.0, 1.0, 0.0, 1.0));
            assert!(!ge.bad);
        }
        // Starts bad and never leaves: every packet lost.
        let mut stuck = GilbertElliott { bad: true };
        for _ in 0..1_000 {
            assert!(stuck.step(&mut r, 0.0, 0.0, 0.0, 1.0));
        }
    }
}
