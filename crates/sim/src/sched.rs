//! A kernel-scheduler model with context-switch accounting.
//!
//! Figure 5 of the paper compares the context-switch rate of three
//! configurations on the same host: an unloaded machine (mean 4.2
//! switches per `vmstat` interval), the VAD with an in-kernel streaming
//! thread (mean 28.7), and the VAD with a user-level streaming
//! application (mean 37.2). The determining variable is *who wakes up
//! how often*: background daemons, the kernel thread standing in for
//! the missing audio-hardware interrupt (§3.3), and the user process
//! `read(2)`-ing the master device.
//!
//! This module models exactly that: named tasks on a single CPU, FIFO
//! dispatch, and a counter that increments whenever the running task
//! changes (including switches to and from the idle loop, which is how
//! `vmstat` counts on OpenBSD). Per-interval samples come out as a
//! [`TimeSeries`] ready for the Figure 5 harness.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::engine::{shared, Shared, Sim};
use crate::random::exponential;
use crate::series::{BucketAccumulator, TimeSeries};
use crate::time::{SimDuration, SimTime};

/// Identifies a task registered with the scheduler model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// What kind of execution context a task is; affects nothing in the
/// dispatch logic but is reported in summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A user-level process (context switches to it cross the
    /// kernel/user boundary).
    UserProcess,
    /// An in-kernel thread.
    KernelThread,
    /// An interrupt-like context (short, high priority in real systems;
    /// modelled as an ordinary short burst here).
    Interrupt,
}

/// The name is an interned `Arc<str>`: Figure 5 harnesses clone the
/// whole scheduler per configuration, and a `String` name made every
/// clone (and the derived `Clone` of each `Task`) allocate.
#[derive(Debug, Clone)]
struct Task {
    name: Arc<str>,
    kind: TaskKind,
    dispatches: u64,
}

/// Which task the CPU is running; `None` is the idle loop.
type Running = Option<(TaskId, SimTime)>;

/// The scheduler model: a single CPU, FIFO run queue, and a
/// context-switch counter bucketed per sampling interval.
#[derive(Debug, Clone)]
pub struct KernelSched {
    tasks: Vec<Task>,
    current: Option<TaskId>,
    running: Running,
    queue: VecDeque<(TaskId, SimDuration)>,
    switches: BucketAccumulator,
    total_switches: u64,
}

impl KernelSched {
    /// Creates a scheduler that samples switch counts into buckets of
    /// `interval` (the paper uses one-second `vmstat` intervals).
    pub fn new(interval: SimDuration) -> Self {
        KernelSched {
            tasks: Vec::new(),
            current: None,
            running: None,
            queue: VecDeque::new(),
            switches: BucketAccumulator::new("ctx-switches", interval),
            total_switches: 0,
        }
    }

    /// Registers a task and returns its id. The name is interned once;
    /// `&'static str` and `Arc<str>` arguments do not allocate.
    pub fn register(&mut self, name: impl Into<Arc<str>>, kind: TaskKind) -> TaskId {
        self.tasks.push(Task {
            name: name.into(),
            kind,
            dispatches: 0,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// The task's display name.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// The task's kind.
    pub fn task_kind(&self, id: TaskId) -> TaskKind {
        self.tasks[id.0].kind
    }

    /// How many times the task has been dispatched onto the CPU.
    pub fn dispatch_count(&self, id: TaskId) -> u64 {
        self.tasks[id.0].dispatches
    }

    /// Total context switches so far.
    pub fn total_switches(&self) -> u64 {
        self.total_switches
    }

    fn switch_to(&mut self, at: SimTime, to: Option<TaskId>) {
        if self.current != to {
            self.total_switches += 1;
            self.switches.add(at, 1.0);
            self.current = to;
        }
    }

    /// Drains work that completed at or before `now`, performing the
    /// resulting dispatches and idle transitions.
    fn advance(&mut self, now: SimTime) {
        while let Some((_tid, ends)) = self.running {
            if ends > now {
                return;
            }
            match self.queue.pop_front() {
                Some((next, burst)) => {
                    self.tasks[next.0].dispatches += 1;
                    self.switch_to(ends, Some(next));
                    self.running = Some((next, ends + burst));
                }
                None => {
                    // Return to the idle loop.
                    self.switch_to(ends, None);
                    self.running = None;
                }
            }
        }
    }

    /// Wakes `task` at `now` to run a CPU burst of `burst`.
    ///
    /// If the CPU is idle the task is dispatched immediately (one
    /// switch); otherwise it queues and is dispatched when the current
    /// work completes. A subsequent return to idle also counts as one
    /// switch, matching `vmstat` semantics.
    pub fn wakeup(&mut self, now: SimTime, task: TaskId, burst: SimDuration) {
        self.advance(now);
        match self.running {
            None => {
                self.tasks[task.0].dispatches += 1;
                self.switch_to(now, Some(task));
                self.running = Some((task, now + burst));
            }
            Some(_) => self.queue.push_back((task, burst)),
        }
    }

    /// Finishes the run at `until`: drains remaining work and returns
    /// the per-interval switch-count series — the Figure 5 y-axis.
    pub fn finish(mut self, until: SimTime) -> TimeSeries {
        self.advance(until);
        self.switches.finish(until)
    }
}

/// Wakes a task at Poisson (exponentially distributed) intervals — the
/// model for background daemons on the "unloaded machine".
///
/// Each wakeup runs a short burst; the source stops generating wakeups
/// after `until`.
pub fn poisson_source(
    sim: &mut Sim,
    sched: Shared<KernelSched>,
    task: TaskId,
    rate_per_sec: f64,
    burst: SimDuration,
    until: SimTime,
) {
    fn arm(
        sim: &mut Sim,
        sched: Shared<KernelSched>,
        task: TaskId,
        rate: f64,
        burst: SimDuration,
        until: SimTime,
    ) {
        let gap = SimDuration::from_secs_f64(exponential(sim.rng(), rate));
        let at = sim.now().saturating_add(gap);
        if at > until {
            return;
        }
        sim.schedule_at(at, move |sim| {
            sched.borrow_mut().wakeup(sim.now(), task, burst);
            arm(sim, sched, task, rate, burst, until);
        });
    }
    arm(sim, sched, task, rate_per_sec, burst, until);
}

/// Wakes a task at a fixed period — the model for the VAD's
/// kernel-thread "interrupt" heartbeat and for block-paced reads.
pub fn periodic_source(
    sim: &mut Sim,
    sched: Shared<KernelSched>,
    task: TaskId,
    period: SimDuration,
    burst: SimDuration,
    until: SimTime,
) {
    assert!(!period.is_zero(), "periodic source needs a non-zero period");
    fn arm(
        sim: &mut Sim,
        sched: Shared<KernelSched>,
        task: TaskId,
        period: SimDuration,
        burst: SimDuration,
        until: SimTime,
    ) {
        let at = sim.now().saturating_add(period);
        if at > until {
            return;
        }
        sim.schedule_at(at, move |sim| {
            sched.borrow_mut().wakeup(sim.now(), task, burst);
            arm(sim, sched, task, period, burst, until);
        });
    }
    arm(sim, sched, task, period, burst, until);
}

/// Convenience: builds a `Shared<KernelSched>` sampling at `interval`.
pub fn shared_sched(interval: SimDuration) -> Shared<KernelSched> {
    shared(KernelSched::new(interval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const US: fn(u64) -> SimDuration = SimDuration::from_micros;

    #[test]
    fn single_wakeup_costs_two_switches() {
        // idle -> task -> idle.
        let mut s = KernelSched::new(SimDuration::from_secs(1));
        let t = s.register("daemon", TaskKind::UserProcess);
        s.wakeup(SimTime::from_millis(100), t, US(50));
        let series = s.finish(SimTime::from_secs(1));
        assert_eq!(series.values().sum::<f64>(), 2.0);
    }

    #[test]
    fn back_to_back_same_task_does_not_switch_between_bursts() {
        let mut s = KernelSched::new(SimDuration::from_secs(1));
        let t = s.register("w", TaskKind::KernelThread);
        // Second wakeup arrives while the first burst still runs: it
        // queues, and dispatching the same task again is not a switch.
        s.wakeup(SimTime::from_millis(0), t, SimDuration::from_millis(10));
        s.wakeup(SimTime::from_millis(5), t, SimDuration::from_millis(10));
        assert_eq!(s.total_switches(), 1); // idle -> t
        let series = s.finish(SimTime::from_secs(1));
        // Plus the final t -> idle.
        assert_eq!(series.values().sum::<f64>(), 2.0);
    }

    #[test]
    fn two_tasks_queued_switch_between_them() {
        let mut s = KernelSched::new(SimDuration::from_secs(1));
        let a = s.register("a", TaskKind::UserProcess);
        let b = s.register("b", TaskKind::KernelThread);
        s.wakeup(SimTime::ZERO, a, SimDuration::from_millis(10));
        s.wakeup(SimTime::from_millis(1), b, SimDuration::from_millis(10));
        let series = s.finish(SimTime::from_secs(1));
        // idle->a, a->b, b->idle = 3.
        assert_eq!(series.values().sum::<f64>(), 3.0);
        assert_eq!(s_dispatches(&series), ());
    }

    // Helper placeholder so the assertion above reads naturally.
    fn s_dispatches(_: &TimeSeries) {}

    #[test]
    fn periodic_source_produces_two_switches_per_period() {
        let mut sim = Sim::new(3);
        let sched = shared_sched(SimDuration::from_secs(1));
        let t = sched
            .borrow_mut()
            .register("kthread", TaskKind::KernelThread);
        let until = SimTime::from_secs(10);
        periodic_source(
            &mut sim,
            sched.clone(),
            t,
            SimDuration::from_millis(100),
            US(30),
            until,
        );
        sim.run_until(until);
        let sched = Rc::try_unwrap(sched).expect("sole owner");
        let series = RefCell::into_inner(sched).finish(until);
        // 10 wakeups/sec * 2 switches = 20 per 1-second bucket.
        let mean = series.mean().unwrap();
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_source_mean_rate_matches() {
        let mut sim = Sim::new(9);
        let sched = shared_sched(SimDuration::from_secs(1));
        let t = sched
            .borrow_mut()
            .register("daemons", TaskKind::UserProcess);
        let until = SimTime::from_secs(300);
        // 2.1 wakeups/sec -> ~4.2 switches/sec: the paper's unloaded mean.
        poisson_source(&mut sim, sched.clone(), t, 2.1, US(40), until);
        sim.run_until(until);
        let sched = Rc::try_unwrap(sched).expect("sole owner");
        let series = RefCell::into_inner(sched).finish(until);
        let mean = series.mean().unwrap();
        assert!((mean - 4.2).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn cloned_scheds_share_interned_task_names() {
        let mut s = KernelSched::new(SimDuration::from_secs(1));
        let a = s.register("vad-kthread", TaskKind::KernelThread);
        let c = s.clone();
        // `Arc<str>` interning: the clone points at the same bytes.
        assert_eq!(s.task_name(a).as_ptr(), c.task_name(a).as_ptr());
    }

    #[test]
    fn dispatch_counts_are_tracked() {
        let mut s = KernelSched::new(SimDuration::from_secs(1));
        let a = s.register("a", TaskKind::UserProcess);
        for ms in [0u64, 100, 200] {
            s.wakeup(SimTime::from_millis(ms), a, US(10));
        }
        assert_eq!(s.dispatch_count(a), 3);
        assert_eq!(s.task_name(a), "a");
        assert_eq!(s.task_kind(a), TaskKind::UserProcess);
    }
}
