//! Self-test: every registered rule *and semantic pass* is exercised
//! by a positive and a negative fixture, both through the library API
//! and through the compiled CLI (exit codes, `--strict`, `--json`).

use std::path::{Path, PathBuf};
use std::process::Command;

use es_analyze::{analyze_source, passes, rules, walker};

/// Every check id: the lexical rules plus the phase-2 passes. The
/// fixture convention is identical for both because `analyze_source`
/// runs the passes over a one-file workspace.
fn all_check_ids() -> Vec<String> {
    rules::all()
        .iter()
        .map(|r| r.id.to_string())
        .chain(passes::all().iter().map(|p| p.id.to_string()))
        .collect()
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// `wall-clock` → `wall_clock_pos.rs` / `wall_clock_neg.rs`.
fn fixture_path(rule: &str, positive: bool) -> PathBuf {
    let stem = rule.replace('-', "_");
    let suffix = if positive { "pos" } else { "neg" };
    fixtures_dir().join(format!("{stem}_{suffix}.rs"))
}

/// Analyzes a fixture as if it lived in a scoped, non-allowlisted
/// crate, so rules with path allowlists still apply.
fn analyze_fixture(path: &Path) -> Vec<es_analyze::Finding> {
    let rel = format!(
        "crates/net/src/{}",
        path.file_name().unwrap().to_string_lossy()
    );
    let file = walker::attribute(path.to_path_buf(), rel);
    let src = std::fs::read_to_string(path).expect("fixture readable");
    analyze_source(&file, &src)
}

#[test]
fn every_rule_has_both_fixtures() {
    for id in all_check_ids() {
        for positive in [true, false] {
            let p = fixture_path(&id, positive);
            assert!(
                p.is_file(),
                "rule `{id}` is missing fixture {}",
                p.display()
            );
        }
    }
}

#[test]
fn positive_fixtures_fire_their_rule() {
    for id in all_check_ids() {
        let findings = analyze_fixture(&fixture_path(&id, true));
        let active: Vec<_> = findings
            .iter()
            .filter(|f| !f.allowed && f.rule == id)
            .collect();
        assert!(
            !active.is_empty(),
            "positive fixture for `{id}` produced no active finding of that rule; got {findings:?}"
        );
    }
}

#[test]
fn negative_fixtures_are_clean() {
    for id in all_check_ids() {
        let findings = analyze_fixture(&fixture_path(&id, false));
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(
            active.is_empty(),
            "negative fixture for `{id}` has active findings: {active:?}"
        );
    }
}

#[test]
fn pragma_fixture_counts_as_allowed() {
    let findings = analyze_fixture(&fixture_path("pragma", false));
    let allowed: Vec<_> = findings.iter().filter(|f| f.allowed).collect();
    assert_eq!(allowed.len(), 1, "expected one suppressed finding");
    assert_eq!(allowed[0].rule, "wall-clock");
    assert_eq!(
        allowed[0].reason.as_deref(),
        Some("fixture exercises a sanctioned suppression")
    );
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_es-analyze"))
        .args(args)
        .output()
        .expect("run es-analyze");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_exits_nonzero_on_each_positive_fixture_and_zero_on_negatives() {
    for id in all_check_ids() {
        let pos = fixture_path(&id, true);
        let (code, stdout, _) = run_cli(&["--as-crate", "net", pos.to_str().unwrap()]);
        assert_eq!(
            code,
            1,
            "expected exit 1 for {}; stdout:\n{stdout}",
            pos.display()
        );
        assert!(stdout.contains(&format!("[{id}]")));

        let neg = fixture_path(&id, false);
        let (code, stdout, _) = run_cli(&["--as-crate", "net", neg.to_str().unwrap()]);
        assert_eq!(
            code,
            0,
            "expected exit 0 for {}; stdout:\n{stdout}",
            neg.display()
        );
    }
}

#[test]
fn cli_strict_lists_suppressions_and_json_counts_them() {
    let neg = fixture_path("pragma", false);
    let neg = neg.to_str().unwrap();

    // Plain run: clean, quiet about the suppression.
    let (code, stdout, _) = run_cli(&[neg]);
    assert_eq!(code, 0);
    assert!(!stdout.contains("allowed:"));
    assert!(stdout.contains("0 finding(s), 1 allowed"));

    // Strict run: still exit 0, but the suppression is listed.
    let (code, stdout, _) = run_cli(&["--strict", neg]);
    assert_eq!(code, 0);
    assert!(stdout.contains("[wall-clock] allowed: fixture exercises a sanctioned suppression"));

    // JSON: suppressed findings are always present and counted.
    let (code, stdout, _) = run_cli(&["--json", neg]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"active\": 0"));
    assert!(stdout.contains("\"allowed\": 1"));
    assert!(stdout.contains("\"reason\": \"fixture exercises a sanctioned suppression\""));
}

#[test]
fn cli_list_rules_names_every_rule() {
    let (code, stdout, _) = run_cli(&["--list-rules"]);
    assert_eq!(code, 0);
    for id in all_check_ids() {
        assert!(stdout.contains(&id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn cli_usage_error_is_exit_two() {
    // A bare invocation is workspace mode now, not a usage error —
    // only malformed flags earn exit 2.
    let (code, _, stderr) = run_cli(&["--bogus-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"));
    let (code, _, _) = run_cli(&["--cache"]);
    assert_eq!(code, 2, "--cache without a path is a usage error");
}
