//! Positive fixture: a fleet job closure mutates captured state
//! directly instead of routing it through a ShardBuffer — the merge
//! never sees it and lane count changes the observable order. Expect
//! one `shard-aliasing` finding at the mutation.

pub fn stage(counter: Shared<Stats>) -> fleet::Job {
    Box::new(move || {
        counter.borrow_mut().frames += 1;
        Box::new(()) as Box<dyn Any + Send>
    }) as fleet::Job
}
