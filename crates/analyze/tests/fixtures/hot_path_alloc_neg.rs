//! Negative fixture: the hot region reuses caller-provided buffers
//! (clear/extend/resize never reallocate in steady state), allocation
//! happens outside the region, and `to_vec` inside a comment or
//! string is invisible to the lexer.

// es-hot-path
pub fn decode_window(payload: &[u8], out: &mut Vec<i16>) {
    // A naive version would call payload.to_vec() here; we don't.
    let note = "collect() is banned in this region";
    let _ = note;
    out.clear();
    out.extend(payload.iter().map(|&b| b as i16));
    out.resize(payload.len() * 2, 0);
}
// es-hot-path-end

pub fn setup_scratch(frames: usize) -> Vec<i16> {
    let mut v = Vec::new();
    v.resize(frames, 0);
    v
}
