//! Negative fixture: the reachable allocation carries a reasoned
//! `es-allow(hot-path-transitive)` pragma at the allocation site,
//! which sanctions it for every path that reaches it. No active
//! findings.

pub fn decode(frame: &[u8]) {
    // es-hot-path
    step(frame.len());
    // es-hot-path-end
}

pub fn step(n: usize) {
    deeper(n);
}

pub fn deeper(n: usize) {
    // es-allow(hot-path-transitive): one-time scratch build at construction, reused afterwards
    let mut scratch = Vec::new();
    scratch.push(n);
}
