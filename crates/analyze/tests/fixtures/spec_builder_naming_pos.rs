//! Positive fixture: a `with_*` builder method inside an `impl` of a
//! public spec type, with no `#[deprecated]` escape hatch. Expect one
//! `spec-builder-naming` finding.

pub struct WidgetSpec {
    pub volume: f64,
}

impl WidgetSpec {
    pub fn with_volume(mut self, volume: f64) -> Self {
        self.volume = volume;
        self
    }
}
