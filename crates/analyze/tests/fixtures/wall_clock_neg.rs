//! Negative fixture: virtual time only. `Instant::now()` appears in a
//! comment and a string — the lexer must not report either — and the
//! `Instant` *type* without `::now` is legal (stored durations).

pub fn deadline(now_virtual_ns: u64, budget_ns: u64) -> u64 {
    // A real implementation would call Instant::now() here; we don't.
    let label = "Instant::now is banned outside the allowlist";
    let _ = label;
    now_virtual_ns + budget_ns
}

pub fn keep(t: std::time::Instant) -> std::time::Instant {
    t
}
