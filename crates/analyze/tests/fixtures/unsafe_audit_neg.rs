//! Negative fixture: safe code; the word appearing in comments and
//! strings must not fire.

/// Nothing unsafe here — and saying "unsafe" in docs is fine.
pub fn read_first(bytes: &[u8]) -> Option<u8> {
    let label = "unsafe is banned without an audit pragma";
    let _ = label;
    bytes.first().copied()
}
