//! Positive fixture: an unaudited `unsafe` block. Expect an
//! `unsafe-audit` finding.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
