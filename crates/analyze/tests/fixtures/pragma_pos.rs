//! Positive fixture: an `es-allow` pragma naming an unregistered rule
//! (a typo). Expect a `pragma` finding — and the wall-clock finding it
//! meant to suppress stays active.

pub fn stamp_ns() -> u64 {
    // es-allow(wallclock): typo'd rule id must not suppress anything
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
