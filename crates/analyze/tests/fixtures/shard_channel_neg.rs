//! Negative fixture: cross-segment events go through the sanctioned
//! deterministic channel facade, `ShardRouter::post`.

use es_sim::{ShardRouter, Sim, SimTime};

pub fn deliver_to_segment(router: &ShardRouter, sim: &mut Sim, at: SimTime) {
    router.post(sim, 1, at, |_| {});
}
