//! Negative fixture: the reachable unwraps are audited and sanctioned
//! with one reasoned pragma at the group anchor (the first site), and
//! the group covers the rest. No active findings.

pub fn decode(frame: &[u8]) {
    // es-hot-path
    step(frame);
    // es-hot-path-end
}

pub fn step(frame: &[u8]) -> u8 {
    // es-allow(panic-path): decode() only calls step with the non-empty frame it just validated
    let first = frame.first().unwrap();
    let last = frame.last().unwrap();
    first + last
}
