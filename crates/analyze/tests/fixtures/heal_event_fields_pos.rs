// Positive fixture: a heal-component journal event that names its
// action but not its target — the healing-journal contract requires
// both.
fn broken(journal: &Journal, now: Stamp) {
    journal.emit(
        now,
        Severity::Warn,
        "heal",
        "fec ladder raised",
        &[("action", "raise_fec".into())],
    );
}
