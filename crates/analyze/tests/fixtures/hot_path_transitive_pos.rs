//! Positive fixture: a hot-path region calls a helper whose callee
//! allocates outside any hot region of its own — the pass must walk
//! the chain and flag the region call site. Expect one
//! `hot-path-transitive` finding at the `step(..)` call.

pub fn decode(frame: &[u8]) {
    // es-hot-path
    step(frame.len());
    // es-hot-path-end
}

pub fn step(n: usize) {
    deeper(n);
}

pub fn deeper(n: usize) {
    let mut scratch = Vec::new();
    scratch.push(n);
}
