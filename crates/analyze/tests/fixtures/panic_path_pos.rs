//! Positive fixture: a function reachable from a hot-path region
//! unwraps — lane code must not be able to panic. Expect one grouped
//! `panic-path` finding on `step`, anchored at its first `.unwrap()`.

pub fn decode(frame: &[u8]) {
    // es-hot-path
    step(frame);
    // es-hot-path-end
}

pub fn step(frame: &[u8]) -> u8 {
    let first = frame.first().unwrap();
    let last = frame.last().unwrap();
    first + last
}
