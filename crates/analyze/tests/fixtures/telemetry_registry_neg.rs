//! Negative fixture: every (component, name) key keeps one kind
//! across all its writers and readers. No findings; the keys land in
//! the inventory.

pub fn record_send(reg: &mut Registry) {
    reg.component("net").counter("frames_sent", 1);
}

pub fn record_queue(reg: &mut Registry) {
    reg.component("net").gauge("queue_depth", 3.0);
}

pub fn probe(m: &Metrics) -> Option<u64> {
    m.counter("net/lan0/frames_sent")
}
