// Negative fixture: heal events with the full (action, target)
// contract, plus a non-heal event the rule must leave alone.
fn fine(journal: &Journal, now: Stamp) {
    journal.emit(
        now,
        Severity::Warn,
        "heal",
        "standby promoted after control stall",
        &[("action", "failover".into()), ("target", "ch0".into())],
    );
    journal.emit(
        now,
        Severity::Info,
        "heal",
        "retransmission requested",
        &[
            ("action", "retransmit".into()),
            ("target", "es1".into()),
            ("packets", "3".into()),
        ],
    );
    journal.emit(
        now,
        Severity::Warn,
        "net",
        "receiver degraded",
        &[("node", "es1".into())],
    );
}
