//! Negative fixture: well-formed metric keys — bare single-segment
//! names at emit sites, full `component/instance/name` paths at
//! lookup sites, format placeholders allowed in instance position.

pub fn publish(scope: &mut es_telemetry::Scope<'_>, snap: &es_telemetry::MetricsSnapshot) {
    scope
        .counter("frames_sent", 1)
        .gauge("multicast_fanout", 2.0);
    let _ = snap.counter("net/lan0/frames_delivered");
    let _ = snap.counter(&format!("speaker/{}/samples_played", 3));
    let _ = snap.sum_counters("speaker", "samples_played");
}
