//! Positive fixture: per-call allocations inside an `// es-hot-path`
//! region. Expect four `hot-path-alloc` findings.

// es-hot-path
pub fn decode_window(payload: &[u8]) -> Vec<i16> {
    let mut out: Vec<i16> = Vec::new();
    let header = vec![0u8; 6];
    let copy = payload.to_vec();
    let widened: Vec<i16> = copy.iter().map(|&b| b as i16).collect();
    let _ = header;
    out.extend(widened);
    out
}
// es-hot-path-end
