//! Positive fixture: entropy-seeded randomness. Expect `unseeded-rng`
//! findings for both the thread RNG and the entropy constructor.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn fresh() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}
