//! Negative fixture: ordered containers; iteration is deterministic.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(keys: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn distinct(keys: &[u32]) -> BTreeSet<u32> {
    keys.iter().copied().collect()
}
