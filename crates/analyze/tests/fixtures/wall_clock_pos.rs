//! Positive fixture: host-clock reads outside the live/bench
//! allowlist. Expect two `wall-clock` findings.

pub fn stamp_ns() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn epoch_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
