//! Negative fixture: per-lane effects flow through a ShardBuffer the
//! deterministic merge replays in submission order. No findings.

pub fn stage(input: Frame) -> fleet::Job {
    Box::new(move || {
        let mut shard = ShardBuffer::new(0);
        let result = decode_one(&input, &mut shard);
        Box::new((result, shard)) as Box<dyn Any + Send>
    }) as fleet::Job
}
