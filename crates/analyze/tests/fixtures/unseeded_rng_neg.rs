//! Negative fixture: all randomness flows from an explicit seed, the
//! way every simulated component derives its stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn per_node_stream(scenario_seed: u64, node_index: u64) -> StdRng {
    StdRng::seed_from_u64(scenario_seed ^ (node_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}
