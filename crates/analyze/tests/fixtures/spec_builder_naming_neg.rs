//! Negative fixture: bare-name builders are the convention, and
//! `with_*` on non-Spec types is out of this rule's scope.

pub struct WidgetSpec {
    pub volume: f64,
}

impl WidgetSpec {
    pub fn volume(mut self, volume: f64) -> Self {
        self.volume = volume;
        self
    }
}

pub struct LiveConfig {
    pub journal: bool,
}

impl LiveConfig {
    pub fn with_journal(mut self) -> Self {
        self.journal = true;
        self
    }
}
