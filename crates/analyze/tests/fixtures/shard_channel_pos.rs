//! Positive fixture: calling the engine's raw cross-shard primitive
//! from outside `crates/sim/`. Expect a `shard-channel` finding — the
//! call bypasses the ShardRouter's cross-segment accounting.

use es_sim::{Sim, SimTime};

pub fn deliver_to_segment(sim: &mut Sim, at: SimTime) {
    sim.schedule_at_segment(1, at, |_| {});
}
