//! Positive fixture: hash-ordered containers in fingerprinted code.
//! Expect `hash-iter-order` findings for both container types.

use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    // Iteration order here varies per process: fingerprint poison.
    counts.into_iter().collect()
}

pub fn distinct(keys: &[u32]) -> HashSet<u32> {
    keys.iter().copied().collect()
}
