//! Positive fixture: malformed metric keys. Expect `telemetry-key`
//! findings: a two-segment path, an empty segment, and a name with a
//! space.

pub fn publish(scope: &mut es_telemetry::Scope<'_>, snap: &es_telemetry::MetricsSnapshot) {
    scope.counter("frames sent", 1);
    let _ = snap.counter("net/frames_delivered");
    let _ = snap.gauge("net//multicast_fanout");
}
