//! Negative fixture: a well-formed pragma with a reason suppresses
//! the wall-clock finding below it. Zero *active* findings; under
//! `--strict` the suppression is listed as "allowed" and counted in
//! the JSON report.

pub fn stamp_ns() -> u64 {
    // es-allow(wall-clock): fixture exercises a sanctioned suppression
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
