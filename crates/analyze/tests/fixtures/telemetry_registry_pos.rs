//! Positive fixture: the same telemetry key is recorded as a counter
//! in one place and a gauge in another — mixed kinds corrupt the
//! shard merge. Expect one `telemetry-registry` finding at the
//! minority-kind site.

pub fn record_send(reg: &mut Registry) {
    reg.component("net").counter("fanout", 1);
}

pub fn record_resend(reg: &mut Registry) {
    reg.component("net").counter("fanout", 1);
}

pub fn record_level(reg: &mut Registry) {
    reg.component("net").gauge("fanout", 2.0);
}
