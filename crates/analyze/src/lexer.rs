//! A hand-rolled Rust lexer: just enough token structure for lexical
//! invariant checks.
//!
//! The analyzer never parses Rust — it only needs to know, for each
//! source position, whether text is a *comment*, a *string literal*,
//! or *code*, and to split code into identifier and punctuation
//! tokens with line numbers. That distinction is exactly what a
//! regex-over-lines checker gets wrong (`"Instant::now"` inside a
//! string, `HashMap` in a doc comment) and exactly what a lexer gets
//! right. Handled: line and (nested) block comments, string literals
//! with escapes, raw strings with arbitrary `#` fences, byte strings,
//! char literals, and the char-literal/lifetime ambiguity.

/// One lexical token, tagged with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword (`Instant`, `unsafe`, `now`, …).
    Ident { line: u32, text: String },
    /// The decoded-enough contents of a string literal (escapes are
    /// kept verbatim except `\"`; good enough for key validation).
    Str { line: u32, text: String },
    /// A numeric literal (value unused; kept so idents never glue).
    Num { line: u32 },
    /// Any other single code character (`(`, `:`, `.`, …).
    Punct { line: u32, ch: char },
}

impl Token {
    /// The line this token starts on.
    pub fn line(&self) -> u32 {
        match self {
            Token::Ident { line, .. }
            | Token::Str { line, .. }
            | Token::Num { line }
            | Token::Punct { line, .. } => *line,
        }
    }
}

/// A line comment's text (without `//`) and the line it sits on, kept
/// separately from the token stream so pragma parsing can see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line.
    pub line: u32,
    /// Comment text after the `//` (including any extra `/` or `!`).
    pub text: String,
}

/// The result of lexing one file: code tokens plus line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order (block comments are skipped —
    /// pragmas are line comments by definition).
    pub comments: Vec<LineComment>,
}

/// Lexes Rust source text. Never fails: on malformed input (unclosed
/// string or comment) the remainder of the file is consumed as that
/// construct, which is the conservative choice for a linter.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = bytes[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start_line = line;
            i += 2;
            let mut text = String::new();
            while i < n && bytes[i] != '\n' {
                text.push(bytes[i]);
                i += 1;
            }
            out.comments.push(LineComment {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment, possibly nested (Rust allows `/* /* */ */`).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br##"..."##.
        if c == 'r' || c == 'b' {
            if let Some((tok, next, nl)) = try_raw_string(&bytes, i, line) {
                out.tokens.push(tok);
                i = next;
                line += nl;
                continue;
            }
        }
        // Plain (byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            let mut text = String::new();
            while i < n {
                match bytes[i] {
                    '\\' if i + 1 < n => {
                        // Keep the escape verbatim; `\"` must not
                        // terminate the literal.
                        text.push(bytes[i]);
                        text.push(bytes[i + 1]);
                        bump_line!(bytes[i + 1]);
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        bump_line!(ch);
                        text.push(ch);
                        i += 1;
                    }
                }
            }
            out.tokens.push(Token::Str {
                line: start_line,
                text,
            });
            continue;
        }
        // Char literal vs. lifetime: after a `'`, an ident-ish run
        // closed by another `'` is a char literal (`'a'`); otherwise
        // it is a lifetime (`'a`) or a loop label and carries no
        // content the rules care about.
        if c == '\'' {
            if i + 1 < n && bytes[i + 1] == '\\' {
                // Escaped char literal: consume through the closing quote.
                i += 2;
                while i < n && bytes[i] != '\'' {
                    i += 1;
                }
                i += 1;
            } else if i + 2 < n && bytes[i + 2] == '\'' {
                i += 3; // simple char literal 'x'
            } else {
                i += 1; // lifetime / label: skip the quote, lex the ident
            }
            continue;
        }
        // Identifier or keyword.
        if c == '_' || c.is_alphabetic() {
            let start_line = line;
            let mut text = String::new();
            while i < n && (bytes[i] == '_' || bytes[i].is_alphanumeric()) {
                text.push(bytes[i]);
                i += 1;
            }
            out.tokens.push(Token::Ident {
                line: start_line,
                text,
            });
            continue;
        }
        // Numeric literal (digits, underscores, type suffixes, exponents;
        // precision is irrelevant — it only has to not split into idents).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < n
                && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                && !(bytes[i] == '.' && i + 1 < n && bytes[i + 1] == '.')
            {
                i += 1;
            }
            out.tokens.push(Token::Num { line: start_line });
            continue;
        }
        if !c.is_whitespace() {
            out.tokens.push(Token::Punct { line, ch: c });
        }
        bump_line!(c);
        i += 1;
    }
    out
}

/// Tries to lex a raw string (`r"…"`, `r#"…"#`, `br#"…"#`) starting at
/// `i`. Returns the token, the index after it, and newline count.
fn try_raw_string(bytes: &[char], i: usize, line: u32) -> Option<(Token, usize, u32)> {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j >= n || bytes[j] != 'r' {
        return None;
    }
    j += 1;
    let mut fence = 0usize;
    while j < n && bytes[j] == '#' {
        fence += 1;
        j += 1;
    }
    if j >= n || bytes[j] != '"' {
        return None;
    }
    j += 1;
    let mut text = String::new();
    let mut newlines = 0u32;
    while j < n {
        if bytes[j] == '"' {
            // A closing quote followed by `fence` hashes ends it.
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < fence && bytes[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == fence {
                return Some((Token::Str { line, text }, k, newlines));
            }
        }
        if bytes[j] == '\n' {
            newlines += 1;
        }
        text.push(bytes[j]);
        j += 1;
    }
    Some((Token::Str { line, text }, n, newlines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t {
                Token::Ident { text, .. } => Some(text),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "thread_rng inside a string";
            let r = r#"SystemTime raw"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let ids = idents("let c = 'x'; let l: &'a str = s; 'outer: loop { break 'outer; }");
        assert!(ids.contains(&"loop".to_string()));
        assert!(ids.contains(&"outer".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lexed = lex(r#"let s = "a\"b"; let t = Instant;"#);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t {
                Token::Str { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["a\\\"b".to_string()]);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(t, Token::Ident { text, .. } if text == "Instant"),));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\"s\ntr\"\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(Token::line).collect();
        assert_eq!(lines, vec![1, 2, 3, 5]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let lexed = lex("fn f() {}\n// es-allow(wall-clock): bench timing\nfn g() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("es-allow"));
    }
}
