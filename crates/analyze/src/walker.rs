//! Workspace walker and module-path attribution.
//!
//! Finds every `.rs` file under the workspace root and attributes it
//! to a crate (`crates/net/…` → `net`, `compat/rand/…` →
//! `compat-rand`, everything else → `root`) and a role. Rules use the
//! attribution to scope themselves: wall-clock reads are legal in the
//! bench harness, nowhere else without a pragma.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of target a file belongs to, judged from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library source (`src/`).
    Lib,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// One source file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, `/`-separated (stable for
    /// reports and fingerprints).
    pub rel: String,
    /// Owning crate: `net`, `bench`, `compat-rand`, or `root`.
    pub krate: String,
    /// Target kind.
    pub role: Role,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Relative path prefixes excluded from workspace analysis. The
/// analyzer's own fixtures are rule violations *by design*.
const SKIP_PREFIXES: &[&str] = &["crates/analyze/tests/fixtures"];

/// Walks `root` and returns every analyzable `.rs` file, sorted by
/// relative path so reports and JSON output are deterministic.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            let rel = rel_of(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_of(root, &path);
            out.push(attribute(path.clone(), rel));
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Attributes one relative path to a crate and a role.
pub fn attribute(path: PathBuf, rel: String) -> SourceFile {
    let parts: Vec<&str> = rel.split('/').collect();
    let krate = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["compat", name, ..] => format!("compat-{name}"),
        _ => "root".to_string(),
    };
    let role = if parts.contains(&"benches") {
        Role::Bench
    } else if parts.contains(&"tests") {
        Role::Test
    } else if parts.contains(&"examples") {
        Role::Example
    } else {
        Role::Lib
    };
    SourceFile {
        path,
        rel,
        krate,
        role,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(rel: &str) -> SourceFile {
        attribute(PathBuf::from(rel), rel.to_string())
    }

    #[test]
    fn crate_and_role_attribution() {
        let f = attr("crates/net/src/lan.rs");
        assert_eq!(f.krate, "net");
        assert_eq!(f.role, Role::Lib);

        let f = attr("crates/bench/benches/micro.rs");
        assert_eq!(f.krate, "bench");
        assert_eq!(f.role, Role::Bench);

        let f = attr("compat/rand/src/lib.rs");
        assert_eq!(f.krate, "compat-rand");
        assert_eq!(f.role, Role::Lib);

        let f = attr("tests/determinism.rs");
        assert_eq!(f.krate, "root");
        assert_eq!(f.role, Role::Test);

        let f = attr("examples/quickstart.rs");
        assert_eq!(f.krate, "root");
        assert_eq!(f.role, Role::Example);
    }

    #[test]
    fn fixtures_are_skipped_in_discovery() {
        // The prefix list is what `discover` consults; assert the
        // fixtures directory stays on it.
        assert!(SKIP_PREFIXES
            .iter()
            .any(|p| "crates/analyze/tests/fixtures/wall_clock_pos.rs".starts_with(p)));
    }
}
