//! File-hash-keyed incremental cache.
//!
//! Phase 1 (lex → parse → lexical rules) dominates the analyzer's
//! runtime and is per-file pure: its output depends only on the file's
//! bytes and its workspace attribution. So the cache stores, per
//! relative path, the FNV-1a 64 hash of the file's bytes plus the two
//! phase-1 artifacts — the pragma-resolved lexical findings and the
//! parsed [`FileSummary`]. A warm run re-hashes every file (cheap, one
//! read it had to do anyway) and re-runs only phase 2, which operates
//! on summaries and takes milliseconds. Phase 2 is *never* cached: its
//! findings are cross-file, so any edit anywhere can change them.
//!
//! Robustness over cleverness: any load problem — missing file, parse
//! error, schema mismatch — yields an empty cache and a cold run. The
//! cache lives in `results/` (`results/analyze-cache.json`), which the
//! walker already skips.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::jsonio::{self, Value};
use crate::parser::{Call, FileSummary, FnDef, JobClosure, Site, TelemetrySite, UseDecl};
use crate::pragma::Pragma;
use crate::Finding;

/// Bump when the cached shape changes; a mismatch discards the cache.
pub const SCHEMA: u32 = 1;

/// One cached file.
#[derive(Debug, Clone)]
pub struct Entry {
    /// FNV-1a 64 of the file bytes, lowercase hex.
    pub hash: String,
    /// Phase-1 lexical findings, pragma-resolved.
    pub findings: Vec<Finding>,
    /// The parsed item tree phase 2 consumes.
    pub summary: FileSummary,
}

/// The cache: relative path → entry.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Entries keyed by workspace-relative path.
    pub files: BTreeMap<String, Entry>,
}

/// FNV-1a 64-bit hash of a byte string, as lowercase hex.
pub fn fnv1a64(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl Cache {
    /// Loads a cache file; any problem at all yields `None` (cold
    /// run). Never errors: a corrupt cache is a performance event, not
    /// a correctness one.
    pub fn load(path: &Path) -> Option<Cache> {
        let text = fs::read_to_string(path).ok()?;
        let v = jsonio::parse(&text).ok()?;
        if v.get("schema")?.as_u32()? != SCHEMA {
            return None;
        }
        let mut files = BTreeMap::new();
        for (rel, entry) in v.get("files")?.as_obj()? {
            files.insert(rel.clone(), entry_from(entry)?);
        }
        Some(Cache { files })
    }

    /// Serializes and writes the cache.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let files = Value::Obj(
            self.files
                .iter()
                .map(|(rel, e)| (rel.clone(), entry_to(e)))
                .collect(),
        );
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Num(f64::from(SCHEMA))),
            ("files".into(), files),
        ]);
        fs::write(path, doc.to_json())
    }
}

fn num(n: u32) -> Value {
    Value::Num(f64::from(n))
}

fn str_or_null(s: &Option<String>) -> Value {
    match s {
        Some(s) => Value::Str(s.clone()),
        None => Value::Null,
    }
}

fn opt_str(v: &Value) -> Option<Option<String>> {
    match v {
        Value::Null => Some(None),
        Value::Str(s) => Some(Some(s.clone())),
        _ => None,
    }
}

fn strings(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

fn strings_from(v: &Value) -> Option<Vec<String>> {
    v.as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_string))
        .collect()
}

fn spans(items: &[(u32, u32)]) -> Value {
    Value::Arr(
        items
            .iter()
            .map(|&(a, b)| Value::Arr(vec![num(a), num(b)]))
            .collect(),
    )
}

fn spans_from(v: &Value) -> Option<Vec<(u32, u32)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            Some((p.first()?.as_u32()?, p.get(1)?.as_u32()?))
        })
        .collect()
}

fn site_to(s: &Site) -> Value {
    Value::Obj(vec![
        ("kind".into(), Value::Str(s.kind.clone())),
        ("line".into(), num(s.line)),
    ])
}

fn site_from(v: &Value) -> Option<Site> {
    Some(Site {
        kind: v.get("kind")?.as_str()?.to_string(),
        line: v.get("line")?.as_u32()?,
    })
}

fn sites(items: &[Site]) -> Value {
    Value::Arr(items.iter().map(site_to).collect())
}

fn sites_from(v: &Value) -> Option<Vec<Site>> {
    v.as_arr()?.iter().map(site_from).collect()
}

fn call_to(c: &Call) -> Value {
    Value::Obj(vec![
        ("path".into(), strings(&c.path)),
        ("name".into(), Value::Str(c.name.clone())),
        ("arity".into(), num(c.arity)),
        ("line".into(), num(c.line)),
        ("method".into(), Value::Bool(c.method)),
    ])
}

fn call_from(v: &Value) -> Option<Call> {
    Some(Call {
        path: strings_from(v.get("path")?)?,
        name: v.get("name")?.as_str()?.to_string(),
        arity: v.get("arity")?.as_u32()?,
        line: v.get("line")?.as_u32()?,
        method: v.get("method")?.as_bool()?,
    })
}

fn calls(items: &[Call]) -> Value {
    Value::Arr(items.iter().map(call_to).collect())
}

fn calls_from(v: &Value) -> Option<Vec<Call>> {
    v.as_arr()?.iter().map(call_from).collect()
}

fn summary_to(s: &FileSummary) -> Value {
    let fns = Value::Arr(
        s.fns
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(f.name.clone())),
                    ("owner".into(), str_or_null(&f.owner)),
                    ("arity".into(), num(f.arity)),
                    ("self".into(), Value::Bool(f.has_self)),
                    ("start".into(), num(f.start_line)),
                    ("end".into(), num(f.end_line)),
                    ("calls".into(), calls(&f.calls)),
                    ("allocs".into(), sites(&f.allocs)),
                    ("panics".into(), sites(&f.panics)),
                ])
            })
            .collect(),
    );
    let uses = Value::Arr(
        s.uses
            .iter()
            .map(|u| {
                Value::Obj(vec![
                    ("alias".into(), Value::Str(u.alias.clone())),
                    ("path".into(), strings(&u.path)),
                ])
            })
            .collect(),
    );
    let jobs = Value::Arr(
        s.job_closures
            .iter()
            .map(|j| {
                Value::Obj(vec![
                    ("line".into(), num(j.line)),
                    ("mutations".into(), sites(&j.mutations)),
                    ("calls".into(), calls(&j.calls)),
                ])
            })
            .collect(),
    );
    let telemetry = Value::Arr(
        s.telemetry
            .iter()
            .map(|t| {
                Value::Obj(vec![
                    ("component".into(), str_or_null(&t.component)),
                    ("name".into(), Value::Str(t.name.clone())),
                    ("kind".into(), Value::Str(t.kind.clone())),
                    ("writer".into(), Value::Bool(t.writer)),
                    ("line".into(), num(t.line)),
                ])
            })
            .collect(),
    );
    let pragmas = Value::Arr(
        s.pragmas
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("line".into(), num(p.line)),
                    ("rule".into(), Value::Str(p.rule.clone())),
                    ("reason".into(), Value::Str(p.reason.clone())),
                ])
            })
            .collect(),
    );
    Value::Obj(vec![
        ("fns".into(), fns),
        ("uses".into(), uses),
        ("hot".into(), spans(&s.hot_regions)),
        ("test".into(), spans(&s.test_regions)),
        ("jobs".into(), jobs),
        ("telemetry".into(), telemetry),
        ("pragmas".into(), pragmas),
    ])
}

fn summary_from(v: &Value) -> Option<FileSummary> {
    let fns = v
        .get("fns")?
        .as_arr()?
        .iter()
        .map(|f| {
            Some(FnDef {
                name: f.get("name")?.as_str()?.to_string(),
                owner: opt_str(f.get("owner")?)?,
                arity: f.get("arity")?.as_u32()?,
                has_self: f.get("self")?.as_bool()?,
                start_line: f.get("start")?.as_u32()?,
                end_line: f.get("end")?.as_u32()?,
                calls: calls_from(f.get("calls")?)?,
                allocs: sites_from(f.get("allocs")?)?,
                panics: sites_from(f.get("panics")?)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let uses = v
        .get("uses")?
        .as_arr()?
        .iter()
        .map(|u| {
            Some(UseDecl {
                alias: u.get("alias")?.as_str()?.to_string(),
                path: strings_from(u.get("path")?)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let job_closures = v
        .get("jobs")?
        .as_arr()?
        .iter()
        .map(|j| {
            Some(JobClosure {
                line: j.get("line")?.as_u32()?,
                mutations: sites_from(j.get("mutations")?)?,
                calls: calls_from(j.get("calls")?)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let telemetry = v
        .get("telemetry")?
        .as_arr()?
        .iter()
        .map(|t| {
            Some(TelemetrySite {
                component: opt_str(t.get("component")?)?,
                name: t.get("name")?.as_str()?.to_string(),
                kind: t.get("kind")?.as_str()?.to_string(),
                writer: t.get("writer")?.as_bool()?,
                line: t.get("line")?.as_u32()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let pragmas = v
        .get("pragmas")?
        .as_arr()?
        .iter()
        .map(|p| {
            Some(Pragma {
                line: p.get("line")?.as_u32()?,
                rule: p.get("rule")?.as_str()?.to_string(),
                reason: p.get("reason")?.as_str()?.to_string(),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FileSummary {
        fns,
        uses,
        hot_regions: spans_from(v.get("hot")?)?,
        test_regions: spans_from(v.get("test")?)?,
        job_closures,
        telemetry,
        pragmas,
    })
}

fn finding_to(f: &Finding) -> Value {
    Value::Obj(vec![
        ("rule".into(), Value::Str(f.rule.clone())),
        ("rel".into(), Value::Str(f.rel.clone())),
        ("line".into(), num(f.line)),
        ("message".into(), Value::Str(f.message.clone())),
        ("allowed".into(), Value::Bool(f.allowed)),
        ("reason".into(), str_or_null(&f.reason)),
    ])
}

fn finding_from(v: &Value) -> Option<Finding> {
    Some(Finding {
        rule: v.get("rule")?.as_str()?.to_string(),
        rel: v.get("rel")?.as_str()?.to_string(),
        line: v.get("line")?.as_u32()?,
        message: v.get("message")?.as_str()?.to_string(),
        allowed: v.get("allowed")?.as_bool()?,
        reason: opt_str(v.get("reason")?)?,
    })
}

fn entry_to(e: &Entry) -> Value {
    Value::Obj(vec![
        ("hash".into(), Value::Str(e.hash.clone())),
        (
            "findings".into(),
            Value::Arr(e.findings.iter().map(finding_to).collect()),
        ),
        ("summary".into(), summary_to(&e.summary)),
    ])
}

fn entry_from(v: &Value) -> Option<Entry> {
    Some(Entry {
        hash: v.get("hash")?.as_str()?.to_string(),
        findings: v
            .get("findings")?
            .as_arr()?
            .iter()
            .map(finding_from)
            .collect::<Option<Vec<_>>>()?,
        summary: summary_from(v.get("summary")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), "cbf29ce484222325");
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn entries_round_trip_through_json() {
        let src = r#"
            // es-hot-path
            fn hot(xs: &[u8]) { helper(xs[0]); }
            // es-hot-path-end
            use es_codec::dsp;
            fn r(&self, reg: &mut Registry) { reg.component("net").counter("k", 1); }
            // es-allow(wall-clock): cache round-trip test pragma body
            fn f() { let j = Box::new(move || { shared.lock(); 1 }) as fleet::Job; }
        "#;
        let lexed = lexer::lex(src);
        let summary = parser::parse(&lexed.tokens, &lexed.comments);
        let entry = Entry {
            hash: fnv1a64(src.as_bytes()),
            findings: vec![Finding {
                rule: "wall-clock".into(),
                rel: "crates/net/src/a.rs".into(),
                line: 3,
                message: "msg with \"quotes\"".into(),
                allowed: true,
                reason: Some("why".into()),
            }],
            summary: summary.clone(),
        };
        let back = entry_from(&entry_to(&entry)).expect("round trip");
        assert_eq!(back.hash, entry.hash);
        assert_eq!(back.findings, entry.findings);
        assert_eq!(back.summary, summary);
    }

    #[test]
    fn cache_survives_save_load_and_rejects_schema_drift() {
        let dir = std::env::temp_dir().join("es-analyze-cache-test");
        let path = dir.join("cache.json");
        let mut cache = Cache::default();
        cache.files.insert(
            "crates/net/src/a.rs".into(),
            Entry {
                hash: "00ff".into(),
                findings: Vec::new(),
                summary: FileSummary::default(),
            },
        );
        cache.save(&path).expect("save");
        let loaded = Cache::load(&path).expect("load");
        assert_eq!(loaded.files.len(), 1);
        assert!(loaded.files.contains_key("crates/net/src/a.rs"));
        // Corrupt schema → cold start, not an error.
        std::fs::write(&path, "{\"schema\":999,\"files\":{}}").unwrap();
        assert!(Cache::load(&path).is_none());
        std::fs::write(&path, "not json").unwrap();
        assert!(Cache::load(&path).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
