//! Minimal JSON reader/writer for the incremental cache.
//!
//! The analyzer already *writes* JSON by hand ([`crate::report`]);
//! the cache also needs to *read* it back, so this module adds a tiny
//! recursive-descent parser over a [`Value`] tree. Objects preserve
//! insertion order (a `Vec` of pairs, not a hash map) so serialization
//! is deterministic and the hash-iter-order rule has nothing to say.
//! Numbers are kept as `f64` — every number the cache stores (line
//! numbers, arities, hashes as hex *strings*) fits exactly.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u32 (line numbers, counts).
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(n) if *n >= 0.0 && *n <= f64::from(u32::MAX) => Some(*n as u32),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization (stable: objects keep insertion order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Errors carry a byte offset — enough for
/// the cache loader, which treats any error as "cold start".
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in cache
                            // content (it is all ASCII source paths and
                            // messages); map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    // Bulk-copy the run of plain ASCII up to the next
                    // quote, escape, or non-ASCII lead byte — one
                    // validation per run, not per character (the cache
                    // is megabytes of mostly-ASCII strings).
                    let start = self.pos;
                    while matches!(
                        self.bytes.get(self.pos),
                        Some(&c) if c != b'"' && c != b'\\' && c < 0x80
                    ) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(run);
                }
                Some(&b) => {
                    // Advance one full non-ASCII UTF-8 scalar: the lead
                    // byte gives the sequence length.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("bad utf-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + width)
                        .ok_or_else(|| self.err("bad utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let v = Value::Obj(vec![
            ("schema".to_string(), Value::Num(2.0)),
            (
                "files".to_string(),
                Value::Obj(vec![(
                    "crates/net/src/lan.rs".to_string(),
                    Value::Obj(vec![
                        ("hash".to_string(), Value::Str("ab\"c\\d".to_string())),
                        (
                            "lines".to_string(),
                            Value::Arr(vec![Value::Num(1.0), Value::Num(42.0)]),
                        ),
                        ("ok".to_string(), Value::Bool(true)),
                        ("none".to_string(), Value::Null),
                    ]),
                )]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"x\\ny\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u32(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
