//! The rule registry: project-specific determinism and invariant
//! checks.
//!
//! Every rule is lexical — it sees one file's token stream plus its
//! crate/role attribution, and reports line-tagged findings. Rules err
//! on the side of firing: a legitimate exception is written down with
//! an `// es-allow(rule): reason` pragma, so the audit trail lives
//! next to the code it excuses.

use crate::lexer::{LineComment, Token};
use crate::pragma::Pragma;
use crate::walker::{Role, SourceFile};

/// A rule's raw output before pragma resolution.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// Human-readable defect description.
    pub message: String,
}

/// Everything a rule may consult about one file.
pub struct FileCtx<'a> {
    /// The file's path/crate/role attribution.
    pub file: &'a SourceFile,
    /// Lexed code tokens (comments and string contents excluded).
    pub tokens: &'a [Token],
    /// Line comments in source order — marker comments like
    /// `// es-hot-path` scope rules to regions of a file.
    pub comments: &'a [LineComment],
    /// Parsed suppression pragmas.
    pub pragmas: &'a [Pragma],
}

/// One registered rule.
pub struct Rule {
    /// Stable id, used in pragmas and reports (kebab-case).
    pub id: &'static str,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
    check: fn(&FileCtx<'_>) -> Vec<RawFinding>,
}

impl Rule {
    /// Runs the rule on one file.
    pub fn check(&self, ctx: &FileCtx<'_>) -> Vec<RawFinding> {
        (self.check)(ctx)
    }
}

/// The full registry, in reporting order.
pub fn all() -> Vec<Rule> {
    vec![
        Rule {
            id: "wall-clock",
            summary: "Instant::now / SystemTime::now outside the live/bench allowlist",
            check: wall_clock,
        },
        Rule {
            id: "unseeded-rng",
            summary: "entropy-seeded RNG (thread_rng, OsRng, from_entropy) anywhere",
            check: unseeded_rng,
        },
        Rule {
            id: "hash-iter-order",
            summary: "HashMap/HashSet in replay-fingerprinted code; use BTree* instead",
            check: hash_iter_order,
        },
        Rule {
            id: "telemetry-key",
            summary: "metric-key literals must match component/instance/name",
            check: telemetry_key,
        },
        Rule {
            id: "unsafe-audit",
            summary: "unsafe blocks require an explicit audit pragma",
            check: unsafe_audit,
        },
        Rule {
            id: "spec-builder-naming",
            summary: "builder methods on *Spec types use bare field names, not with_*",
            check: spec_builder_naming,
        },
        Rule {
            id: "heal-event-fields",
            summary: "journal events on the heal component must carry action and target fields",
            check: heal_event_fields,
        },
        Rule {
            id: "hot-path-alloc",
            summary: "Vec::new / .to_vec / .collect inside an // es-hot-path region",
            check: hot_path_alloc,
        },
        Rule {
            id: "shard-channel",
            summary:
                "Sim::schedule_at_segment outside es-sim; cross-shard work goes through ShardRouter",
            check: shard_channel,
        },
        Rule {
            id: "pragma",
            summary: "es-allow pragmas must name a registered rule",
            check: pragma_names_known_rule,
        },
    ]
}

/// True if the rule registry contains `id`. The `pragma` meta-rule
/// uses this so a typoed suppression fails instead of silently
/// suppressing nothing.
pub fn is_registered(id: &str) -> bool {
    all().iter().any(|r| r.id == id) || crate::passes::is_registered(id)
}

/// Files where reading the wall clock is the *point*: the live
/// producer paces real playback against it, and the bench harness
/// measures it. Everything else simulates time (paper §3.2) and must
/// not look at the host clock.
fn wall_clock_allowlisted(file: &SourceFile) -> bool {
    file.krate == "bench" || file.role == Role::Bench || file.rel == "crates/core/src/live.rs"
}

fn wall_clock(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    if wall_clock_allowlisted(ctx.file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let t = ctx.tokens;
    for i in 0..t.len() {
        let Token::Ident { line, text } = &t[i] else {
            continue;
        };
        if text != "Instant" && text != "SystemTime" {
            continue;
        }
        if matches!(t.get(i + 1), Some(Token::Punct { ch: ':', .. }))
            && matches!(t.get(i + 2), Some(Token::Punct { ch: ':', .. }))
            && matches!(t.get(i + 3), Some(Token::Ident { text: m, .. }) if m == "now")
        {
            out.push(RawFinding {
                line: *line,
                message: format!(
                    "`{text}::now()` reads the host clock; simulated components must use \
                     virtual time (es-sim) so replays stay bit-identical"
                ),
            });
        }
    }
    out
}

fn unseeded_rng(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    const BANNED: &[&str] = &[
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "getrandom",
    ];
    ctx.tokens
        .iter()
        .filter_map(|t| match t {
            Token::Ident { line, text } if BANNED.contains(&text.as_str()) => Some(RawFinding {
                line: *line,
                message: format!(
                    "`{text}` draws entropy from the host; all randomness must flow from the \
                     scenario seed (Sim::rng or a per-node stream derived from Sim::seed)"
                ),
            }),
            _ => None,
        })
        .collect()
}

fn hash_iter_order(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    ctx.tokens
        .iter()
        .filter_map(|t| match t {
            Token::Ident { line, text } if text == "HashMap" || text == "HashSet" => {
                Some(RawFinding {
                    line: *line,
                    message: format!(
                        "`{text}` iterates in hash order, which varies per process and breaks \
                         telemetry fingerprints; use BTreeMap/BTreeSet or sort before iterating"
                    ),
                })
            }
            _ => None,
        })
        .collect()
}

/// Telemetry accessor methods whose string arguments are metric keys.
const KEYED_METHODS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "observe",
    "counter_delta",
    "sum_counters",
    "component",
];

/// Charset for one key segment; `{`/`}` admit `format!` placeholders.
fn valid_segment(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '{' | '}'))
}

fn telemetry_key(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let t = ctx.tokens;
    for i in 0..t.len() {
        let Token::Ident { text, .. } = &t[i] else {
            continue;
        };
        if !KEYED_METHODS.contains(&text.as_str()) {
            continue;
        }
        // Only method-call position: `.counter(` — skips definitions
        // (`fn counter(`) and unrelated free functions.
        if i == 0 || !matches!(t[i - 1], Token::Punct { ch: '.', .. }) {
            continue;
        }
        if !matches!(t.get(i + 1), Some(Token::Punct { ch: '(', .. })) {
            continue;
        }
        let mut depth = 1u32;
        let mut j = i + 2;
        while j < t.len() && depth > 0 {
            match &t[j] {
                Token::Punct { ch: '(', .. } => depth += 1,
                Token::Punct { ch: ')', .. } => depth -= 1,
                Token::Str { line, text: lit } => {
                    let segs: Vec<&str> = lit.split('/').collect();
                    let ok = match segs.len() {
                        1 => valid_segment(segs[0]),
                        3 => segs.iter().all(|s| valid_segment(s)),
                        _ => false,
                    };
                    if !ok {
                        out.push(RawFinding {
                            line: *line,
                            message: format!(
                                "metric key {lit:?} does not follow the `component/instance/name` \
                                 convention (a bare name segment or a full three-segment path of \
                                 [A-Za-z0-9_.-]+)"
                            ),
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

fn unsafe_audit(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    ctx.tokens
        .iter()
        .filter_map(|t| match t {
            Token::Ident { line, text } if text == "unsafe" => Some(RawFinding {
                line: *line,
                message: "`unsafe` requires an audit trail; every library crate is \
                          #![forbid(unsafe_code)] — justify the exception with a pragma \
                          and drop the forbid deliberately"
                    .to_string(),
            }),
            _ => None,
        })
        .collect()
}

/// The public spec/builder convention: `ChannelSpec`, `SpeakerSpec`,
/// `SessionSpec` (and any future `*Spec`) name their builder methods
/// after the field they set — `epsilon(..)`, not `with_epsilon(..)`.
/// Any `with_*` method inside an `impl ...Spec` block is a finding.
/// The `#[deprecated]` compat-alias exception expired with the
/// one-release migration window; the aliases themselves are gone.
fn spec_builder_naming(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let t = ctx.tokens;
    let mut out = Vec::new();
    // Track `impl <Name>Spec` blocks by brace depth. Lexical, like
    // every rule here: depth counting is enough because `impl` items
    // are always at depth 0 of the module they appear in.
    let mut depth: i64 = 0;
    let mut spec_impl_close: Option<i64> = None;
    for i in 0..t.len() {
        match &t[i] {
            Token::Punct { ch: '{', .. } => depth += 1,
            Token::Punct { ch: '}', .. } => {
                depth -= 1;
                if spec_impl_close == Some(depth) {
                    spec_impl_close = None;
                }
            }
            Token::Ident { text, .. } if text == "impl" && spec_impl_close.is_none() => {
                // `impl XSpec {` or `impl Trait for XSpec {` — scan the
                // header (tokens until the opening brace) for a *Spec
                // ident.
                let mut j = i + 1;
                let mut is_spec = false;
                while j < t.len() {
                    match &t[j] {
                        Token::Punct { ch: '{', .. } => break,
                        Token::Ident { text: name, .. } if name.ends_with("Spec") => {
                            is_spec = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if is_spec {
                    spec_impl_close = Some(depth);
                }
            }
            Token::Ident { text, .. } if text == "fn" && spec_impl_close.is_some() => {
                let Some(Token::Ident { line, text: name }) = t.get(i + 1) else {
                    continue;
                };
                if !name.starts_with("with_") {
                    continue;
                }
                out.push(RawFinding {
                    line: *line,
                    message: format!(
                        "`{name}` on a *Spec type breaks the bare-field builder \
                         convention (`{}`); rename it — the deprecated-alias \
                         migration window has closed",
                        &name["with_".len()..]
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

/// Healing-plane journal contract: every event emitted under the
/// `heal` component names what was done (`action`) and to whom
/// (`target`), so the archived healing journals are machine-auditable.
/// Lexical, like every rule here: an `.emit(` call whose first string
/// literal is `"heal"` (the component argument — the stamp and
/// severity arguments carry no string literals) must also contain the
/// `"action"` and `"target"` field-key literals inside the call.
fn heal_event_fields(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let t = ctx.tokens;
    for i in 0..t.len() {
        let Token::Ident { text, .. } = &t[i] else {
            continue;
        };
        if text != "emit" {
            continue;
        }
        // Only method-call position: `.emit(`.
        if i == 0 || !matches!(t[i - 1], Token::Punct { ch: '.', .. }) {
            continue;
        }
        if !matches!(t.get(i + 1), Some(Token::Punct { ch: '(', .. })) {
            continue;
        }
        let mut depth = 1u32;
        let mut j = i + 2;
        let mut strs: Vec<(u32, &str)> = Vec::new();
        while j < t.len() && depth > 0 {
            match &t[j] {
                Token::Punct { ch: '(', .. } => depth += 1,
                Token::Punct { ch: ')', .. } => depth -= 1,
                Token::Str { line, text: lit } => strs.push((*line, lit)),
                _ => {}
            }
            j += 1;
        }
        let Some(&(line, component)) = strs.first() else {
            continue;
        };
        if component != "heal" {
            continue;
        }
        for field in ["action", "target"] {
            if !strs.iter().any(|(_, s)| *s == field) {
                out.push(RawFinding {
                    line,
                    message: format!(
                        "journal event on the `heal` component is missing the `{field}` \
                         field; every healing action must be journaled as \
                         (action, target, ...) so the archived healing journal is \
                         machine-auditable"
                    ),
                });
            }
        }
    }
    out
}

/// Collects `(start, end)` line ranges bounded by `// es-hot-path`
/// marker comments. A marker opens a region that runs to the matching
/// `// es-hot-path-end` (or end of file when there is none). Markers
/// are plain comments, not pragmas: they declare "steady-state code
/// here must not allocate", and the `hot-path-alloc` rule enforces it.
fn hot_path_regions(comments: &[LineComment]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut open: Option<u32> = None;
    for c in comments {
        match c.text.trim_start_matches(['/', '!']).trim() {
            "es-hot-path" => open = open.or(Some(c.line)),
            "es-hot-path-end" => {
                if let Some(start) = open.take() {
                    regions.push((start, c.line));
                }
            }
            _ => {}
        }
    }
    if let Some(start) = open {
        regions.push((start, u32::MAX));
    }
    regions
}

/// Zero-allocation contract for decode hot paths: inside an
/// `// es-hot-path` region, per-call allocators are findings. The
/// region markers sit on the codec/speaker decode loops, where every
/// packet's buffers must come from the decode arena or a pooled
/// buffer — one stray `.to_vec()` reintroduces a per-packet
/// allocation the BENCH_PR6 gate was built to keep out.
fn hot_path_alloc(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let regions = hot_path_regions(ctx.comments);
    if regions.is_empty() {
        return Vec::new();
    }
    let in_region = |line: u32| regions.iter().any(|&(s, e)| s <= line && line <= e);
    let t = ctx.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        let Token::Ident { line, text } = &t[i] else {
            continue;
        };
        if !in_region(*line) {
            continue;
        }
        let method_pos = i > 0 && matches!(t[i - 1], Token::Punct { ch: '.', .. });
        let what = match text.as_str() {
            // `Vec::new(` — a fresh heap vector per call.
            "Vec"
                if matches!(t.get(i + 1), Some(Token::Punct { ch: ':', .. }))
                    && matches!(t.get(i + 2), Some(Token::Punct { ch: ':', .. }))
                    && matches!(t.get(i + 3), Some(Token::Ident { text: m, .. }) if m == "new") =>
            {
                "Vec::new()"
            }
            // `vec![...]` allocates exactly like Vec::new + pushes.
            "vec" if matches!(t.get(i + 1), Some(Token::Punct { ch: '!', .. })) => "vec![]",
            "to_vec" if method_pos => ".to_vec()",
            "collect" if method_pos => ".collect()",
            _ => continue,
        };
        out.push(RawFinding {
            line: *line,
            message: format!(
                "`{what}` allocates inside an `// es-hot-path` region; the decode hot \
                 path must stay allocation-free in steady state — reuse the decode \
                 arena or a pooled/caller-provided buffer (or move the one-time \
                 allocation out of the region)"
            ),
        });
    }
    out
}

/// Cross-shard scheduling discipline: `Sim::schedule_at_segment` is
/// the engine's raw cross-shard primitive and stays an implementation
/// detail of `crates/sim/`. Everywhere else, an event bound for
/// another segment must go through the deterministic channel facade
/// (`es_sim::ShardRouter::post`), which counts cross-segment traffic
/// and keeps the submission-order-merge discipline — a direct call
/// bypasses the accounting and invites shard-count-dependent
/// orderings that the chaos fingerprint diff would only catch after
/// the fact.
fn shard_channel(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    if ctx.file.rel.starts_with("crates/sim/") {
        return Vec::new();
    }
    ctx.tokens
        .iter()
        .filter_map(|t| match t {
            Token::Ident { line, text } if text == "schedule_at_segment" => Some(RawFinding {
                line: *line,
                message: "`schedule_at_segment` is the engine's raw cross-shard primitive; \
                          outside es-sim route cross-segment events through \
                          `ShardRouter::post` so the traffic is counted and keeps the \
                          deterministic channel ordering"
                    .to_string(),
            }),
            _ => None,
        })
        .collect()
}

fn pragma_names_known_rule(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    ctx.pragmas
        .iter()
        .filter(|p| !is_registered(&p.rule))
        .map(|p| RawFinding {
            line: p.line,
            message: format!(
                "es-allow names unknown rule `{}`; it would suppress nothing (registered: {})",
                p.rule,
                all().iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::pragma;
    use crate::walker::attribute;
    use std::path::PathBuf;

    fn run_on(rel: &str, src: &str) -> Vec<(String, u32)> {
        let file = attribute(PathBuf::from(rel), rel.to_string());
        let lexed = lexer::lex(src);
        let pragmas = pragma::parse(&lexed.comments);
        let ctx = FileCtx {
            file: &file,
            tokens: &lexed.tokens,
            comments: &lexed.comments,
            pragmas: &pragmas,
        };
        let mut out = Vec::new();
        for rule in all() {
            for f in rule.check(&ctx) {
                out.push((rule.id.to_string(), f.line));
            }
        }
        out
    }

    #[test]
    fn wall_clock_fires_outside_allowlist_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            run_on("crates/net/src/lan.rs", src),
            vec![("wall-clock".to_string(), 1)]
        );
        assert!(run_on("crates/bench/src/perf.rs", src).is_empty());
        assert!(run_on("crates/core/src/live.rs", src).is_empty());
        assert!(run_on("crates/bench/benches/micro.rs", src).is_empty());
    }

    #[test]
    fn instant_type_without_now_is_fine() {
        assert!(run_on("crates/net/src/lan.rs", "fn f(t: Instant) -> Instant { t }").is_empty());
    }

    #[test]
    fn rng_and_hash_fire_anywhere() {
        let hits = run_on(
            "examples/quickstart.rs",
            "fn f() { let r = thread_rng(); let m: HashMap<u8, u8> = HashMap::new(); }",
        );
        let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
        assert_eq!(
            rules,
            vec!["unseeded-rng", "hash-iter-order", "hash-iter-order"]
        );
    }

    #[test]
    fn telemetry_key_validates_segments() {
        // Good: bare names and full three-segment paths.
        assert!(run_on(
            "crates/net/src/lan.rs",
            r#"fn f(s: &mut S) { s.counter("frames_sent", 1).gauge("multicast_fanout", 2.0); }"#
        )
        .is_empty());
        assert!(run_on(
            "tests/chaos.rs",
            r#"fn f(m: &M) { m.counter("net/lan0/frames_delivered"); }"#
        )
        .is_empty());
        // Bad: two segments, empty segment, illegal characters.
        for bad in [
            r#"fn f(m: &M) { m.counter("net/frames"); }"#,
            r#"fn f(m: &M) { m.counter("net//frames_sent"); }"#,
            r#"fn f(s: &mut S) { s.counter("frames sent", 1); }"#,
        ] {
            assert_eq!(
                run_on("tests/chaos.rs", bad),
                vec![("telemetry-key".to_string(), 1)],
                "expected a finding for {bad}"
            );
        }
        // Definitions and free functions named like accessors are not calls.
        assert!(run_on(
            "crates/telemetry/src/metrics.rs",
            r#"pub fn counter(name: &str) {} fn g() { counter("not a key!"); }"#
        )
        .is_empty());
    }

    #[test]
    fn unsafe_is_flagged() {
        assert_eq!(
            run_on("crates/sim/src/engine.rs", "fn f() { unsafe { work() } }"),
            vec![("unsafe-audit".to_string(), 1)]
        );
    }

    #[test]
    fn spec_builder_naming_enforces_bare_names() {
        // A with_* builder inside an impl of a Spec type fires.
        let bad = "impl SpeakerSpec { pub fn with_volume(mut self, v: f64) -> Self { self } }";
        assert_eq!(
            run_on("crates/core/src/builder.rs", bad),
            vec![("spec-builder-naming".to_string(), 1)]
        );
        // The deprecated-alias escape hatch has expired: an alias
        // still fires even with the attribute.
        let alias = "impl SpeakerSpec {\n\
                     #[deprecated(since = \"0.1.0\", note = \"renamed\")]\n\
                     pub fn with_volume(self, v: f64) -> Self { self.volume(v) }\n\
                     }";
        assert_eq!(
            run_on("crates/core/src/builder.rs", alias),
            vec![("spec-builder-naming".to_string(), 3)]
        );
        // Bare-name builders are the convention.
        let good = "impl ChannelSpec { pub fn volume(mut self, v: f64) -> Self { self } }";
        assert!(run_on("crates/core/src/builder.rs", good).is_empty());
        // with_* on non-Spec types is out of scope for this rule.
        let other = "impl BootImage { pub fn with_file(mut self, p: &str) -> Self { self } }";
        assert!(run_on("crates/boot/src/image.rs", other).is_empty());
        // ...even when a Spec impl appears elsewhere in the same file.
        let mixed = "impl SessionSpec { pub fn setup_retry(self) -> Self { self } }\n\
                     impl LiveConfig { pub fn with_journal(self) -> Self { self } }";
        assert!(run_on("crates/core/src/builder.rs", mixed).is_empty());
    }

    #[test]
    fn heal_event_fields_requires_action_and_target() {
        // Missing target: one finding.
        let missing_target = r#"fn f(j: &J) {
            j.emit(s, sev, "heal", "fec ladder raised", &[("action", a)]);
        }"#;
        assert_eq!(
            run_on("crates/core/src/heal_ctl.rs", missing_target),
            vec![("heal-event-fields".to_string(), 2)]
        );
        // Missing both: two findings on the same call.
        let missing_both = r#"fn f(j: &J) { j.emit(s, sev, "heal", "oops", &[]); }"#;
        assert_eq!(
            run_on("crates/core/src/heal_ctl.rs", missing_both),
            vec![
                ("heal-event-fields".to_string(), 1),
                ("heal-event-fields".to_string(), 1)
            ]
        );
        // Complete heal event: clean.
        let good = r#"fn f(j: &J) {
            j.emit(s, sev, "heal", "standby promoted",
                   &[("action", a), ("target", t), ("extra", x)]);
        }"#;
        assert!(run_on("crates/core/src/heal_ctl.rs", good).is_empty());
        // Other components are out of scope.
        let other = r#"fn f(j: &J) {
            j.emit(s, sev, "net", "receiver degraded", &[("node", n)]);
        }"#;
        assert!(run_on("crates/net/src/lan.rs", other).is_empty());
        // `emit` not in method position is not a journal call.
        let free = r#"fn emit(a: &str) {} fn g() { emit("heal"); }"#;
        assert!(run_on("crates/core/src/heal_ctl.rs", free).is_empty());
    }

    #[test]
    fn hot_path_alloc_scopes_to_marked_regions() {
        // No marker: allocations are fine anywhere.
        assert!(run_on(
            "crates/codec/src/ovl.rs",
            "fn f() -> Vec<u8> { let v = Vec::new(); v }"
        )
        .is_empty());
        // Inside a region: Vec::new, vec!, .to_vec and .collect all fire.
        let marked = "// es-hot-path\n\
                      fn f(xs: &[u8]) {\n\
                      let a: Vec<u8> = Vec::new();\n\
                      let b = vec![0u8; 4];\n\
                      let c = xs.to_vec();\n\
                      let d: Vec<u8> = xs.iter().copied().collect();\n\
                      }";
        assert_eq!(
            run_on("crates/codec/src/ovl.rs", marked),
            vec![
                ("hot-path-alloc".to_string(), 3),
                ("hot-path-alloc".to_string(), 4),
                ("hot-path-alloc".to_string(), 5),
                ("hot-path-alloc".to_string(), 6),
            ]
        );
        // es-hot-path-end closes the region.
        let bounded = "// es-hot-path\n\
                       fn hot(out: &mut Vec<u8>) { out.clear(); }\n\
                       // es-hot-path-end\n\
                       fn cold(xs: &[u8]) -> Vec<u8> { xs.to_vec() }";
        assert!(run_on("crates/codec/src/ovl.rs", bounded).is_empty());
        // Non-allocating idioms inside a region are clean.
        let clean = "// es-hot-path\n\
                     fn f(out: &mut Vec<i16>, xs: &[i16]) {\n\
                     out.clear();\n\
                     out.extend_from_slice(xs);\n\
                     out.resize(xs.len() * 2, 0);\n\
                     }";
        assert!(run_on("crates/codec/src/ovl.rs", clean).is_empty());
        // `collect` not in method position (a local fn) is out of scope.
        let free = "// es-hot-path\nfn collect() {} fn g() { collect(); }";
        assert!(run_on("crates/codec/src/ovl.rs", free).is_empty());
    }

    #[test]
    fn shard_channel_is_confined_to_sim() {
        let src = "fn f(sim: &mut Sim) { sim.schedule_at_segment(1, t, |_| {}); }";
        assert_eq!(
            run_on("crates/net/src/lan.rs", src),
            vec![("shard-channel".to_string(), 1)]
        );
        // Inside the engine crate the primitive is home.
        assert!(run_on("crates/sim/src/shard.rs", src).is_empty());
        assert!(run_on("crates/sim/src/engine.rs", src).is_empty());
        // The sanctioned facade does not trip the rule.
        let routed = "fn f(r: &ShardRouter) { r.post(sim, 1, t, |_| {}); }";
        assert!(run_on("crates/net/src/lan.rs", routed).is_empty());
    }

    #[test]
    fn unknown_pragma_rule_is_a_finding() {
        let hits = run_on(
            "crates/net/src/lan.rs",
            "// es-allow(wallclock): typo\nfn f() {}",
        );
        assert_eq!(hits, vec![("pragma".to_string(), 1)]);
    }
}
